"""Tests for the batched settings-axis execution path.

Covers the solver's ``evaluate_batch`` (<= 1e-9 equivalence with the
per-sample loop over every problem of every registered pack, topology-group
splitting on mask changes, error classification), the engine's batch-aware
cache keys (batched results hit -- and seed -- per-sample entries), the
plan-cache/batch interaction (no duplicate or spurious plan entries, batch
hit rates in ``stats()``), direct ``LRUCache.peek`` unit tests, the
``default_solver`` concurrency regression, and the sweep/CLI plumbing of
``--batch-size`` (byte-identical reports).
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro._cache import LRUCache
from repro.bench.packs import get_pack, pack_names
from repro.engine import EngineConfig, ExecutionEngine, TaskScheduler, default_engine
from repro.harness.cli import build_parser
from repro.harness.runner import SweepConfig, run_sweep
from repro.netlist import Instance, Netlist
from repro.netlist.errors import OtherSyntaxError
from repro.sim import (
    CircuitSolver,
    apply_settings,
    batch_evaluate_model,
    default_registry,
    evaluate_netlist,
)
from repro.sim.batch import fuse_sample_matrices, merged_instance_settings, structural_key
from repro.sim.circuit import default_solver

EQUIVALENCE_ATOL = 1e-9


def _max_abs_diff(a, b):
    """Largest absolute element-wise deviation between two S-matrices."""
    return float(np.max(np.abs(a.data - b.data))) if a.data.size else 0.0


def _registered_pack_problems():
    """One pytest param per problem of every registered pack (default params)."""
    params = []
    for pack_name in pack_names():
        for problem in get_pack(pack_name).build_problems():
            params.append(pytest.param(problem, id=f"{pack_name}:{problem.name}"))
    return params


def _perturbing_batch(netlist, num_samples=3, scale=1e-3):
    """Settings overrides scaling every float setting, preserving zeros/masks."""
    batch = []
    for sample in range(num_samples):
        overrides = {}
        for name, inst in netlist.instances.items():
            perturbed = {
                key: value * (1.0 - scale * (sample + 1))
                for key, value in inst.settings.items()
                if isinstance(value, float) and not isinstance(value, bool)
            }
            if perturbed:
                overrides[name] = perturbed
        batch.append(overrides)
    return batch


def _ring_netlist():
    """All-pass ring: coupler + feedback waveguide (one feedback cluster)."""
    return Netlist(
        instances={
            "cp": Instance("coupler", {"coupling": 0.2}),
            "loop": Instance("waveguide", {"length": 31.4}),
        },
        connections={"cp,O2": "loop,I1", "loop,O1": "cp,I2"},
        ports={"I1": "cp,I1", "O1": "cp,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def _shifter_netlist():
    """A single phase shifter (vectorisable model: array ``phase`` works)."""
    return Netlist(
        instances={"ps": Instance("phase_shifter", {"phase": 0.0, "length": 10.0})},
        ports={"I1": "ps,I1", "O1": "ps,O1"},
        models={"phase_shifter": "phase_shifter"},
    )


# ----------------------------------------------------------------------
# batch.py primitives
# ----------------------------------------------------------------------
class TestApplySettings:
    def test_merge_keeps_unlisted_settings(self):
        netlist = _ring_netlist()
        derived = apply_settings(netlist, {"cp": {"coupling": 0.4}})
        assert derived.instances["cp"].settings == {"coupling": 0.4}
        assert derived.instances["loop"].settings == {"length": 31.4}

    def test_merge_adds_new_keys(self):
        derived = apply_settings(_ring_netlist(), {"loop": {"loss_db_cm": 1.0}})
        assert derived.instances["loop"].settings == {"length": 31.4, "loss_db_cm": 1.0}

    def test_replace_substitutes_wholesale(self):
        derived = apply_settings(
            _ring_netlist(), {"loop": {"loss_db_cm": 1.0}}, merge=False
        )
        assert derived.instances["loop"].settings == {"loss_db_cm": 1.0}

    def test_unknown_instance_raises(self):
        with pytest.raises(KeyError, match="unknown instance"):
            apply_settings(_ring_netlist(), {"nope": {"coupling": 0.5}})

    def test_derived_netlist_is_independent(self):
        base = _ring_netlist()
        derived = apply_settings(base, {"cp": {"coupling": 0.9}})
        derived.instances["loop"].settings["length"] = 1.0
        derived.connections["extra"] = "x"
        assert base.instances["loop"].settings == {"length": 31.4}
        assert "extra" not in base.connections

    def test_merged_instance_settings_covers_all_instances(self):
        merged = merged_instance_settings(_ring_netlist(), {"cp": {"coupling": 0.7}})
        assert set(merged) == {"cp", "loop"}
        assert merged["cp"] == {"coupling": 0.7}


class TestStructuralKey:
    def test_settings_do_not_change_the_key(self):
        a = _ring_netlist()
        b = apply_settings(a, {"cp": {"coupling": 0.9}, "loop": {"length": 1.0}})
        assert structural_key(a) == structural_key(b)

    def test_rewiring_changes_the_key(self):
        a = _ring_netlist()
        b = _ring_netlist()
        b.connections = {"cp,O2": "loop,I1"}
        assert structural_key(a) != structural_key(b)

    def test_instance_order_matters(self):
        a = _ring_netlist()
        b = Netlist(
            instances=dict(reversed(list(_ring_netlist().instances.items()))),
            connections=dict(a.connections),
            ports=dict(a.ports),
            models=dict(a.models),
        )
        assert structural_key(a) != structural_key(b)


class TestBatchEvaluateModel:
    def test_vectorised_path_for_array_capable_model(self, wavelengths, registry):
        info = registry.get("phase_shifter")
        variants = [{"phase": 0.1 * k, "length": 10.0} for k in range(4)]
        smatrices, vectorised = batch_evaluate_model(info, wavelengths, variants)
        assert vectorised
        for smatrix, settings in zip(smatrices, variants):
            reference = info.evaluate(wavelengths, **settings)
            assert np.array_equal(smatrix.data, reference.data)

    def test_vectorised_path_for_array_capable_switch(self, wavelengths, registry):
        # The switch models accept array extinction stacks (their scalar
        # guards were made elementwise for the batched executor).
        info = registry.get("switch1x2")
        variants = [{"extinction_db": 50.0 + k} for k in range(3)]
        smatrices, vectorised = batch_evaluate_model(info, wavelengths, variants)
        assert vectorised
        for smatrix, settings in zip(smatrices, variants):
            assert np.array_equal(smatrix.data, info.evaluate(wavelengths, **settings).data)

    def test_loop_fallback_for_scalar_only_model(self, wavelengths, registry):
        # mzi2x2 assembles its transfer matrix in a scalar-only loop, which
        # fails on array parameters and must select the loop fallback.
        info = registry.get("mzi2x2")
        variants = [{"theta": 0.2}, {"theta": 0.7}]
        smatrices, vectorised = batch_evaluate_model(info, wavelengths, variants)
        assert not vectorised
        for smatrix, settings in zip(smatrices, variants):
            assert np.array_equal(smatrix.data, info.evaluate(wavelengths, **settings).data)

    def test_single_variant_skips_vectorisation(self, wavelengths, registry):
        info = registry.get("phase_shifter")
        smatrices, vectorised = batch_evaluate_model(info, wavelengths, [{"phase": 0.5}])
        assert not vectorised
        assert len(smatrices) == 1

    def test_invalid_variant_raises_like_scalar_path(self, wavelengths, registry):
        info = registry.get("coupler")
        with pytest.raises(ValueError, match="coupling"):
            batch_evaluate_model(info, wavelengths, [{"coupling": 0.5}, {"coupling": 3.0}])

    def test_array_collapsing_model_falls_back(self, wavelengths):
        # Regression: a model that silently collapses an array parameter to
        # one scalar (no exception, right output shape) must be caught by
        # the endpoint guards and fall back to the scalar loop.
        from repro.sim import ModelInfo, SMatrix

        def collapsing(grid, *, a=1.0):
            """Buggy model: uses only the first element of an array ``a``."""
            value = float(np.asarray(a, dtype=float).reshape(-1)[0])
            grid = np.atleast_1d(np.asarray(grid, dtype=float))
            data = np.zeros((grid.size, 2, 2), dtype=complex)
            data[:, 1, 0] = data[:, 0, 1] = value
            return SMatrix(grid, ("I1", "O1"), data)

        info = ModelInfo("collapse", collapsing, "buggy", ("I1",), ("O1",), {"a": 1.0})
        variants = [{"a": 1.0}, {"a": 0.5}, {"a": 0.25}]
        smatrices, vectorised = batch_evaluate_model(info, wavelengths, variants)
        assert not vectorised
        for smatrix, settings in zip(smatrices, variants):
            assert np.array_equal(smatrix.data, collapsing(wavelengths, **settings).data)


class TestFuseSampleMatrices:
    def test_fuses_sample_major(self):
        a = np.arange(8, dtype=complex).reshape(2, 2, 2)
        b = a + 100.0
        fused = fuse_sample_matrices([[a], [b]], 2)
        assert fused[0].shape == (4, 2, 2)
        assert np.array_equal(fused[0][:2], a)
        assert np.array_equal(fused[0][2:], b)

    def test_shared_array_objects_are_tiled(self):
        a = np.arange(8, dtype=complex).reshape(2, 2, 2)
        fused = fuse_sample_matrices([[a], [a], [a]], 2)
        assert fused[0].shape == (6, 2, 2)
        assert np.array_equal(fused[0][4:], a)


# ----------------------------------------------------------------------
# Solver: evaluate_batch
# ----------------------------------------------------------------------
class TestSolverEvaluateBatch:
    @pytest.mark.parametrize("problem", _registered_pack_problems())
    def test_matches_per_sample_loop_on_every_pack_problem(
        self, problem, wavelengths, solver
    ):
        netlist = problem.golden_netlist()
        batch = _perturbing_batch(netlist)
        batched = solver.evaluate_batch(
            netlist, batch, wavelengths, port_spec=problem.port_spec
        )
        for overrides, result in zip(batch, batched):
            loop = solver.evaluate(
                apply_settings(netlist, overrides),
                wavelengths,
                port_spec=problem.port_spec,
            )
            assert result.ports == loop.ports
            assert _max_abs_diff(result, loop) <= EQUIVALENCE_ATOL

    @pytest.mark.parametrize("backend", ["dense", "cascade", "auto"])
    def test_backend_override_matches_loop_on_feedback_cluster(
        self, backend, wavelengths
    ):
        solver = CircuitSolver()
        netlist = _ring_netlist()
        batch = [
            {"cp": {"coupling": 0.1 + 0.2 * k}, "loop": {"length": 30.0 + k}}
            for k in range(3)
        ]
        batched = solver.evaluate_batch(netlist, batch, wavelengths, backend=backend)
        for overrides, result in zip(batch, batched):
            loop = solver.evaluate(
                apply_settings(netlist, overrides), wavelengths, backend=backend
            )
            assert _max_abs_diff(result, loop) <= EQUIVALENCE_ATOL

    def test_empty_batch_returns_empty_list(self, wavelengths):
        assert CircuitSolver().evaluate_batch(_ring_netlist(), [], wavelengths) == []

    def test_results_preserve_sample_order(self, wavelengths):
        solver = CircuitSolver()
        netlist = _shifter_netlist()
        batch = [{"ps": {"phase": 0.3 * k}} for k in range(5)]
        results = solver.evaluate_batch(netlist, batch, wavelengths)
        for overrides, result in zip(batch, results):
            loop = solver.evaluate(apply_settings(netlist, overrides), wavelengths)
            assert np.array_equal(result.data, loop.data)

    def test_mask_change_splits_into_topology_groups(self, wavelengths):
        # coupling = 0 zeroes the cross paths: a different structural mask,
        # therefore a different compiled plan and a separate executor pass.
        solver = CircuitSolver()
        netlist = _ring_netlist()
        batch = [{"cp": {"coupling": 0.0}}, {"cp": {"coupling": 0.3}}]
        results = solver.evaluate_batch(netlist, batch, wavelengths)
        assert solver.batch_stats().executor_passes == 2
        assert solver.batch_stats().samples == 2
        for overrides, result in zip(batch, results):
            loop = solver.evaluate(apply_settings(netlist, overrides), wavelengths)
            assert _max_abs_diff(result, loop) <= EQUIVALENCE_ATOL

    def test_identical_samples_share_one_instance_evaluation(self, wavelengths):
        solver = CircuitSolver()
        netlist = _shifter_netlist()
        results = solver.evaluate_batch(
            netlist, [{"ps": {"phase": 1.0}}, {"ps": {"phase": 1.0}}], wavelengths
        )
        stats = solver.batch_stats()
        assert stats.vectorised_model_evals + stats.looped_model_evals == 1
        assert np.array_equal(results[0].data, results[1].data)

    def test_invalid_settings_raise_classified_error(self, wavelengths):
        solver = CircuitSolver()
        with pytest.raises(OtherSyntaxError, match="rejected its settings"):
            solver.evaluate_batch(
                _ring_netlist(),
                [{"cp": {"coupling": 0.5}}, {"cp": {"coupling": 7.0}}],
                wavelengths,
            )

    def test_unknown_override_instance_raises(self, wavelengths):
        with pytest.raises(KeyError, match="unknown instance"):
            CircuitSolver().evaluate_batch(
                _ring_netlist(), [{"ghost": {"coupling": 0.5}}], wavelengths
            )

    def test_empty_replace_override_means_model_defaults(self, wavelengths):
        # Regression: with merge=False an EMPTY override replaces the
        # instance's settings with the model defaults -- it must neither be
        # served the base-settings matrix nor poison the shared instance
        # cache under the base-settings key.
        solver = CircuitSolver()
        netlist = Netlist(
            instances={"wg": Instance("waveguide", {"length": 77.0})},
            ports={"I1": "wg,I1", "O1": "wg,O1"},
            models={"waveguide": "waveguide"},
        )
        batch = [{"wg": {"length": 77.0}}, {"wg": {}}]
        results = solver.evaluate_batch(netlist, batch, wavelengths, merge=False)
        defaults = Netlist(
            instances={"wg": Instance("waveguide")},
            ports=dict(netlist.ports),
            models=dict(netlist.models),
        )
        reference = CircuitSolver()
        assert _max_abs_diff(results[0], reference.evaluate(netlist, wavelengths)) <= EQUIVALENCE_ATOL
        assert _max_abs_diff(results[1], reference.evaluate(defaults, wavelengths)) <= EQUIVALENCE_ATOL
        # The shared solver must still serve the base netlist correctly.
        after = solver.evaluate(netlist, wavelengths)
        assert _max_abs_diff(after, reference.evaluate(netlist, wavelengths)) <= EQUIVALENCE_ATOL

    def test_results_own_their_data(self, wavelengths):
        # Returned S-matrices must not be views pinning the whole fused
        # batch buffer (a cached single sample would otherwise keep the
        # full batch alive).
        solver = CircuitSolver()
        netlist = _shifter_netlist()
        results = solver.evaluate_batch(
            netlist, [{"ps": {"phase": 0.1 * k}} for k in range(4)], wavelengths
        )
        for result in results:
            assert result.data.base is None

    def test_wavelength_chunk_is_result_invariant(self, wavelengths):
        netlist = _ring_netlist()
        batch = [{"cp": {"coupling": 0.1 * (k + 1)}} for k in range(3)]
        plain = CircuitSolver().evaluate_batch(netlist, batch, wavelengths)
        chunked = CircuitSolver(max_wavelength_chunk=4).evaluate_batch(
            netlist, batch, wavelengths
        )
        for a, b in zip(plain, chunked):
            assert _max_abs_diff(a, b) <= EQUIVALENCE_ATOL

    def test_batch_stats_accumulate(self, wavelengths):
        solver = CircuitSolver()
        netlist = _shifter_netlist()
        solver.evaluate_batch(netlist, [{"ps": {"phase": 0.1}}] * 2, wavelengths)
        solver.evaluate_batch(netlist, [{"ps": {"phase": 0.2}}] * 3, wavelengths)
        stats = solver.batch_stats()
        assert stats.calls == 2
        assert stats.samples == 5
        assert stats.executor_passes == 2
        assert 0.0 < stats.fusion_rate < 1.0


# ----------------------------------------------------------------------
# Engine: batch-aware cache keys, evaluate_many, stats
# ----------------------------------------------------------------------
class TestEngineBatch:
    def test_batched_results_seed_per_sample_cache_entries(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=4))
        netlist = _ring_netlist()
        batch = [{"cp": {"coupling": 0.1 * (k + 1)}} for k in range(4)]
        batched = engine.evaluate_batch(netlist, batch, wavelengths)
        # A later per-sample evaluation of the derived netlist must hit.
        hits_before = engine.cache.stats.hits
        for overrides, result in zip(batch, batched):
            direct = engine.evaluate(apply_settings(netlist, overrides), wavelengths)
            assert np.array_equal(direct.data, result.data)
        assert engine.cache.stats.hits >= hits_before + len(batch)

    def test_per_sample_entries_hit_inside_batches(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=4))
        netlist = _ring_netlist()
        overrides = {"cp": {"coupling": 0.25}}
        engine.evaluate(apply_settings(netlist, overrides), wavelengths)
        engine.evaluate_batch(netlist, [overrides, {"cp": {"coupling": 0.35}}], wavelengths)
        stats = engine.batch_stats()
        assert stats.samples == 2
        assert stats.cache_hits == 1

    def test_duplicate_samples_solve_once(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=4))
        netlist = _shifter_netlist()
        overrides = {"ps": {"phase": 0.4}}
        results = engine.evaluate_batch(netlist, [overrides, overrides], wavelengths)
        assert np.array_equal(results[0].data, results[1].data)
        assert engine.solver.batch_stats().samples == 1  # deduplicated

    def test_evaluate_many_groups_structure_sharing_netlists(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=8))
        ring = _ring_netlist()
        shifter = _shifter_netlist()
        netlists = [
            apply_settings(ring, {"cp": {"coupling": 0.1}}),
            apply_settings(shifter, {"ps": {"phase": 0.1}}),
            apply_settings(ring, {"cp": {"coupling": 0.2}}),
            apply_settings(shifter, {"ps": {"phase": 0.2}}),
        ]
        results = engine.evaluate_many(netlists, wavelengths)
        assert engine.solver.batch_stats().calls == 2  # one per structure group
        for netlist, result in zip(netlists, results):
            direct = CircuitSolver().evaluate(netlist, wavelengths)
            assert _max_abs_diff(result, direct) <= EQUIVALENCE_ATOL

    def test_evaluate_many_isolates_failures(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=8))
        good = apply_settings(_ring_netlist(), {"cp": {"coupling": 0.2}})
        bad = apply_settings(_ring_netlist(), {"cp": {"coupling": 9.0}})
        results = engine.evaluate_many(
            [good, bad, good], wavelengths, return_exceptions=True
        )
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], OtherSyntaxError)
        assert not isinstance(results[2], Exception)

    def test_evaluate_many_raises_without_return_exceptions(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=8))
        bad = apply_settings(_ring_netlist(), {"cp": {"coupling": 9.0}})
        with pytest.raises(OtherSyntaxError):
            engine.evaluate_many([bad], wavelengths)

    def test_evaluate_many_per_item_path_matches_batched_path(self, wavelengths):
        netlists = [
            apply_settings(_ring_netlist(), {"cp": {"coupling": 0.1 * (k + 1)}})
            for k in range(3)
        ]
        batched = ExecutionEngine(EngineConfig(batch_size=4)).evaluate_many(
            netlists, wavelengths
        )
        per_item = ExecutionEngine(EngineConfig(batch_size=1)).evaluate_many(
            netlists, wavelengths
        )
        for a, b in zip(batched, per_item):
            assert _max_abs_diff(a, b) <= EQUIVALENCE_ATOL

    def test_stats_report_batch_hit_rates(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=4))
        netlist = _shifter_netlist()
        batch = [{"ps": {"phase": 0.1 * k}} for k in range(3)]
        engine.evaluate_batch(netlist, batch, wavelengths)
        engine.evaluate_batch(netlist, batch, wavelengths)  # all cache hits
        stats = engine.stats()
        assert stats["batch"]["calls"] == 2
        assert stats["batch"]["samples"] == 6
        assert stats["batch"]["cache_hits"] == 3
        assert stats["batch_hit_rate"] == pytest.approx(0.5)
        assert stats["solver_batch"]["samples"] == 3
        assert 0.0 <= stats["batch_fusion_rate"] <= 1.0
        assert stats["batch_size"] == 4

    def test_default_engine_threads_batch_size(self):
        engine = default_engine(batch_size=7)
        assert engine.config.batch_size == 7


# ----------------------------------------------------------------------
# Plan-cache / batch interaction (satellite)
# ----------------------------------------------------------------------
class TestPlanCacheBatchInteraction:
    def test_batch_does_not_duplicate_plan_entries(self, wavelengths):
        solver = CircuitSolver()
        netlist = _ring_netlist()
        batch = _perturbing_batch(netlist, num_samples=4)
        solver.evaluate_batch(netlist, batch, wavelengths)
        stores_after_first = solver.plan_cache_stats().stores
        assert stores_after_first == 1
        solver.evaluate_batch(netlist, batch, wavelengths)
        solver.evaluate(apply_settings(netlist, batch[0]), wavelengths)
        assert solver.plan_cache_stats().stores == stores_after_first
        assert solver.plan_cache_stats().hits >= 2

    def test_batch_and_per_sample_evaluation_share_one_plan(self, wavelengths):
        solver = CircuitSolver()
        netlist = _ring_netlist()
        solver.evaluate(netlist, wavelengths)  # compiles the plan
        stores = solver.plan_cache_stats().stores
        solver.evaluate_batch(netlist, _perturbing_batch(netlist), wavelengths)
        assert solver.plan_cache_stats().stores == stores  # settings-only: reuse

    def test_batch_does_not_evict_unrelated_plans(self, wavelengths):
        solver = CircuitSolver(plan_cache_entries=8)
        ring = _ring_netlist()
        shifter = _shifter_netlist()
        ring_fingerprint = solver.compile(ring, wavelengths).fingerprint
        solver.compile(shifter, wavelengths)
        for _ in range(3):
            solver.evaluate_batch(
                shifter, [{"ps": {"phase": 0.2}}, {"ps": {"phase": 0.9}}], wavelengths
            )
        assert solver.plan_cache_stats().evictions == 0
        # The ring's plan is still served from the cache.
        assert solver._plan_cache.peek(ring_fingerprint) is not None


# ----------------------------------------------------------------------
# LRUCache.peek (satellite)
# ----------------------------------------------------------------------
class TestLRUCachePeek:
    def test_peek_returns_value_without_touching_stats(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        lookups_before = cache.stats.lookups
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert cache.stats.lookups == lookups_before
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_peek_does_not_refresh_recency(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")  # must NOT move "a" to the back
        cache.put("c", 3)
        assert cache.peek("a") is None  # "a" was still least recently used
        assert cache.peek("b") == 2
        assert cache.peek("c") == 3

    def test_get_refreshes_recency_unlike_peek(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)
        assert cache.peek("b") is None  # "b" evicted instead
        assert cache.peek("a") == 1

    def test_peek_on_disabled_cache(self):
        cache = LRUCache(max_entries=0)
        cache.put("a", 1)
        assert cache.peek("a") is None


# ----------------------------------------------------------------------
# default_solver concurrency regression (satellite)
# ----------------------------------------------------------------------
class TestDefaultSolverConcurrency:
    def test_concurrent_evaluate_netlist_through_scheduler(self, wavelengths):
        # The module-level default solver is shared mutable state; driving it
        # through the PR 1 scheduler from many threads must neither corrupt
        # its memo dictionaries nor change any result.
        netlists = []
        for k in range(6):
            netlists.append(apply_settings(_ring_netlist(), {"cp": {"coupling": 0.1 + 0.1 * k}}))
            netlists.append(apply_settings(_shifter_netlist(), {"ps": {"phase": 0.3 * k}}))
        work = netlists * 4

        reference_solver = CircuitSolver()
        expected = [reference_solver.evaluate(netlist, wavelengths) for netlist in work]

        scheduler = TaskScheduler(workers=8)
        results = scheduler.map(lambda netlist: evaluate_netlist(netlist, wavelengths), work)
        for result, reference in zip(results, expected):
            assert _max_abs_diff(result, reference) <= EQUIVALENCE_ATOL

    def test_default_solver_is_one_instance_across_threads(self):
        scheduler = TaskScheduler(workers=8)
        identities = scheduler.map(lambda _: id(default_solver()), range(32))
        assert len(set(identities)) == 1

    def test_concurrent_evaluate_batch_on_shared_solver(self, wavelengths):
        solver = CircuitSolver()
        netlist = _ring_netlist()
        batches = [
            [{"cp": {"coupling": 0.05 * (k + 1) + 0.01 * j}} for j in range(3)]
            for k in range(8)
        ]
        expected = [
            [
                CircuitSolver().evaluate(apply_settings(netlist, overrides), wavelengths)
                for overrides in batch
            ]
            for batch in batches
        ]
        scheduler = TaskScheduler(workers=8)
        results = scheduler.map(
            lambda batch: solver.evaluate_batch(netlist, batch, wavelengths), batches
        )
        for got, want in zip(results, expected):
            for a, b in zip(got, want):
                assert _max_abs_diff(a, b) <= EQUIVALENCE_ATOL

    def test_memo_lock_protects_clear_races(self, wavelengths):
        # Force the memo-overflow clear path concurrently: no exceptions and
        # correct fingerprints afterwards.
        solver = CircuitSolver()
        netlist = _shifter_netlist()

        def hammer(seed):
            for k in range(20):
                solver.evaluate(
                    apply_settings(netlist, {"ps": {"phase": 0.001 * (seed * 20 + k)}}),
                    wavelengths,
                )
            return True

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reference = CircuitSolver().evaluate(
            apply_settings(netlist, {"ps": {"phase": 0.0}}), wavelengths
        )
        again = solver.evaluate(
            apply_settings(netlist, {"ps": {"phase": 0.0}}), wavelengths
        )
        assert _max_abs_diff(reference, again) <= EQUIVALENCE_ATOL


# ----------------------------------------------------------------------
# Sweep / CLI plumbing
# ----------------------------------------------------------------------
class TestBatchPlumbing:
    def test_sweep_config_threads_batch_size(self):
        config = SweepConfig(batch_size=6)
        assert config.engine_config().batch_size == 6

    def test_cli_accepts_batch_size(self):
        args = build_parser().parse_args(["sweep", "--batch-size", "8"])
        assert args.batch_size == 8

    def test_cli_default_batch_size_is_one(self):
        args = build_parser().parse_args(["sweep"])
        assert args.batch_size == 1

    def test_batched_sweep_reports_are_identical(self):
        base_config = SweepConfig(
            samples_per_problem=2, num_wavelengths=11, problems=("mzi_ps",)
        )
        batched_config = SweepConfig(
            samples_per_problem=2, num_wavelengths=11, problems=("mzi_ps",), batch_size=4
        )
        base = run_sweep(base_config, restriction_settings=(False,))
        batched = run_sweep(batched_config, restriction_settings=(False,))
        assert json.dumps(base.to_dict(), sort_keys=True) == json.dumps(
            batched.to_dict(), sort_keys=True
        )

    def test_registry_override_still_supported(self, wavelengths):
        registry = default_registry()
        engine = ExecutionEngine(EngineConfig(batch_size=4), registry=registry)
        assert engine.registry is registry
        results = engine.evaluate_batch(
            _ring_netlist(), [{"cp": {"coupling": 0.3}}], wavelengths
        )
        assert len(results) == 1
