"""Tests for the frequency-domain circuit solver."""

import numpy as np
import pytest

from repro.netlist import Instance, Netlist, PortSpec, UndefinedModelError, WrongPortError
from repro.netlist.errors import OtherSyntaxError
from repro.sim import CircuitSolver, evaluate_netlist, is_unitary
from repro.sim.models import mzi, waveguide


def chain_netlist(lengths):
    """A simple chain of waveguides."""
    instances = {f"wg{i + 1}": Instance("waveguide", {"length": float(l)}) for i, l in enumerate(lengths)}
    connections = {
        f"wg{i + 1},O1": f"wg{i + 2},I1" for i in range(len(lengths) - 1)
    }
    ports = {"I1": "wg1,I1", "O1": f"wg{len(lengths)},O1"}
    return Netlist(instances=instances, connections=connections, ports=ports, models={"waveguide": "waveguide"})


class TestChains:
    def test_single_instance(self, wavelengths):
        netlist = chain_netlist([25.0])
        sm = evaluate_netlist(netlist, wavelengths)
        assert np.allclose(sm.s("O1", "I1"), waveguide(wavelengths, length=25.0).s("O1", "I1"))

    def test_chain_equals_total_length(self, wavelengths):
        chained = evaluate_netlist(chain_netlist([10.0, 15.0, 5.0]), wavelengths)
        single = waveguide(wavelengths, length=30.0)
        assert np.allclose(chained.s("O1", "I1"), single.s("O1", "I1"), atol=1e-10)

    def test_external_port_names_preserved(self, wavelengths):
        sm = evaluate_netlist(chain_netlist([10.0, 10.0]), wavelengths)
        assert set(sm.ports) == {"I1", "O1"}

    def test_no_spurious_reflection(self, wavelengths):
        sm = evaluate_netlist(chain_netlist([10.0, 10.0]), wavelengths)
        assert np.allclose(sm.transmission("I1", "I1"), 0.0)


class TestInterferometers:
    def test_composed_mzi_matches_analytic(self, wavelengths, mzi_ps_problem):
        netlist = mzi_ps_problem.golden_netlist()
        sm = evaluate_netlist(netlist, wavelengths)
        analytic = mzi(wavelengths, delta_length=10.0, length=10.0)
        assert np.allclose(
            sm.transmission("O1", "I1"), analytic.transmission("O1", "I1"), atol=1e-10
        )

    def test_lossless_interferometer_is_unitary_2x2(self, wavelengths):
        from repro.switching import os2x2_netlist

        sm = evaluate_netlist(os2x2_netlist(), wavelengths)
        assert is_unitary(sm, atol=1e-8)

    def test_ring_feedback_loop_converges(self, wavelengths):
        # A circuit with a feedback path (ring built from a coupler + waveguide).
        netlist = Netlist(
            instances={
                "cp": Instance("coupler", {"coupling": 0.2}),
                "loop": Instance("waveguide", {"length": 31.4}),
            },
            connections={"cp,O2": "loop,I1", "loop,O1": "cp,I2"},
            ports={"I1": "cp,I1", "O1": "cp,O1"},
            models={"coupler": "coupler", "waveguide": "waveguide"},
        )
        sm = evaluate_netlist(netlist, wavelengths)
        # Lossless all-pass ring: |S21| == 1 at every wavelength.
        assert np.allclose(sm.transmission("O1", "I1"), 1.0, atol=1e-9)


class TestSolverErrors:
    def test_undefined_model(self, wavelengths):
        netlist = chain_netlist([10.0])
        netlist.models["waveguide"] = "wire"
        with pytest.raises(UndefinedModelError):
            evaluate_netlist(netlist, wavelengths)

    def test_bad_settings_classified(self, wavelengths):
        netlist = chain_netlist([10.0])
        netlist.instances["wg1"].settings["bogus"] = 1.0
        with pytest.raises(OtherSyntaxError, match="rejected its settings"):
            evaluate_netlist(netlist, wavelengths)

    def test_invalid_setting_value_classified(self, wavelengths):
        netlist = Netlist(
            instances={"cp": Instance("coupler", {"coupling": 2.0})},
            ports={"I1": "cp,I1", "O1": "cp,O1"},
            models={"coupler": "coupler"},
        )
        with pytest.raises(OtherSyntaxError):
            evaluate_netlist(netlist, wavelengths)

    def test_port_spec_enforced(self, wavelengths):
        from repro.netlist import WrongPortCountError

        netlist = chain_netlist([10.0])
        with pytest.raises(WrongPortCountError):
            evaluate_netlist(netlist, wavelengths, port_spec=PortSpec(2, 2))

    def test_validation_can_be_disabled(self, wavelengths):
        netlist = chain_netlist([10.0, 20.0])
        solver = CircuitSolver(validate=False)
        sm = solver.evaluate(netlist, wavelengths)
        assert sm.num_ports == 2

    def test_wrong_port_raised_without_validation(self, wavelengths):
        netlist = chain_netlist([10.0, 20.0])
        netlist.connections["wg1,O1"] = "wg2,I9"
        solver = CircuitSolver(validate=False)
        with pytest.raises(WrongPortError):
            solver.evaluate(netlist, wavelengths)

    def test_default_wavelength_grid_used(self):
        sm = evaluate_netlist(chain_netlist([10.0]))
        from repro.constants import DEFAULT_NUM_WAVELENGTHS

        assert sm.num_wavelengths == DEFAULT_NUM_WAVELENGTHS


class TestDanglingPorts:
    def test_unconnected_ports_are_allowed(self, wavelengths):
        # An mmi1x2 with only one output used: the other output is dangling.
        netlist = Netlist(
            instances={"splitter": Instance("mmi1x2")},
            ports={"I1": "splitter,I1", "O1": "splitter,O1"},
            models={"mmi1x2": "mmi1x2"},
        )
        sm = evaluate_netlist(netlist, wavelengths)
        assert np.allclose(sm.transmission("O1", "I1"), 0.5)
