"""Tests for the evaluation loop (Fig. 1): syntax check, functional check, feedback."""

import pytest

from repro.bench import GoldenStore, get_problem
from repro.evalkit import EvaluationConfig, Evaluator
from repro.llm import EchoDesigner, PerfectDesigner, SimulatedDesigner, format_response
from repro.netlist import ErrorCategory
from repro.prompts import PromptConfig
from tests.conftest import TEST_NUM_WAVELENGTHS


class TestEvaluateResponse:
    def test_golden_passes(self, evaluator, mzi_ps_problem):
        response = format_response("analysis", mzi_ps_problem.golden_netlist().to_json())
        outcome = evaluator.evaluate_response(mzi_ps_problem, response)
        assert outcome.syntax_ok and outcome.functional_ok
        assert outcome.error is None

    def test_bare_json_also_passes(self, evaluator, mzi_ps_problem):
        outcome = evaluator.evaluate_response(
            mzi_ps_problem, mzi_ps_problem.golden_netlist().to_json()
        )
        assert outcome.syntax_ok

    def test_markdown_fences_fail_as_extra_content(self, evaluator, mzi_ps_problem):
        response = format_response(
            "analysis", f"```json\n{mzi_ps_problem.golden_netlist().to_json()}\n```"
        )
        outcome = evaluator.evaluate_response(mzi_ps_problem, response)
        assert not outcome.syntax_ok
        assert outcome.error.category is ErrorCategory.EXTRA_CONTENT

    def test_wrong_parameter_is_functional_error(self, evaluator, mzi_ps_problem):
        from repro.bench.problems.fundamental import mzi_ps_golden

        response = format_response("analysis", mzi_ps_golden(delta_length=50.0).to_json())
        outcome = evaluator.evaluate_response(mzi_ps_problem, response)
        assert outcome.syntax_ok
        assert not outcome.functional_ok
        assert outcome.error.category is ErrorCategory.FUNCTIONAL

    def test_wrong_structure_is_functional_error(self, evaluator):
        from repro.bench.problems.fundamental import mzi_ps_golden

        problem = get_problem("mzm")
        response = format_response("analysis", mzi_ps_golden().to_json())
        outcome = evaluator.evaluate_response(problem, response)
        assert outcome.syntax_ok
        assert not outcome.functional_ok

    def test_wrong_port_count_detected(self, evaluator, mzi_ps_problem):
        netlist = mzi_ps_problem.golden_netlist()
        del netlist.ports["O1"]
        outcome = evaluator.evaluate_response(
            mzi_ps_problem, format_response("a", netlist.to_json())
        )
        assert outcome.error.category is ErrorCategory.WRONG_PORT_COUNT

    def test_gibberish_is_other_syntax(self, evaluator, mzi_ps_problem):
        outcome = evaluator.evaluate_response(mzi_ps_problem, "I cannot help with that.")
        assert outcome.error.category is ErrorCategory.OTHER_SYNTAX


class TestFeedbackLoop:
    def test_perfect_designer_passes_first_try(self, evaluator, mzi_ps_problem):
        sample = evaluator.run_sample(PerfectDesigner(), mzi_ps_problem, sample_index=0)
        assert len(sample.attempts) == 1
        assert sample.attempts[0].passed
        assert sample.first_pass_iteration("functional") == 0

    def test_echo_designer_exhausts_iterations(self, evaluator, mzi_ps_problem):
        sample = evaluator.run_sample(
            EchoDesigner("not a netlist"), mzi_ps_problem, sample_index=0
        )
        assert len(sample.attempts) == evaluator.config.max_feedback_iterations + 1
        assert sample.first_pass_iteration("syntax") is None

    def test_feedback_reaches_the_designer(self, golden_store, mzi_ps_problem):
        # A designer that passes only once it has received at least one
        # feedback turn: proves the loop actually extends the conversation.
        class FeedbackAwareDesigner:
            name = "FeedbackAware"

            def complete(self, messages, *, seed=None):
                user_turns = [m for m in messages if m.role == "user"]
                if len(user_turns) < 2:
                    return "garbage"
                return format_response("fixed", mzi_ps_problem.golden_netlist().to_json())

        config = EvaluationConfig(
            samples_per_problem=1,
            max_feedback_iterations=2,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
        )
        evaluator = Evaluator(config, golden_store=golden_store)
        sample = evaluator.run_sample(FeedbackAwareDesigner(), mzi_ps_problem, 0)
        assert sample.first_pass_iteration("functional") == 1

    def test_run_problem_generates_all_samples(self, evaluator, mzi_ps_problem):
        samples = evaluator.run_problem(PerfectDesigner(), mzi_ps_problem)
        assert len(samples) == evaluator.config.samples_per_problem
        assert {s.sample_index for s in samples} == set(range(len(samples)))

    def test_run_suite_subset(self, evaluator, suite):
        report = evaluator.run_suite(PerfectDesigner(), suite[:3])
        assert len(report.results) == 3
        assert report.pass_at_k(1, metric="functional", max_feedback=0) == pytest.approx(100.0)

    def test_restrictions_flag_recorded(self, golden_store, suite):
        config = EvaluationConfig(
            samples_per_problem=1,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            include_restrictions=True,
        )
        evaluator = Evaluator(config, golden_store=golden_store)
        report = evaluator.run_suite(PerfectDesigner(), suite[:1])
        assert report.with_restrictions

    def test_prompt_config_override(self, evaluator, suite):
        report = evaluator.run_suite(
            PerfectDesigner(), suite[:1], prompt_config=PromptConfig(include_restrictions=True)
        )
        assert report.with_restrictions

    def test_mismatched_golden_store_rejected(self, golden_store):
        config = EvaluationConfig(num_wavelengths=golden_store.num_wavelengths + 5)
        with pytest.raises(ValueError, match="wavelength grid"):
            Evaluator(config, golden_store=golden_store)

    def test_keep_responses_flag(self, golden_store, mzi_ps_problem):
        config = EvaluationConfig(
            samples_per_problem=1,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            keep_responses=True,
        )
        evaluator = Evaluator(config, golden_store=golden_store)
        sample = evaluator.run_sample(PerfectDesigner(), mzi_ps_problem, 0)
        assert sample.attempts[0].response_text is not None


class TestSimulatedDesignerThroughEvaluator:
    def test_feedback_improves_pass_rate(self, golden_store, suite):
        config = EvaluationConfig(
            samples_per_problem=3,
            max_feedback_iterations=3,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
        )
        evaluator = Evaluator(config, golden_store=golden_store)
        designer = SimulatedDesigner("Claude 3.5 Sonnet")
        report = evaluator.run_suite(designer, suite[:6])
        no_feedback = report.pass_at_k(1, metric="syntax", max_feedback=0)
        with_feedback = report.pass_at_k(1, metric="syntax", max_feedback=3)
        assert with_feedback >= no_feedback

    def test_pass5_geq_pass1(self, golden_store, suite):
        config = EvaluationConfig(
            samples_per_problem=5,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
        )
        evaluator = Evaluator(config, golden_store=golden_store)
        report = evaluator.run_suite(SimulatedDesigner("GPT-4"), suite[:5])
        assert report.pass_at_k(5, metric="syntax", max_feedback=0) >= report.pass_at_k(
            1, metric="syntax", max_feedback=0
        )
