"""Tests for hierarchical netlist composition."""

import numpy as np
import pytest

from repro.bench.problems.fundamental import mzi_ps_golden, mzm_golden
from repro.bench.problems.interconnects import wdm_demux_golden, wdm_mux_golden
from repro.netlist import (
    Instance,
    Netlist,
    OtherSyntaxError,
    compose_netlists,
    prefix_netlist,
    subcircuit_port,
    validate_netlist,
)
from repro.sim import evaluate_netlist


class TestPrefixNetlist:
    def test_instances_renamed_consistently(self):
        prefixed = prefix_netlist(mzi_ps_golden(), "tx")
        assert "txMmi1" in prefixed.instances
        assert all(name.startswith("tx") for name in prefixed.instances)
        # Connections and ports were remapped to the new names.
        assert all("tx" in key for key in prefixed.connections)
        assert prefixed.ports["I1"].startswith("tx")

    def test_external_port_names_preserved(self):
        prefixed = prefix_netlist(mzi_ps_golden(), "stageone")
        assert set(prefixed.ports) == {"I1", "O1"}

    def test_prefixed_netlist_still_validates_and_simulates(self, wavelengths):
        prefixed = prefix_netlist(mzi_ps_golden(), "alpha")
        validate_netlist(prefixed)
        original = evaluate_netlist(mzi_ps_golden(), wavelengths)
        renamed = evaluate_netlist(prefixed, wavelengths)
        assert np.allclose(
            original.transmission("O1", "I1"), renamed.transmission("O1", "I1")
        )

    def test_empty_prefix_is_identity(self):
        original = mzi_ps_golden()
        assert prefix_netlist(original, "").to_dict() == original.to_dict()

    @pytest.mark.parametrize("bad", ["1tx", "tx_a", "a,b"])
    def test_invalid_prefix_rejected(self, bad):
        with pytest.raises(ValueError):
            prefix_netlist(mzi_ps_golden(), bad)


class TestComposeNetlists:
    def test_chain_of_two_subcircuits(self, wavelengths):
        composed = compose_netlists(
            {"first": mzi_ps_golden(), "second": mzm_golden()},
            links={subcircuit_port("first", "O1"): subcircuit_port("second", "I1")},
            ports={"I1": "first:I1", "O1": "second:O1"},
        )
        validate_netlist(composed)
        assert composed.num_instances() == 8
        # Chained transmission equals the product of the parts' transmissions.
        chained = evaluate_netlist(composed, wavelengths).transmission("O1", "I1")
        t_first = evaluate_netlist(mzi_ps_golden(), wavelengths).transmission("O1", "I1")
        t_second = evaluate_netlist(mzm_golden(), wavelengths).transmission("O1", "I1")
        assert np.allclose(chained, t_first * t_second, atol=1e-10)

    def test_wdm_link_composition(self, wavelengths):
        link = compose_netlists(
            {"tx": wdm_mux_golden(), "rx": wdm_demux_golden()},
            links={"tx:O1": "rx:I1"},
            ports={
                **{f"I{k}": f"tx:I{k}" for k in range(1, 5)},
                **{f"O{k}": f"rx:O{k}" for k in range(1, 5)},
            },
        )
        validate_netlist(link)
        smatrix = evaluate_netlist(link, wavelengths)
        assert set(smatrix.ports) == {f"I{k}" for k in range(1, 5)} | {
            f"O{k}" for k in range(1, 5)
        }

    def test_models_are_merged(self):
        composed = compose_netlists(
            {"a": mzi_ps_golden(), "b": mzm_golden()},
            ports={"I1": "a:I1", "O1": "a:O1"},
        )
        assert "mmi1x2" in composed.models and "phase_shifter" in composed.models

    def test_conflicting_model_bindings_rejected(self):
        left = mzi_ps_golden()
        right = mzm_golden()
        right.models["mmi1x2"] = "mmi2x2"  # same component bound to another model
        with pytest.raises(ValueError, match="conflicting model binding"):
            compose_netlists({"a": left, "b": right})

    def test_unknown_part_or_port_rejected(self):
        with pytest.raises(KeyError, match="unknown sub-circuit"):
            compose_netlists({"a": mzi_ps_golden()}, ports={"I1": "b:I1"})
        with pytest.raises(KeyError, match="no external port"):
            compose_netlists({"a": mzi_ps_golden()}, ports={"I1": "a:I9"})

    def test_malformed_reference_rejected(self):
        with pytest.raises(OtherSyntaxError):
            compose_netlists({"a": mzi_ps_golden()}, ports={"I1": "a.I1"})

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError):
            compose_netlists({})

    def test_dangling_subcircuit_ports_allowed(self, wavelengths):
        # Only re-export the input; the output stays dangling but the netlist
        # still simulates (dangling ports are legal in the format).
        composed = compose_netlists(
            {"only": mzi_ps_golden()},
            ports={"I1": "only:I1", "O1": "only:O1"},
        )
        evaluate_netlist(composed, wavelengths)
