"""Tests of the optional JIT kernels of the compiled cascade executor.

The kernel *logic* is exercised on every machine through the ``"python"``
mode (the same function bodies numba would compile, run uncompiled); the
numba legs re-run the equivalence assertions under the actual JIT and are
skipped cleanly when numba is not installed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.sim import CircuitSolver
from repro.sim.kernels import (
    HAVE_NUMBA,
    KERNEL_MODES,
    get_kernels,
    kernel_status,
    resolve_kernel_mode,
    set_kernel_mode,
    warmup,
)
from test_properties_batch import REGISTRY, WAVELENGTHS, two_rail_cases

#: The kernels recompute the numpy path's sums with at most a different
#: floating-point association order, so agreement is near machine precision.
KERNEL_ATOL = 1e-12


@pytest.fixture
def kernel_mode():
    """Restore the process-global kernel mode after each test."""
    before = kernel_status()["mode"]
    yield set_kernel_mode
    set_kernel_mode(before)


def _evaluate_under_mode(mode, netlist, batch):
    """Compile + evaluate under one kernel mode with a fresh solver.

    A fresh solver per mode matters: dispatch is stamped at compile time,
    so a shared plan cache would replay the first mode's kernels.
    """
    set_kernel_mode(mode)
    solver = CircuitSolver(registry=REGISTRY)
    single = solver.evaluate(netlist, WAVELENGTHS, backend="cascade")
    batched = solver.evaluate_batch(netlist, batch, WAVELENGTHS, backend="cascade")
    return single, batched


@given(two_rail_cases())
@settings(max_examples=25, deadline=None)
def test_python_kernels_match_numpy_path(case):
    """Pure-Python kernel bodies agree with the vectorised numpy executor."""
    netlist, batch = case
    before = kernel_status()["mode"]
    try:
        numpy_single, numpy_batched = _evaluate_under_mode("numpy", netlist, batch)
        python_single, python_batched = _evaluate_under_mode("python", netlist, batch)
    finally:
        set_kernel_mode(before)
    assert float(np.max(np.abs(python_single.data - numpy_single.data))) <= KERNEL_ATOL
    for numpy_result, python_result in zip(numpy_batched, python_batched):
        delta = float(np.max(np.abs(python_result.data - numpy_result.data)))
        assert delta <= KERNEL_ATOL


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba is not installed")
@given(two_rail_cases())
@settings(max_examples=10, deadline=None)
def test_numba_kernels_match_numpy_path(case):
    """The JIT-compiled kernels agree with the vectorised numpy executor."""
    netlist, batch = case
    before = kernel_status()["mode"]
    try:
        numpy_single, numpy_batched = _evaluate_under_mode("numpy", netlist, batch)
        numba_single, numba_batched = _evaluate_under_mode("numba", netlist, batch)
    finally:
        set_kernel_mode(before)
    assert float(np.max(np.abs(numba_single.data - numpy_single.data))) <= KERNEL_ATOL
    for numpy_result, numba_result in zip(numpy_batched, numba_batched):
        delta = float(np.max(np.abs(numba_result.data - numpy_result.data)))
        assert delta <= KERNEL_ATOL


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba is not installed")
def test_warmup_compiles_kernels():
    assert warmup() is True


def test_warmup_without_numba_reports_false():
    if HAVE_NUMBA:
        pytest.skip("numba is installed")
    assert warmup() is False


def test_feedback_cluster_under_python_kernels(kernel_mode):
    """Ring (feedback-cluster) circuits route through the cluster_fill kernel."""
    from repro.netlist import Instance, Netlist

    netlist = Netlist(
        instances={
            "cp": Instance("coupler", {"coupling": 0.3}),
            "loop": Instance("waveguide", {"length": 42.0, "loss_db_cm": 1.5}),
        },
        connections={"cp,O2": "loop,I1", "loop,O1": "cp,I2"},
        ports={"I1": "cp,I1", "O1": "cp,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )
    batch = [{"cp": {"coupling": c}} for c in (0.1, 0.5, 0.9)]
    numpy_single, numpy_batched = _evaluate_under_mode("numpy", netlist, batch)
    python_single, python_batched = _evaluate_under_mode("python", netlist, batch)
    assert np.allclose(python_single.data, numpy_single.data, atol=KERNEL_ATOL, rtol=0)
    for a, b in zip(numpy_batched, python_batched):
        assert np.allclose(a.data, b.data, atol=KERNEL_ATOL, rtol=0)


# ----------------------------------------------------------------------
# Mode selection and stamping
# ----------------------------------------------------------------------
def test_mode_is_stamped_on_compiled_plans(kernel_mode):
    from repro.netlist import Instance, Netlist

    netlist = Netlist(
        instances={"wg": Instance("waveguide", {"length": 10.0})},
        connections={},
        ports={"I1": "wg,I1", "O1": "wg,O1"},
        models={"waveguide": "waveguide"},
    )
    set_kernel_mode("python")
    solver = CircuitSolver()
    compiled = solver.compile(netlist, WAVELENGTHS)
    assert compiled.kernel_mode == "python"
    set_kernel_mode("numpy")
    assert CircuitSolver().compile(netlist, WAVELENGTHS).kernel_mode is None


def test_resolve_kernel_mode_matrix(kernel_mode):
    set_kernel_mode("numpy")
    assert resolve_kernel_mode() is None
    set_kernel_mode("python")
    assert resolve_kernel_mode() == "python"
    set_kernel_mode("auto")
    assert resolve_kernel_mode() == ("numba" if HAVE_NUMBA else None)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown kernel mode"):
        set_kernel_mode("fortran")


def test_numba_mode_without_numba_raises():
    if HAVE_NUMBA:
        pytest.skip("numba is installed")
    with pytest.raises(RuntimeError, match="numba is not installed"):
        set_kernel_mode("numba")


def test_get_kernels_degrades_when_unsatisfiable():
    """A plan stamped 'numba' (e.g. from the shared spill) falls back cleanly."""
    kernels = get_kernels("numba")
    if HAVE_NUMBA:
        assert kernels is not None and kernels.mode == "numba"
    else:
        assert kernels is None
    assert get_kernels(None) is None
    assert get_kernels("python").mode == "python"


def test_kernel_status_shape():
    status = kernel_status()
    assert set(status) == {"have_numba", "mode", "resolved"}
    assert status["mode"] in KERNEL_MODES
