"""Tests for the shared constants and unit conversions."""

import numpy as np
import pytest

from repro import constants


def test_default_wavelength_grid_spans_band():
    grid = constants.default_wavelength_grid()
    assert grid[0] == pytest.approx(1.510)
    assert grid[-1] == pytest.approx(1.590)
    assert grid.size == constants.DEFAULT_NUM_WAVELENGTHS
    assert np.all(np.diff(grid) > 0)


def test_default_wavelength_grid_custom_size():
    grid = constants.default_wavelength_grid(5)
    assert grid.size == 5
    assert grid[0] == pytest.approx(1.510)
    assert grid[-1] == pytest.approx(1.590)


def test_wavelength_to_frequency_center():
    freq = constants.wavelength_to_frequency_thz(1.55)
    # 193.4 THz is the standard telecom C-band centre frequency.
    assert freq == pytest.approx(193.41, abs=0.05)


def test_wavelength_to_frequency_vectorised():
    grid = constants.default_wavelength_grid(7)
    freqs = constants.wavelength_to_frequency_thz(grid)
    assert freqs.shape == grid.shape
    assert np.all(np.diff(freqs) < 0)  # longer wavelength -> lower frequency


def test_loss_conversion_zero():
    assert constants.db_per_cm_to_neper_per_um(0.0) == 0.0


def test_loss_conversion_matches_definition():
    # 3 dB/cm power loss over 1 cm must give 10 ** (-3/10) power transmission.
    alpha = constants.db_per_cm_to_neper_per_um(3.0)
    length_um = 1e4
    power_transmission = np.exp(-2.0 * alpha * length_um)
    assert power_transmission == pytest.approx(10 ** (-3.0 / 10.0))


def test_loss_conversion_monotone():
    assert constants.db_per_cm_to_neper_per_um(2.0) > constants.db_per_cm_to_neper_per_um(1.0)
