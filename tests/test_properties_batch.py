"""Property-based differential fuzzer for batched execution.

Extends the ``test_properties*.py`` family: hypothesis generates random
two-rail circuit topologies (couplers, MZI cells, crossings, parallel arm
devices, all-pass ring feedback clusters, and an asymmetric isolator-like
device that disables the reciprocity cover) together with random settings
batches, and asserts that batched execution is numerically equivalent
(<= 1e-9) to the per-sample ``CircuitSolver.evaluate`` loop across the
dense backend, the PR 3 per-port cascade reference (``cascade_solve``) and
the compiled level-batched cascade.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import Instance, Netlist
from repro.sim import CircuitSolver, ModelInfo, SMatrix, apply_settings, default_registry
from repro.sim.cascade import cascade_solve

EQUIVALENCE_ATOL = 1e-9
WAVELENGTHS = np.linspace(1.51, 1.59, 5)

#: Stage kinds the random two-rail circuits are assembled from.
STAGE_KINDS = ("coupler", "mzi2x2", "crossing", "arms", "ring_top", "isolator_top")


def _registry_with_isolator():
    """The default registry plus a non-reciprocal (isolator-like) device.

    Its asymmetric S-matrix disables the solver's reciprocity-cover
    schedule, so the fuzzer also exercises the general column-group path.
    """
    registry = default_registry().copy()
    base = registry.get("waveguide")

    def isolator(wavelengths, **model_settings):
        """One-way waveguide: the backward path is killed."""
        smatrix = base.func(wavelengths, **model_settings)
        data = smatrix.data.copy()
        data[:, 0, 1] = 0.0
        return SMatrix(smatrix.wavelengths, smatrix.ports, data)

    registry.register(
        ModelInfo(
            name="isolator",
            func=isolator,
            description="One-way waveguide (asymmetric test device)",
            input_ports=base.input_ports,
            output_ports=base.output_ports,
            parameters=dict(base.parameters),
        )
    )
    return registry


REGISTRY = _registry_with_isolator()
SOLVER = CircuitSolver(registry=REGISTRY)


def _stage_settings(kind, draw, floats):
    """Draw one sample's settings for every instance of one stage."""
    if kind == "coupler":
        return {"cp": {"coupling": draw(floats(0.05, 0.95))}}
    if kind == "mzi2x2":
        return {
            "mzi": {
                "theta": draw(floats(-np.pi, np.pi)),
                "phi": draw(floats(-np.pi, np.pi)),
            }
        }
    if kind == "crossing":
        return {"x": {"loss_db": draw(floats(0.0, 3.0))}}
    if kind == "arms":
        return {
            "a": {"length": draw(floats(1.0, 150.0)), "loss_db_cm": draw(floats(0.0, 5.0))},
            "b": {"length": draw(floats(1.0, 150.0)), "phase": draw(floats(-np.pi, np.pi))},
        }
    if kind == "ring_top":
        return {
            "cp": {"coupling": draw(floats(0.05, 0.95))},
            "loop": {"length": draw(floats(5.0, 80.0)), "loss_db_cm": draw(floats(0.1, 5.0))},
        }
    assert kind == "isolator_top"
    return {"iso": {"length": draw(floats(1.0, 120.0)), "loss_db_cm": draw(floats(0.0, 5.0))}}


def _build_two_rail(stage_kinds, stage_settings):
    """Assemble a two-rail circuit from stage kinds plus per-stage settings.

    ``stage_settings[i]`` maps the stage's local instance keys to settings;
    returns the netlist and the per-stage instance-name mapping (local key
    to netlist instance name) used to express other samples as overrides.
    """
    instances = {}
    connections = {}
    ports = {}
    models = {
        "coupler": "coupler",
        "mzi2x2": "mzi2x2",
        "crossing": "crossing",
        "waveguide": "waveguide",
        "phase_shifter": "phase_shifter",
        "isolator": "isolator",
    }
    top = None  # open output endpoint of the top rail ("inst,port")
    bot = None
    name_maps = []

    def attach(rail_endpoint, external, input_endpoint):
        """Wire a rail (or the external input) into a stage input."""
        if rail_endpoint is None:
            ports[external] = input_endpoint
        else:
            connections[rail_endpoint] = input_endpoint

    for index, (kind, local_settings) in enumerate(zip(stage_kinds, stage_settings)):
        prefix = f"s{index}"
        name_map = {}
        if kind in ("coupler", "mzi2x2", "crossing"):
            local = {"coupler": "cp", "mzi2x2": "mzi", "crossing": "x"}[kind]
            name = f"{prefix}{local}"
            name_map[local] = name
            instances[name] = Instance(kind, dict(local_settings[local]))
            attach(top, "I1", f"{name},I1")
            attach(bot, "I2", f"{name},I2")
            top, bot = f"{name},O1", f"{name},O2"
        elif kind == "arms":
            name_a, name_b = f"{prefix}a", f"{prefix}b"
            name_map["a"], name_map["b"] = name_a, name_b
            instances[name_a] = Instance("waveguide", dict(local_settings["a"]))
            instances[name_b] = Instance("phase_shifter", dict(local_settings["b"]))
            attach(top, "I1", f"{name_a},I1")
            attach(bot, "I2", f"{name_b},I1")
            top, bot = f"{name_a},O1", f"{name_b},O1"
        elif kind == "ring_top":
            name_cp, name_loop = f"{prefix}cp", f"{prefix}loop"
            name_map["cp"], name_map["loop"] = name_cp, name_loop
            instances[name_cp] = Instance("coupler", dict(local_settings["cp"]))
            instances[name_loop] = Instance("waveguide", dict(local_settings["loop"]))
            attach(top, "I1", f"{name_cp},I1")
            connections[f"{name_cp},O2"] = f"{name_loop},I1"
            connections[f"{name_loop},O1"] = f"{name_cp},I2"
            top = f"{name_cp},O1"
        else:  # isolator_top
            name = f"{prefix}iso"
            name_map["iso"] = name
            instances[name] = Instance("isolator", dict(local_settings["iso"]))
            attach(top, "I1", f"{name},I1")
            top = f"{name},O1"
        name_maps.append(name_map)

    if top is not None:
        ports["O1"] = top
    if bot is not None:
        ports["O2"] = bot
    netlist = Netlist(
        instances=instances, connections=connections, ports=ports, models=models
    )
    return netlist, name_maps


@st.composite
def two_rail_cases(draw):
    """A random topology plus a random settings batch over it."""
    floats = lambda lo, hi: st.floats(  # noqa: E731 - tiny local helper
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    )
    num_stages = draw(st.integers(min_value=1, max_value=4))
    stage_kinds = tuple(
        draw(st.sampled_from(STAGE_KINDS)) for _ in range(num_stages)
    )
    num_samples = draw(st.integers(min_value=1, max_value=3))
    per_sample = []
    for _ in range(num_samples):
        per_sample.append(
            [_stage_settings(kind, draw, floats) for kind in stage_kinds]
        )
    netlist, name_maps = _build_two_rail(stage_kinds, per_sample[0])
    batch = []
    for sample in per_sample:
        overrides = {}
        for stage_settings, name_map in zip(sample, name_maps):
            for local, settings_dict in stage_settings.items():
                overrides[name_map[local]] = dict(settings_dict)
        batch.append(overrides)
    return netlist, batch


@given(two_rail_cases())
@settings(max_examples=30, deadline=None)
def test_batched_execution_matches_per_sample_loop_across_backends(case):
    netlist, batch = case
    batched_cascade = SOLVER.evaluate_batch(
        netlist, batch, WAVELENGTHS, backend="cascade"
    )
    batched_dense = SOLVER.evaluate_batch(netlist, batch, WAVELENGTHS, backend="dense")
    batched_auto = SOLVER.evaluate_batch(netlist, batch, WAVELENGTHS)

    for overrides, from_cascade, from_dense, from_auto in zip(
        batch, batched_cascade, batched_dense, batched_auto
    ):
        derived = apply_settings(netlist, overrides)
        dense = SOLVER.evaluate(derived, WAVELENGTHS, backend="dense")
        cascade = SOLVER.evaluate(derived, WAVELENGTHS, backend="cascade")

        # PR 3 per-port cascade reference over the same flattened assembly.
        compiled = SOLVER.compile(derived, WAVELENGTHS)
        matrices = []
        for inst in derived.instances.values():
            ref = derived.models.get(inst.component, inst.component)
            matrices.append(
                REGISTRY.get(ref).evaluate(WAVELENGTHS, **inst.settings).data
            )
        reference = cascade_solve(
            matrices,
            list(compiled.spans),
            compiled.owner,
            compiled.partner,
            compiled.injection_ports,
            WAVELENGTHS.size,
        )

        for result in (from_cascade, from_dense, from_auto, cascade):
            assert float(np.max(np.abs(result.data - dense.data))) <= EQUIVALENCE_ATOL
        assert float(np.max(np.abs(reference - dense.data))) <= EQUIVALENCE_ATOL


@given(
    couplings=st.lists(
        st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
    lengths=st.lists(
        st.floats(min_value=5.0, max_value=80.0, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=25, deadline=None)
def test_feedback_cluster_batches_match_loop(couplings, lengths):
    """Dedicated ring fuzz: every sample re-tunes the feedback cluster."""
    netlist = Netlist(
        instances={
            "cp": Instance("coupler", {"coupling": 0.2}),
            "loop": Instance("waveguide", {"length": 31.4, "loss_db_cm": 1.0}),
        },
        connections={"cp,O2": "loop,I1", "loop,O1": "cp,I2"},
        ports={"I1": "cp,I1", "O1": "cp,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )
    batch = [
        {"cp": {"coupling": coupling}, "loop": {"length": length}}
        for coupling, length in zip(couplings, lengths)
    ]
    batched = SOLVER.evaluate_batch(netlist, batch, WAVELENGTHS, backend="cascade")
    for overrides, result in zip(batch, batched):
        loop = SOLVER.evaluate(
            apply_settings(netlist, overrides), WAVELENGTHS, backend="dense"
        )
        assert float(np.max(np.abs(result.data - loop.data))) <= EQUIVALENCE_ATOL
