"""Tests for the netlist data model and (de)serialisation."""

import json

import pytest

from repro.netlist import Instance, Netlist, OtherSyntaxError, format_endpoint, parse_endpoint


class TestEndpoints:
    def test_parse_endpoint(self):
        assert parse_endpoint("mmi1,O1") == ("mmi1", "O1")

    def test_parse_endpoint_strips_spaces(self):
        assert parse_endpoint(" mmi1 , O1 ") == ("mmi1", "O1")

    @pytest.mark.parametrize("bad", ["mmi1", "mmi1,O1,extra", ",O1", "mmi1,", 42])
    def test_parse_endpoint_invalid(self, bad):
        with pytest.raises(OtherSyntaxError):
            parse_endpoint(bad)

    def test_format_endpoint_roundtrip(self):
        assert parse_endpoint(format_endpoint("a", "I1")) == ("a", "I1")


class TestInstance:
    def test_from_string(self):
        inst = Instance.from_obj("waveguide")
        assert inst.component == "waveguide"
        assert inst.settings == {}

    def test_from_object_with_settings(self):
        inst = Instance.from_obj({"component": "waveguide", "settings": {"length": 20}})
        assert inst.settings == {"length": 20}

    def test_from_object_missing_component(self):
        with pytest.raises(OtherSyntaxError, match="component"):
            Instance.from_obj({"settings": {}})

    def test_from_object_extra_keys(self):
        with pytest.raises(OtherSyntaxError, match="unsupported keys"):
            Instance.from_obj({"component": "waveguide", "ports": {}})

    def test_from_object_bad_settings(self):
        with pytest.raises(OtherSyntaxError):
            Instance.from_obj({"component": "waveguide", "settings": [1, 2]})

    def test_from_invalid_type(self):
        with pytest.raises(OtherSyntaxError):
            Instance.from_obj(13)

    def test_to_obj_bare_string_when_no_settings(self):
        assert Instance("waveguide").to_obj() == "waveguide"

    def test_to_obj_with_settings(self):
        obj = Instance("waveguide", {"length": 5}).to_obj()
        assert obj == {"component": "waveguide", "settings": {"length": 5}}


@pytest.fixture
def sample_netlist():
    return Netlist(
        instances={
            "wgA": Instance("waveguide", {"length": 20.0}),
            "wgB": Instance("waveguide"),
        },
        connections={"wgA,O1": "wgB,I1"},
        ports={"I1": "wgA,I1", "O1": "wgB,O1"},
        models={"waveguide": "waveguide"},
    )


class TestNetlist:
    def test_roundtrip_via_dict(self, sample_netlist):
        rebuilt = Netlist.from_dict(sample_netlist.to_dict())
        assert rebuilt.to_dict() == sample_netlist.to_dict()

    def test_roundtrip_via_json(self, sample_netlist):
        rebuilt = Netlist.from_dict(json.loads(sample_netlist.to_json()))
        assert rebuilt.connections == sample_netlist.connections

    def test_copy_is_deep(self, sample_netlist):
        duplicate = sample_netlist.copy()
        duplicate.instances["wgA"].settings["length"] = 99.0
        duplicate.connections["extra,O1"] = "wgB,I2"
        assert sample_netlist.instances["wgA"].settings["length"] == 20.0
        assert "extra,O1" not in sample_netlist.connections

    def test_model_for(self, sample_netlist):
        assert sample_netlist.model_for("wgA") == "waveguide"
        assert sample_netlist.model_for("nonexistent") is None

    def test_external_port_classification(self, sample_netlist):
        assert sample_netlist.external_inputs() == ("I1",)
        assert sample_netlist.external_outputs() == ("O1",)

    def test_num_instances(self, sample_netlist):
        assert sample_netlist.num_instances() == 2

    def test_from_dict_missing_netlist_section(self):
        with pytest.raises(OtherSyntaxError, match="netlist"):
            Netlist.from_dict({"models": {}})

    def test_from_dict_bad_section_types(self):
        with pytest.raises(OtherSyntaxError):
            Netlist.from_dict({"netlist": {"instances": []}, "models": {}})
        with pytest.raises(OtherSyntaxError):
            Netlist.from_dict({"netlist": [], "models": {}})
        with pytest.raises(OtherSyntaxError):
            Netlist.from_dict({"netlist": {}, "models": [1]})

    def test_from_dict_bad_connection_value(self):
        with pytest.raises(OtherSyntaxError):
            Netlist.from_dict(
                {"netlist": {"instances": {}, "connections": {"a,O1": 7}, "ports": {}}}
            )

    def test_from_dict_bad_port_value(self):
        with pytest.raises(OtherSyntaxError):
            Netlist.from_dict(
                {"netlist": {"instances": {}, "connections": {}, "ports": {"I1": None}}}
            )

    def test_from_dict_missing_models_defaults_empty(self):
        netlist = Netlist.from_dict({"netlist": {"instances": {"a": "waveguide"}}})
        assert netlist.models == {}
