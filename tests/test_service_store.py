"""Tests of the service's SQLite results store.

Covers the storage contract end to end: byte-identical report round trips
(including hypothesis-generated reports), content-fingerprint run dedup,
trajectory derivation, job metadata persistence, the v1 -> v2 schema
migration, refusal of newer-than-code databases, and concurrent writers
(threads *and* forked processes) against one database file.
"""

from __future__ import annotations

import json
import multiprocessing
import sqlite3
import threading
from contextlib import closing
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evalkit.outcome import AttemptRecord, EvalReport, SampleResult
from repro.harness.runner import FEEDBACK_COLUMNS, PASS_AT
from repro.netlist.errors import ErrorCategory
from repro.service import JobSpec, ResultsStore, SCHEMA_VERSION
from repro.service.store import (
    PACK_AGGREGATE,
    TRAJECTORY_METRICS,
    _SCHEMA_V1,
    canonical_report_json,
    run_fingerprint,
    trajectory_rows,
)

SPEC = JobSpec(
    models=("GPT-4o",),
    restrictions=(False,),
    samples_per_problem=2,
    max_feedback_iterations=1,
    num_wavelengths=5,
    problems=("mzi_ps",),
)


def make_report(
    *,
    model: str = "GPT-4o",
    with_restrictions: bool = False,
    problems: dict | None = None,
    pack: str = "core",
) -> EvalReport:
    """Build a report from ``{problem: [list of pass-iteration or None]}``.

    Each sample either passes (syntax and functional) at the given feedback
    iteration, or never passes (``None`` -> all attempts fail).
    """
    problems = problems if problems is not None else {"mzi_ps": [0, None]}
    max_feedback = 3
    report = EvalReport(
        model=model,
        with_restrictions=with_restrictions,
        samples_per_problem=max(len(v) for v in problems.values()),
        max_feedback_iterations=max_feedback,
        pack=pack,
    )
    for problem, passes in problems.items():
        for index, pass_iteration in enumerate(passes):
            sample = SampleResult(problem=problem, sample_index=index)
            last = max_feedback if pass_iteration is None else pass_iteration
            for iteration in range(last + 1):
                ok = pass_iteration is not None and iteration == pass_iteration
                sample.attempts.append(
                    AttemptRecord(
                        iteration=iteration,
                        syntax_ok=ok,
                        functional_ok=ok,
                        error_category=None if ok else ErrorCategory.OTHER_SYNTAX,
                    )
                )
            report.add(sample)
    return report


# ======================================================================
# Schema and round trips
# ======================================================================
def test_fresh_store_is_current_schema(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    assert store.schema_version == SCHEMA_VERSION == 2


def test_reopen_existing_store(tmp_path):
    path = tmp_path / "results.db"
    ResultsStore(path).save_run(SPEC, {("GPT-4o", False): make_report()})
    reopened = ResultsStore(path)
    assert reopened.schema_version == SCHEMA_VERSION
    assert reopened.counts()["runs"] == 1


def test_report_round_trip_is_byte_identical(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    report = make_report(problems={"mzi_ps": [0, 1, None], "y_branch": [2]})
    run_id, created = store.save_run(SPEC, {("GPT-4o", False): report})
    assert created is True
    stored_json = store.load_report_json(run_id, "GPT-4o", False)
    assert stored_json == canonical_report_json(report)
    rehydrated = store.load_run(run_id).reports[("GPT-4o", False)]
    assert canonical_report_json(rehydrated) == stored_json
    assert rehydrated == report


def test_load_run_rehydrates_spec_and_stats(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    stats = {"plan_cache": {"hits": 3, "misses": 1, "hit_rate": 0.75}}
    run_id, _ = store.save_run(
        SPEC, {("GPT-4o", False): make_report()}, engine_stats=stats, created_at=123.0
    )
    run = store.load_run(run_id)
    assert run.spec == SPEC
    assert run.spec_fingerprint == SPEC.fingerprint()
    assert run.engine_stats == stats
    assert run.created_at == 123.0


def test_engine_stats_none_round_trips(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    run_id, _ = store.save_run(SPEC, {("GPT-4o", False): make_report()})
    assert store.load_run(run_id).engine_stats is None


def test_multiple_reports_per_run(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    reports = {
        ("GPT-4o", False): make_report(model="GPT-4o"),
        ("GPT-4o", True): make_report(model="GPT-4o", with_restrictions=True),
        ("GPT-4", False): make_report(model="GPT-4", problems={"mzi_ps": [1, None]}),
    }
    run_id, _ = store.save_run(replace(SPEC, models=("GPT-4o", "GPT-4")), reports)
    run = store.load_run(run_id)
    assert set(run.reports) == set(reports)
    for key, report in reports.items():
        assert run.reports[key] == report


# ----------------------------------------------------------------------
# Hypothesis: arbitrary reports survive the store byte-identically
# ----------------------------------------------------------------------
CATEGORIES = st.sampled_from(list(ErrorCategory))


@st.composite
def reports(draw):
    problems = draw(
        st.dictionaries(
            st.sampled_from(["mzi_ps", "y_branch", "ring_all_pass", "wdm_mux_2ch"]),
            st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
            min_size=1,
            max_size=3,
        )
    )
    report = EvalReport(
        model=draw(st.sampled_from(["GPT-4o", "Claude 3.5 Sonnet"])),
        with_restrictions=draw(st.booleans()),
        samples_per_problem=max(len(v) for v in problems.values()),
        max_feedback_iterations=3,
        pack=draw(st.sampled_from(["core", "wdm-links"])),
    )
    for problem, sample_lengths in problems.items():
        for index, attempts in enumerate(sample_lengths):
            sample = SampleResult(problem=problem, sample_index=index)
            for iteration in range(attempts + 1):
                syntax_ok = draw(st.booleans())
                functional_ok = syntax_ok and draw(st.booleans())
                sample.attempts.append(
                    AttemptRecord(
                        iteration=iteration,
                        syntax_ok=syntax_ok,
                        functional_ok=functional_ok,
                        error_category=None if functional_ok else draw(CATEGORIES),
                    )
                )
            report.add(sample)
    return report


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(report=reports())
def test_hypothesis_report_round_trip(tmp_path, report):
    store = ResultsStore(tmp_path / f"h-{abs(hash(canonical_report_json(report)))}.db")
    run_id, _ = store.save_run(SPEC, {(report.model, report.with_restrictions): report})
    stored_json = store.load_report_json(run_id, report.model, report.with_restrictions)
    assert stored_json == canonical_report_json(report)
    rehydrated = store.load_run(run_id).reports[(report.model, report.with_restrictions)]
    assert canonical_report_json(rehydrated) == stored_json


# ======================================================================
# Content-fingerprint dedup
# ======================================================================
def test_identical_run_dedupes(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    reports = {("GPT-4o", False): make_report()}
    first_id, created_first = store.save_run(SPEC, reports)
    second_id, created_second = store.save_run(SPEC, reports)
    assert first_id == second_id
    assert created_first is True and created_second is False
    assert store.counts()["runs"] == 1
    assert store.counts()["reports"] == 1


def test_run_fingerprint_is_content_sensitive(tmp_path):
    base = {("GPT-4o", False): make_report()}
    changed = {("GPT-4o", False): make_report(problems={"mzi_ps": [1, None]})}
    assert run_fingerprint(SPEC, base) != run_fingerprint(SPEC, changed)
    assert run_fingerprint(SPEC, base) != run_fingerprint(
        replace(SPEC, base_seed=1), base
    )
    store = ResultsStore(tmp_path / "results.db")
    id_a, _ = store.save_run(SPEC, base)
    id_b, _ = store.save_run(SPEC, changed)
    assert id_a != id_b
    assert store.counts()["runs"] == 2


def test_empty_reports_rejected(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    with pytest.raises(ValueError):
        store.save_run(SPEC, {})


# ======================================================================
# Trajectories
# ======================================================================
def test_trajectory_row_count_formula(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    report = make_report(problems={"mzi_ps": [0, None], "y_branch": [1]})
    run_id, _ = store.save_run(SPEC, {("GPT-4o", False): report})
    rows = store.trajectories(run_id)
    problems = 2
    expected = len(TRAJECTORY_METRICS) * len(PASS_AT) * len(FEEDBACK_COLUMNS) * (1 + problems)
    assert len(rows) == expected == 2 * 2 * 3 * 3


def test_trajectories_match_pass_at_k(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    report = make_report(problems={"mzi_ps": [0, 1, None], "y_branch": [None, 2]})
    run_id, _ = store.save_run(SPEC, {("GPT-4o", False): report})
    values = {
        (problem, metric, k, max_feedback): value
        for _, _, _, problem, metric, k, max_feedback, value in store.trajectories(run_id)
    }
    for metric in TRAJECTORY_METRICS:
        for k in PASS_AT:
            for max_feedback in FEEDBACK_COLUMNS:
                assert values[(PACK_AGGREGATE, metric, k, max_feedback)] == pytest.approx(
                    report.pass_at_k(k, metric=metric, max_feedback=max_feedback)
                )
                for problem in report.results:
                    assert values[(problem, metric, k, max_feedback)] == pytest.approx(
                        report.problem_pass_at_k(
                            problem, k, metric=metric, max_feedback=max_feedback
                        )
                    )


def test_trajectory_rows_are_deterministic():
    report = make_report(problems={"mzi_ps": [0, None], "y_branch": [1]})
    first = list(trajectory_rows("run-x", "GPT-4o", False, report))
    second = list(trajectory_rows("run-x", "GPT-4o", False, report))
    assert first == second


# ======================================================================
# Run lookup
# ======================================================================
def test_find_runs_newest_first_and_filtered(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    other_spec = replace(SPEC, base_seed=9)
    id_a, _ = store.save_run(SPEC, {("GPT-4o", False): make_report()}, created_at=10.0)
    id_b, _ = store.save_run(
        SPEC, {("GPT-4o", False): make_report(problems={"mzi_ps": [1]})}, created_at=20.0
    )
    id_c, _ = store.save_run(
        other_spec, {("GPT-4o", False): make_report()}, created_at=30.0
    )
    assert [run["run_id"] for run in store.find_runs()] == [id_c, id_b, id_a]
    assert [run["run_id"] for run in store.find_runs(SPEC.fingerprint())] == [id_b, id_a]
    assert store.latest_run(SPEC.fingerprint()) == id_b
    assert store.latest_run(other_spec.fingerprint()) == id_c
    assert store.latest_run("no-such-fingerprint") is None


def test_unknown_run_and_job_raise_keyerror(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    with pytest.raises(KeyError):
        store.load_run("run-missing")
    with pytest.raises(KeyError):
        store.load_report_json("run-missing", "GPT-4o", False)
    with pytest.raises(KeyError):
        store.load_job("job-missing")


# ======================================================================
# Job metadata
# ======================================================================
def job_row(job_id: str, state: str, run_id: str | None = None) -> dict:
    return {
        "job_id": job_id,
        "spec": SPEC.to_dict(),
        "spec_fingerprint": SPEC.fingerprint(),
        "priority": 0,
        "state": state,
        "submitted_at": 1.0,
        "started_at": 2.0 if state != "queued" else None,
        "finished_at": 3.0 if state in ("done", "failed", "cancelled") else None,
        "error": "RuntimeError: boom" if state == "failed" else None,
        "run_id": run_id,
    }


def test_job_record_persist_and_update(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    store.record_job(job_row("job-1", "queued"))
    assert store.load_job("job-1")["state"] == "queued"
    store.record_job(job_row("job-1", "done", run_id="run-xyz"))
    row = store.load_job("job-1")
    assert row["state"] == "done"
    assert row["run_id"] == "run-xyz"
    assert row["spec"] == SPEC.to_dict()
    assert store.counts()["jobs"] == 1, "updates must not duplicate rows"


def test_job_state_persistence_is_monotonic(tmp_path):
    """A stale 'queued' snapshot must never roll back a terminal row.

    The queue's update hook runs from the submitting thread *and* the
    worker thread; on a fast job the worker's 'done' write can land before
    the submitter's 'queued' write.  The store drops such out-of-order
    snapshots.
    """
    store = ResultsStore(tmp_path / "results.db")
    store.record_job(job_row("job-1", "done", run_id="run-xyz"))
    store.record_job(job_row("job-1", "queued"))  # stale, late snapshot
    row = store.load_job("job-1")
    assert row["state"] == "done"
    assert row["run_id"] == "run-xyz"
    store.record_job(job_row("job-1", "running"))  # also stale
    assert store.load_job("job-1")["state"] == "done"
    # Equal-rank rewrites still apply (e.g. a terminal row gaining details).
    store.record_job(job_row("job-1", "failed"))
    assert store.load_job("job-1")["state"] == "failed"


def test_jobs_listing_ordered_by_submission(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    for index, job_id in enumerate(["job-b", "job-a", "job-c"]):
        row = job_row(job_id, "done")
        row["submitted_at"] = float(index)
        store.record_job(row)
    assert [row["job_id"] for row in store.jobs()] == ["job-b", "job-a", "job-c"]


def test_failed_job_keeps_error_text(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    store.record_job(job_row("job-f", "failed"))
    assert store.load_job("job-f")["error"] == "RuntimeError: boom"


# ======================================================================
# Schema migration
# ======================================================================
def build_v1_database(path) -> str:
    """Create a legacy v1 database with one stored run, return its run id."""
    report = make_report(problems={"mzi_ps": [0, None], "y_branch": [1]})
    run_id = run_fingerprint(SPEC, {("GPT-4o", False): report})
    with closing(sqlite3.connect(path)) as conn, conn:
        for statement in _SCHEMA_V1:
            conn.execute(statement)
        conn.execute("INSERT INTO meta VALUES ('schema_version', '1')")
        conn.execute(
            "INSERT INTO runs VALUES (?, ?, ?, ?, ?)",
            (run_id, SPEC.fingerprint(), SPEC.canonical_json(), 42.0, None),
        )
        conn.execute(
            "INSERT INTO reports VALUES (?, ?, ?, ?, ?)",
            (run_id, "GPT-4o", 0, "core", canonical_report_json(report)),
        )
        conn.execute(
            "INSERT INTO jobs VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                "job-legacy", SPEC.fingerprint(), SPEC.canonical_json(),
                0, "done", 1.0, 2.0, 3.0, None, run_id,
            ),
        )
    return run_id


def test_open_migrates_v1_to_v2_and_backfills(tmp_path):
    path = tmp_path / "legacy.db"
    run_id = build_v1_database(path)
    store = ResultsStore(path)  # opening applies the migration
    assert store.schema_version == 2
    rows = store.trajectories(run_id)
    assert len(rows) == 2 * 2 * 3 * (1 + 2), "trajectories backfilled from reports"
    # The migrated data is fully readable through the current API.
    run = store.load_run(run_id)
    assert run.spec == SPEC
    report = run.reports[("GPT-4o", False)]
    aggregate = {
        (problem, metric, k, fb): value
        for _, _, _, problem, metric, k, fb, value in rows
    }
    assert aggregate[(PACK_AGGREGATE, "syntax", 1, 0)] == pytest.approx(
        report.pass_at_k(1, metric="syntax", max_feedback=0)
    )
    assert store.load_job("job-legacy")["state"] == "done"


def test_migration_is_idempotent_across_reopens(tmp_path):
    path = tmp_path / "legacy.db"
    run_id = build_v1_database(path)
    first = ResultsStore(path)
    rows_after_migration = first.trajectories(run_id)
    second = ResultsStore(path)  # already v2: opening must not re-migrate
    assert second.schema_version == 2
    assert second.trajectories(run_id) == rows_after_migration


def test_newer_schema_version_refused(tmp_path):
    path = tmp_path / "future.db"
    with closing(sqlite3.connect(path)) as conn, conn:
        for statement in _SCHEMA_V1:
            conn.execute(statement)
        conn.execute(
            "INSERT INTO meta VALUES ('schema_version', ?)", (str(SCHEMA_VERSION + 1),)
        )
    with pytest.raises(RuntimeError, match="newer"):
        ResultsStore(path)


def test_meta_without_version_refused(tmp_path):
    path = tmp_path / "broken.db"
    with closing(sqlite3.connect(path)) as conn, conn:
        conn.execute(_SCHEMA_V1[0])  # meta table, but no schema_version row
    with pytest.raises(RuntimeError, match="schema_version"):
        ResultsStore(path)


# ======================================================================
# Concurrent writers
# ======================================================================
def test_concurrent_thread_writers(tmp_path):
    path = tmp_path / "results.db"
    store = ResultsStore(path)
    errors = []

    def writer(worker: int):
        try:
            for index in range(5):
                spec = replace(SPEC, base_seed=worker * 100 + index)
                report = make_report(problems={"mzi_ps": [worker % 3, None]})
                store.save_run(spec, {("GPT-4o", False): report})
                store.record_job(job_row(f"job-{worker}-{index}", "done"))
        except Exception as error:  # noqa: BLE001 - surfaced via the list
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(n,)) for n in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    counts = store.counts()
    assert counts["runs"] == 30
    assert counts["jobs"] == 30
    with closing(sqlite3.connect(path)) as conn:
        assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"


def _process_writer(path: str, worker: int) -> None:
    """Child-process body of the cross-process writer test."""
    store = ResultsStore(path)
    for index in range(3):
        spec = replace(SPEC, base_seed=worker * 1000 + index)
        report = make_report(problems={"mzi_ps": [index % 2, None]})
        store.save_run(spec, {("GPT-4o", False): report})


def test_concurrent_process_writers(tmp_path):
    path = tmp_path / "results.db"
    ResultsStore(path)  # create the schema up front
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(target=_process_writer, args=(str(path), worker))
        for worker in range(4)
    ]
    for process in workers:
        process.start()
    for process in workers:
        process.join(60.0)
        assert process.exitcode == 0
    store = ResultsStore(path)
    assert store.counts()["runs"] == 12
    with closing(sqlite3.connect(path)) as conn:
        assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"


def test_counts_tracks_every_table(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    assert store.counts() == {"runs": 0, "reports": 0, "trajectories": 0, "jobs": 0}
    store.save_run(SPEC, {("GPT-4o", False): make_report()})
    store.record_job(job_row("job-1", "done"))
    counts = store.counts()
    assert counts["runs"] == 1
    assert counts["reports"] == 1
    assert counts["trajectories"] == 2 * 2 * 3 * 2
    assert counts["jobs"] == 1


def test_injected_write_faults_are_retried_through(tmp_path):
    """A transient `store.write` fault never loses the run; retries counted."""
    from repro.faults import FaultRule, clear_plan, inject

    clear_plan()
    store = ResultsStore(tmp_path / "results.db")
    with inject(FaultRule("store.write", max_triggers=1)):
        run_id, created = store.save_run(SPEC, {("GPT-4o", False): make_report()})
    clear_plan()
    assert created
    assert store.write_retries >= 1
    assert store.load_run(run_id).run_id == run_id


def test_exhausted_write_faults_propagate(tmp_path):
    from repro.faults import FaultRule, clear_plan, inject

    clear_plan()
    store = ResultsStore(tmp_path / "results.db")
    with inject(FaultRule("store.write")):
        with pytest.raises(OSError):
            store.save_run(SPEC, {("GPT-4o", False): make_report()})
    clear_plan()
    assert store.counts()["runs"] == 0  # nothing half-written


def test_spec_fingerprint_ignores_robustness_knobs():
    """Retry/timeout knobs ride the wire but never change the fingerprint,
    so stored-run dedup survives resubmission with different budgets."""
    tuned = replace(
        SPEC, retry_attempts=5, retry_backoff=0.9, unit_timeout=30.0
    )
    assert tuned.fingerprint() == SPEC.fingerprint()
    assert replace(SPEC, base_seed=1).fingerprint() != SPEC.fingerprint()
    # The full canonical JSON still carries them (they are real spec fields).
    payload = json.loads(tuned.canonical_json())
    assert payload["retry_attempts"] == 5
    assert payload["unit_timeout"] == 30.0
    # Round trip through the wire format preserves the knobs.
    assert JobSpec.from_dict(tuned.to_dict()) == tuned


def test_canonical_json_is_sorted_and_compact():
    report = make_report()
    document = canonical_report_json(report)
    payload = json.loads(document)
    assert document == json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert ": " not in document
