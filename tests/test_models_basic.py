"""Tests for the waveguide, phase shifter, coupler and MMI device models."""

import numpy as np
import pytest

from repro.sim.models import (
    coupler,
    mmi1x2,
    mmi2x1,
    mmi2x2,
    phase_shifter,
    waveguide,
)
from repro.sim.models.waveguide import propagation_amplitude, propagation_phase
from repro.sim.sparams import is_reciprocal, is_unitary


class TestWaveguide:
    def test_ports(self, wavelengths):
        sm = waveguide(wavelengths)
        assert sm.ports == ("I1", "O1")

    def test_lossless_by_default(self, wavelengths):
        sm = waveguide(wavelengths, length=123.0)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)

    def test_loss_applied(self, wavelengths):
        sm = waveguide(wavelengths, length=1e4, loss_db_cm=3.0)
        assert np.allclose(sm.transmission("O1", "I1"), 10 ** (-0.3))

    def test_phase_scales_with_length(self, single_wavelength):
        short = waveguide(single_wavelength, length=10.0)
        long = waveguide(single_wavelength, length=20.0)
        phase_short = -np.angle(short.s("O1", "I1"))[0]
        phase_long = -np.angle(long.s("O1", "I1"))[0]
        expected = propagation_phase(single_wavelength, 10.0)[0]
        assert (phase_long - phase_short) % (2 * np.pi) == pytest.approx(
            expected % (2 * np.pi), abs=1e-9
        )

    def test_zero_length_is_identity(self, wavelengths):
        sm = waveguide(wavelengths, length=0.0)
        assert np.allclose(sm.s("O1", "I1"), 1.0)

    def test_no_reflection(self, wavelengths):
        sm = waveguide(wavelengths)
        assert np.allclose(sm.s("I1", "I1"), 0.0)
        assert np.allclose(sm.s("O1", "O1"), 0.0)

    def test_reciprocal(self, wavelengths):
        assert is_reciprocal(waveguide(wavelengths, length=42.0))

    def test_dispersion_changes_phase_across_band(self, wavelengths):
        sm = waveguide(wavelengths, length=100.0)
        phases = np.unwrap(np.angle(sm.s("O1", "I1")))
        assert not np.allclose(phases, phases[0])


class TestPropagationHelpers:
    def test_amplitude_zero_loss(self):
        assert propagation_amplitude(100.0, 0.0) == 1.0

    def test_amplitude_decreases_with_length(self):
        assert propagation_amplitude(200.0, 2.0) < propagation_amplitude(100.0, 2.0)

    def test_phase_at_reference_wavelength(self):
        phase = propagation_phase(np.array([1.55]), 1.55, neff=2.0, ng=3.0, wl0=1.55)
        assert phase[0] == pytest.approx(2 * np.pi * 2.0)


class TestPhaseShifter:
    def test_phase_offset_applied(self, single_wavelength):
        base = phase_shifter(single_wavelength, length=10.0, phase=0.0)
        shifted = phase_shifter(single_wavelength, length=10.0, phase=np.pi / 3)
        delta = np.angle(base.s("O1", "I1") / shifted.s("O1", "I1"))[0]
        assert delta == pytest.approx(np.pi / 3)

    def test_magnitude_unaffected_by_phase(self, wavelengths):
        sm = phase_shifter(wavelengths, phase=1.234)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)

    def test_zero_phase_matches_waveguide(self, wavelengths):
        ps = phase_shifter(wavelengths, length=17.0, phase=0.0)
        wg = waveguide(wavelengths, length=17.0)
        assert np.allclose(ps.data, wg.data)


class TestCoupler:
    def test_default_is_3db(self, wavelengths):
        sm = coupler(wavelengths)
        assert np.allclose(sm.transmission("O1", "I1"), 0.5)
        assert np.allclose(sm.transmission("O2", "I1"), 0.5)

    def test_cross_has_90_degree_phase(self, single_wavelength):
        sm = coupler(single_wavelength, coupling=0.3)
        bar = sm.s("O1", "I1")[0]
        cross = sm.s("O2", "I1")[0]
        assert np.angle(cross / bar) == pytest.approx(np.pi / 2)

    def test_energy_conservation(self, wavelengths):
        sm = coupler(wavelengths, coupling=0.27)
        total = sm.transmission("O1", "I1") + sm.transmission("O2", "I1")
        assert np.allclose(total, 1.0)

    def test_unitary(self, wavelengths):
        assert is_unitary(coupler(wavelengths, coupling=0.7))

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_invalid_coupling_rejected(self, wavelengths, bad):
        with pytest.raises(ValueError):
            coupler(wavelengths, coupling=bad)

    def test_extreme_couplings(self, single_wavelength):
        full_cross = coupler(single_wavelength, coupling=1.0)
        assert full_cross.transmission("O2", "I1")[0] == pytest.approx(1.0)
        full_bar = coupler(single_wavelength, coupling=0.0)
        assert full_bar.transmission("O1", "I1")[0] == pytest.approx(1.0)


class TestMMIs:
    def test_mmi1x2_even_split(self, wavelengths):
        sm = mmi1x2(wavelengths)
        assert np.allclose(sm.transmission("O1", "I1"), 0.5)
        assert np.allclose(sm.transmission("O2", "I1"), 0.5)

    def test_mmi1x2_loss(self, wavelengths):
        sm = mmi1x2(wavelengths, loss_db=1.0)
        assert np.allclose(sm.transmission("O1", "I1"), 0.5 * 10 ** (-0.1))

    def test_mmi2x1_ports(self, wavelengths):
        sm = mmi2x1(wavelengths)
        assert sm.ports == ("I1", "I2", "O1")
        assert np.allclose(sm.transmission("O1", "I1"), 0.5)

    def test_mmi2x1_coherent_combination(self, single_wavelength):
        # Two in-phase inputs of amplitude 1/sqrt(2) combine to amplitude 1.
        sm = mmi2x1(single_wavelength)
        combined = (sm.s("O1", "I1") + sm.s("O1", "I2")) / np.sqrt(2)
        assert np.abs(combined[0]) == pytest.approx(1.0)

    def test_mmi2x2_unitary(self, wavelengths):
        assert is_unitary(mmi2x2(wavelengths))

    def test_mmi2x2_cross_phase(self, single_wavelength):
        sm = mmi2x2(single_wavelength)
        assert np.angle(sm.s("O2", "I1")[0] / sm.s("O1", "I1")[0]) == pytest.approx(np.pi / 2)

    def test_mmis_reciprocal(self, wavelengths):
        for model in (mmi1x2, mmi2x1, mmi2x2):
            assert is_reciprocal(model(wavelengths))
