"""Tests for designer profiles and the simulated designer."""

import numpy as np
import pytest

from repro.bench import get_problem
from repro.llm import (
    DEFAULT_PROFILES,
    DesignerProfile,
    PerfectDesigner,
    SimulatedDesigner,
    get_profile,
    profile_names,
    split_response,
    system,
    user,
)
from repro.netlist import ErrorCategory, parse_netlist_text
from repro.prompts import PromptConfig, build_feedback, build_system_prompt, build_user_prompt
from repro.netlist.errors import WrongPortError


def conversation_for(problem, *, restrictions=False):
    config = PromptConfig(include_restrictions=restrictions)
    return [
        system(build_system_prompt(config=config)),
        user(build_user_prompt(problem.description)),
    ]


class TestProfiles:
    def test_five_default_profiles(self):
        assert len(DEFAULT_PROFILES) == 5
        assert "GPT-4" in profile_names()
        assert "Claude 3.5 Sonnet" in profile_names()

    def test_get_profile_case_insensitive(self):
        assert get_profile("gpt-4o").name == "GPT-4o"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("LLaMA")

    def test_restrictions_reduce_error_probability(self):
        profile = get_profile("Gemini 1.5 pro")
        without = profile.category_error_prob(
            ErrorCategory.WRONG_PORT, difficulty=1.0, restrictions_active=False
        )
        with_ = profile.category_error_prob(
            ErrorCategory.WRONG_PORT, difficulty=1.0, restrictions_active=True
        )
        assert with_ < without

    def test_difficulty_increases_error_probability(self):
        profile = DEFAULT_PROFILES[0]
        easy = profile.category_error_prob(
            ErrorCategory.WRONG_PORT, difficulty=0.8, restrictions_active=False
        )
        hard = profile.category_error_prob(
            ErrorCategory.WRONG_PORT, difficulty=1.6, restrictions_active=False
        )
        assert hard > easy

    def test_probability_clamped(self):
        profile = DesignerProfile(
            name="clumsy",
            base_error_rate=5.0,
            restriction_factor=1.0,
            feedback_fix_prob=0.5,
            functional_error_prob=2.0,
            functional_fix_prob=0.5,
        )
        prob = profile.category_error_prob(
            ErrorCategory.WRONG_PORT, difficulty=2.0, restrictions_active=False
        )
        assert prob <= 0.95
        assert profile.functional_probability(restrictions_active=False) <= 0.98


class TestSimulatedDesigner:
    def test_response_has_required_sections(self, mzi_ps_problem):
        designer = SimulatedDesigner("GPT-4")
        text = designer.complete(conversation_for(mzi_ps_problem), seed=0)
        response = split_response(text)
        assert response.analysis
        assert response.result

    def test_deterministic_for_same_seed(self, mzi_ps_problem):
        designer = SimulatedDesigner("GPT-4")
        messages = conversation_for(mzi_ps_problem)
        assert designer.complete(messages, seed=3) == designer.complete(messages, seed=3)

    def test_different_seeds_vary(self, mzi_ps_problem):
        designer = SimulatedDesigner("GPT-o1-mini")
        messages = conversation_for(mzi_ps_problem)
        outputs = {designer.complete(messages, seed=s) for s in range(8)}
        assert len(outputs) > 1

    def test_unknown_problem_rejected(self):
        designer = SimulatedDesigner("GPT-4")
        with pytest.raises(ValueError, match="does not match any benchmark problem"):
            designer.complete([system("s"), user("design me a laser")], seed=0)

    def test_no_user_message_rejected(self):
        designer = SimulatedDesigner("GPT-4")
        with pytest.raises(ValueError):
            designer.complete([system("s")], seed=0)

    def test_restrictions_raise_clean_rate(self):
        problem = get_problem("optical_hybrid")
        designer = SimulatedDesigner("Gemini 1.5 pro")

        def clean_rate(restrictions):
            messages = conversation_for(problem, restrictions=restrictions)
            clean = 0
            for seed in range(30):
                response = split_response(designer.complete(messages, seed=seed))
                try:
                    parse_netlist_text(response.result, strict=True)
                    clean += 1
                except Exception:
                    pass
            return clean

        assert clean_rate(True) > clean_rate(False)

    def test_feedback_changes_response(self, mzi_ps_problem):
        designer = SimulatedDesigner("Claude 3.5 Sonnet", base_seed=1)
        messages = conversation_for(mzi_ps_problem)
        first = designer.complete(messages, seed=5)
        feedback = build_feedback(mzi_ps_problem.name, WrongPortError("bad port"))
        from repro.llm import assistant

        extended = messages + [assistant(first), user(feedback)]
        second = designer.complete(extended, seed=5)
        analysis = split_response(second).analysis
        assert "Revised" in analysis

    def test_base_seed_changes_behaviour(self, mzi_ps_problem):
        messages = conversation_for(mzi_ps_problem)
        outputs = {
            SimulatedDesigner("GPT-4", base_seed=b).complete(messages, seed=0)
            for b in range(6)
        }
        assert len(outputs) > 1

    def test_name_matches_profile(self):
        assert SimulatedDesigner("GPT-4o").name == "GPT-4o"


class TestPerfectDesigner:
    def test_returns_golden_netlist(self, mzi_ps_problem):
        designer = PerfectDesigner()
        text = designer.complete(conversation_for(mzi_ps_problem), seed=0)
        netlist = parse_netlist_text(split_response(text).result, strict=True)
        assert netlist.to_dict() == mzi_ps_problem.golden_netlist().to_dict()
