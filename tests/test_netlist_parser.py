"""Tests for tolerant netlist text parsing (extra-content detection)."""

import pytest

from repro.netlist import (
    ExtraContentError,
    OtherSyntaxError,
    extract_json_object,
    parse_netlist_text,
)
from repro.bench.problems.fundamental import mzi_ps_golden


@pytest.fixture
def golden_json():
    return mzi_ps_golden().to_json()


class TestExtractJsonObject:
    def test_plain_object(self):
        assert extract_json_object('{"a": 1}') == '{"a": 1}'

    def test_object_with_prefix_and_suffix(self):
        assert extract_json_object('text before {"a": {"b": 2}} after') == '{"a": {"b": 2}}'

    def test_braces_inside_strings_ignored(self):
        text = '{"a": "value with } brace"}'
        assert extract_json_object(text) == text

    def test_escaped_quotes_inside_strings(self):
        text = '{"a": "quote \\" and } brace"}'
        assert extract_json_object(text) == text

    def test_unbalanced_returns_none(self):
        assert extract_json_object('{"a": 1') is None

    def test_no_object_returns_none(self):
        assert extract_json_object("no json here") is None


class TestParseNetlistText:
    def test_pure_json_passes_strict(self, golden_json):
        netlist = parse_netlist_text(golden_json, strict=True)
        assert "mmi1" in netlist.instances

    def test_markdown_fence_raises_extra_content(self, golden_json):
        wrapped = f"```json\n{golden_json}\n```"
        with pytest.raises(ExtraContentError):
            parse_netlist_text(wrapped, strict=True)

    def test_markdown_fence_recoverable_when_not_strict(self, golden_json):
        wrapped = f"Sure! Here you go:\n```json\n{golden_json}\n```\nHope this helps."
        netlist = parse_netlist_text(wrapped, strict=False)
        assert "mmi2" in netlist.instances

    def test_leading_prose_raises_extra_content(self, golden_json):
        with pytest.raises(ExtraContentError):
            parse_netlist_text("Here is the design:\n" + golden_json, strict=True)

    def test_empty_response(self):
        with pytest.raises(OtherSyntaxError, match="empty response"):
            parse_netlist_text("   ")

    def test_non_string_response(self):
        with pytest.raises(OtherSyntaxError):
            parse_netlist_text(None)  # type: ignore[arg-type]

    def test_no_json_at_all(self):
        with pytest.raises(OtherSyntaxError, match="no JSON object"):
            parse_netlist_text("I am unable to produce a netlist.")

    def test_truncated_json(self, golden_json):
        truncated = golden_json[: golden_json.rfind("}")]
        with pytest.raises(OtherSyntaxError):
            parse_netlist_text(truncated, strict=True)

    def test_whitespace_around_json_is_fine(self, golden_json):
        netlist = parse_netlist_text("\n\n  " + golden_json + "\n ", strict=True)
        assert netlist.num_instances() == 4

    def test_structurally_invalid_top_level(self):
        with pytest.raises(OtherSyntaxError):
            parse_netlist_text('{"instances": {}}', strict=True)
