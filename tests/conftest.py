"""Shared fixtures for the PICBench reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.golden import GoldenStore
from repro.bench.suite import all_problems, get_problem
from repro.constants import default_wavelength_grid
from repro.evalkit.evaluator import EvaluationConfig, Evaluator
from repro.sim.circuit import CircuitSolver
from repro.sim.registry import default_registry

#: Small wavelength grid used throughout the tests to keep simulations fast.
TEST_NUM_WAVELENGTHS = 11


@pytest.fixture(scope="session")
def wavelengths() -> np.ndarray:
    """A small evaluation wavelength grid (1510-1590 nm, 11 points)."""
    return default_wavelength_grid(TEST_NUM_WAVELENGTHS)


@pytest.fixture(scope="session")
def single_wavelength() -> np.ndarray:
    """A single-point grid at the centre wavelength."""
    return np.array([1.55])


@pytest.fixture(scope="session")
def registry():
    """The default built-in model registry."""
    return default_registry()


@pytest.fixture(scope="session")
def solver(registry) -> CircuitSolver:
    """A circuit solver sharing the default registry."""
    return CircuitSolver(registry=registry)


@pytest.fixture(scope="session")
def golden_store() -> GoldenStore:
    """A golden-response store on the small test grid (shared across tests)."""
    return GoldenStore(num_wavelengths=TEST_NUM_WAVELENGTHS)


@pytest.fixture(scope="session")
def evaluator(golden_store) -> Evaluator:
    """An evaluator wired to the small test grid."""
    config = EvaluationConfig(
        samples_per_problem=2,
        max_feedback_iterations=2,
        num_wavelengths=TEST_NUM_WAVELENGTHS,
    )
    return Evaluator(config, golden_store=golden_store)


@pytest.fixture(scope="session")
def suite():
    """The full 24-problem suite."""
    return all_problems()


@pytest.fixture(scope="session")
def mzi_ps_problem():
    """The MZI ps problem (the paper's running example)."""
    return get_problem("mzi_ps")
