"""Tests for system-prompt, restriction and feedback-prompt construction."""

import pytest

from repro.netlist.errors import (
    ErrorCategory,
    FunctionalError,
    WrongPortError,
)
from repro.prompts import (
    CORRECTION_REQUEST,
    FUNCTIONAL_FEEDBACK,
    JSON_FORMAT_SPEC,
    RESTRICTIONS,
    PromptConfig,
    build_feedback,
    build_functional_feedback,
    build_syntax_feedback,
    build_system_prompt,
    build_user_prompt,
    restriction_for,
    restrictions_text,
)
from repro.sim.registry import default_registry


class TestRestrictions:
    def test_nine_restrictions_listed(self):
        # Table II lists nine failure types with restrictions (the tenth row,
        # "Other syntax error", has no restriction).
        assert len(RESTRICTIONS) == 9

    def test_each_restriction_has_unique_category(self):
        categories = [r.category for r in RESTRICTIONS]
        assert len(set(categories)) == len(categories)

    def test_restriction_for_known_category(self):
        restriction = restriction_for(ErrorCategory.DUPLICATE_CONNECTION)
        assert restriction is not None
        assert "connected once" in restriction.text

    def test_restriction_for_other_syntax_is_none(self):
        assert restriction_for(ErrorCategory.OTHER_SYNTAX) is None

    def test_restrictions_text_numbered(self):
        text = restrictions_text()
        assert text.startswith("1. ")
        assert f"{len(RESTRICTIONS)}. " in text

    def test_restrictions_text_subset(self):
        text = restrictions_text([ErrorCategory.BAD_COMPONENT_NAME])
        assert "Underscores are prohibited" in text
        assert "connected once" not in text

    def test_table2_wording_present(self):
        text = restrictions_text()
        assert "never use undefined models" in text
        assert "code block markings" in text


class TestSystemPrompt:
    def test_contains_format_and_api_doc(self):
        prompt = build_system_prompt()
        assert JSON_FORMAT_SPEC in prompt
        assert "mzi:" in prompt
        assert "professional Photonic Integrated Circuit" in prompt

    def test_restrictions_excluded_by_default(self):
        prompt = build_system_prompt()
        assert "strictly follow these restrictions" not in prompt

    def test_restrictions_included_when_configured(self):
        prompt = build_system_prompt(config=PromptConfig(include_restrictions=True))
        assert "strictly follow these restrictions" in prompt
        assert "Underscores are prohibited" in prompt

    def test_restriction_subset_configuration(self):
        config = PromptConfig(
            include_restrictions=True,
            restriction_categories=[ErrorCategory.EXTRA_CONTENT],
        )
        prompt = build_system_prompt(config=config)
        assert "code block markings" in prompt
        assert "Underscores are prohibited" not in prompt

    def test_api_document_lists_every_registry_model(self):
        registry = default_registry()
        prompt = build_system_prompt(registry)
        for name in registry.names():
            assert f"{name}:" in prompt

    def test_base_notes_include_result_sections(self):
        prompt = build_system_prompt()
        assert "<analysis>" in prompt
        assert "<result>" in prompt
        assert "default unit is micron" in prompt

    def test_user_prompt_wraps_description(self, mzi_ps_problem):
        prompt = build_user_prompt(mzi_ps_problem.description)
        assert prompt.startswith("Problem Description")
        assert "Mach-Zehnder" in prompt


class TestFeedbackPrompts:
    def test_syntax_feedback_structure(self):
        error = WrongPortError("Instance mmi2 does not contain port I2. Available ports: ['I1', 'O1', 'O2']")
        feedback = build_syntax_feedback("MZI_ps", error)
        assert feedback.startswith("eval_MZI_ps: Wrong ports")
        assert "Available ports" in feedback
        assert CORRECTION_REQUEST in feedback
        assert "Relevant restriction" in feedback

    def test_functional_feedback_wording_matches_paper(self):
        feedback = build_functional_feedback("mzm")
        assert FUNCTIONAL_FEEDBACK in feedback
        assert "review the problem description carefully" in feedback

    def test_build_feedback_dispatch(self):
        functional = build_feedback("mzm", FunctionalError("response differs"))
        assert FUNCTIONAL_FEEDBACK in functional
        syntax = build_feedback("mzm", WrongPortError("bad port"))
        assert "Wrong ports" in syntax

    def test_syntax_feedback_without_restriction(self):
        from repro.netlist.errors import OtherSyntaxError

        feedback = build_syntax_feedback("nls", OtherSyntaxError("invalid JSON"))
        assert "Relevant restriction" not in feedback
        assert CORRECTION_REQUEST in feedback
