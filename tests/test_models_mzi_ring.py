"""Tests for the MZI and microring resonator device models."""

import numpy as np
import pytest

from repro.constants import default_wavelength_grid
from repro.sim.models import mrr_adddrop, mrr_allpass, mzi, mzi2x2, mzi2x2_transfer_matrix
from repro.sim.sparams import is_unitary


class TestMZI1x1:
    def test_balanced_mzi_transmits_fully(self, wavelengths):
        sm = mzi(wavelengths, delta_length=0.0)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)

    def test_unbalanced_mzi_has_fringes(self):
        wl = default_wavelength_grid(201)
        sm = mzi(wl, delta_length=30.0)
        t = sm.transmission("O1", "I1")
        assert t.max() > 0.95
        assert t.min() < 0.05

    def test_fsr_scales_inversely_with_delta_length(self):
        wl = default_wavelength_grid(801)

        def count_minima(delta):
            t = mzi(wl, delta_length=delta).transmission("O1", "I1")
            return int(np.sum((t[1:-1] < t[:-2]) & (t[1:-1] < t[2:]) & (t[1:-1] < 0.3)))

        assert count_minima(60.0) > count_minima(30.0)

    def test_transmission_bounded(self, wavelengths):
        t = mzi(wavelengths, delta_length=12.3).transmission("O1", "I1")
        assert np.all(t <= 1.0 + 1e-12)
        assert np.all(t >= 0.0)

    def test_loss_reduces_peak(self, wavelengths):
        lossy = mzi(wavelengths, delta_length=0.0, loss_db_cm=10.0, length=1000.0)
        assert np.all(lossy.transmission("O1", "I1") < 1.0)


class TestMZI2x2:
    def test_transfer_matrix_unitary(self):
        for theta, phi in [(0.0, 0.0), (np.pi / 3, 1.0), (np.pi, 2.0), (2.3, -0.7)]:
            matrix = mzi2x2_transfer_matrix(theta, phi)
            assert np.allclose(matrix.conj().T @ matrix, np.eye(2), atol=1e-12)

    def test_theta_zero_is_cross(self, single_wavelength):
        sm = mzi2x2(single_wavelength, theta=0.0, length=0.0)
        assert sm.transmission("O2", "I1")[0] == pytest.approx(1.0)
        assert sm.transmission("O1", "I1")[0] == pytest.approx(0.0, abs=1e-12)

    def test_theta_pi_is_bar(self, single_wavelength):
        sm = mzi2x2(single_wavelength, theta=np.pi, length=0.0)
        assert sm.transmission("O1", "I1")[0] == pytest.approx(1.0)

    def test_intermediate_theta_splits(self, single_wavelength):
        sm = mzi2x2(single_wavelength, theta=np.pi / 2, length=0.0)
        assert sm.transmission("O1", "I1")[0] == pytest.approx(0.5)
        assert sm.transmission("O2", "I1")[0] == pytest.approx(0.5)

    def test_matches_ideal_transfer_matrix(self, single_wavelength):
        theta, phi = 0.9, 0.4
        sm = mzi2x2(single_wavelength, theta=theta, phi=phi, length=0.0)
        ideal = mzi2x2_transfer_matrix(theta, phi)
        realised = np.array(
            [
                [sm.s("O1", "I1")[0], sm.s("O1", "I2")[0]],
                [sm.s("O2", "I1")[0], sm.s("O2", "I2")[0]],
            ]
        )
        assert np.allclose(realised, ideal, atol=1e-12)

    def test_unitary_with_propagation(self, wavelengths):
        assert is_unitary(mzi2x2(wavelengths, theta=0.3, phi=0.1, length=25.0))

    def test_delta_length_makes_wavelength_dependent(self):
        wl = default_wavelength_grid(101)
        sm = mzi2x2(wl, theta=0.0, delta_length=40.0)
        t = sm.transmission("O1", "I1")
        assert t.max() - t.min() > 0.5


class TestRings:
    def test_allpass_has_resonance_notch(self):
        wl = default_wavelength_grid(801)
        sm = mrr_allpass(wl, radius=5.0, coupling=0.05, loss_db_cm=10.0)
        t = sm.transmission("O1", "I1")
        assert t.min() < 0.6
        assert t.max() > 0.95

    def test_allpass_lossless_is_allpass(self, wavelengths):
        sm = mrr_allpass(wavelengths, coupling=0.2, loss_db_cm=0.0)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0, atol=1e-10)

    def test_allpass_invalid_coupling(self, wavelengths):
        with pytest.raises(ValueError):
            mrr_allpass(wavelengths, coupling=1.2)

    def test_adddrop_ports(self, wavelengths):
        sm = mrr_adddrop(wavelengths)
        assert sm.ports == ("I1", "I2", "O1", "O2")

    def test_adddrop_drop_peaks_at_through_dips(self):
        wl = default_wavelength_grid(801)
        sm = mrr_adddrop(wl, radius=5.0, coupling_in=0.1, coupling_out=0.1, loss_db_cm=1.0)
        through = sm.transmission("O1", "I1")
        drop = sm.transmission("O2", "I1")
        assert np.argmin(through) == np.argmax(drop)
        assert drop.max() > 0.8

    def test_adddrop_energy_bound(self, wavelengths):
        sm = mrr_adddrop(wavelengths, loss_db_cm=0.0)
        total = sm.transmission("O1", "I1") + sm.transmission("O2", "I1")
        assert np.all(total <= 1.0 + 1e-9)

    def test_adddrop_invalid_coupling(self, wavelengths):
        with pytest.raises(ValueError):
            mrr_adddrop(wavelengths, coupling_out=-0.5)

    def test_radius_shifts_resonance(self):
        wl = default_wavelength_grid(801)
        drop_a = mrr_adddrop(wl, radius=5.00).transmission("O2", "I1")
        drop_b = mrr_adddrop(wl, radius=5.05).transmission("O2", "I1")
        assert np.argmax(drop_a) != np.argmax(drop_b)
