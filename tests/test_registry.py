"""Tests for the model registry and the generated API document."""

import numpy as np
import pytest

from repro.sim.models import waveguide
from repro.sim.registry import ModelInfo, ModelRegistry, UnknownModelError, default_registry


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestDefaultRegistry:
    ESSENTIAL_MODELS = [
        "waveguide",
        "phase_shifter",
        "coupler",
        "mmi1x2",
        "mmi2x1",
        "mmi2x2",
        "mzi",
        "mzi2x2",
        "mrr_allpass",
        "mrr_adddrop",
        "mzm",
        "eam",
        "switch2x2",
    ]

    @pytest.mark.parametrize("name", ESSENTIAL_MODELS)
    def test_essential_models_present(self, registry, name):
        # Section IV-A: waveguides, couplers, MMIs, MZIs, MRRs, phase shifters
        # (plus the modulator / switch devices the benchmark problems use).
        assert name in registry

    def test_unknown_model_raises(self, registry):
        with pytest.raises(UnknownModelError, match="available models"):
            registry.get("flux_capacitor")

    def test_every_model_evaluates_with_defaults(self, registry, wavelengths):
        for info in registry:
            sm = info.evaluate(wavelengths)
            assert sm.num_wavelengths == wavelengths.size
            assert set(sm.ports) == set(info.ports)

    def test_every_model_ports_start_with_i_or_o(self, registry):
        for info in registry:
            for port in info.input_ports:
                assert port.startswith("I"), (info.name, port)
            for port in info.output_ports:
                assert port.startswith("O"), (info.name, port)

    def test_parameters_match_callable_defaults(self, registry, wavelengths):
        # Passing every documented parameter explicitly must be accepted.
        for info in registry:
            sm = info.evaluate(wavelengths, **dict(info.parameters))
            assert sm.num_ports == len(info.ports)

    def test_unknown_setting_rejected(self, registry, wavelengths):
        info = registry.get("waveguide")
        with pytest.raises(TypeError, match="unexpected settings"):
            info.evaluate(wavelengths, bogus=1.0)

    def test_names_sorted(self, registry):
        assert list(registry.names()) == sorted(registry.names())

    def test_len_and_iter_consistent(self, registry):
        assert len(list(registry)) == len(registry)


class TestApiDocument:
    def test_contains_every_model(self, registry):
        doc = registry.api_document()
        for name in registry.names():
            assert f"{name}:" in doc

    def test_entry_structure(self, registry):
        entry = registry.get("mzi").api_doc_entry()
        assert "description:" in entry
        assert "input ports: I1" in entry
        assert "delta_length" in entry

    def test_parameterless_entry(self, registry):
        entry = registry.get("terminator").api_doc_entry()
        assert "parameters: none" in entry


class TestCustomRegistry:
    def test_register_and_copy(self, registry, wavelengths):
        custom = registry.copy()
        custom.register(
            ModelInfo(
                name="delayline",
                func=waveguide,
                description="a long waveguide",
                input_ports=("I1",),
                output_ports=("O1",),
                parameters={"length": 1000.0},
            )
        )
        assert "delayline" in custom
        assert "delayline" not in registry
        sm = custom.get("delayline").evaluate(wavelengths, length=10.0)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)

    def test_contains_rejects_gracefully(self, registry):
        assert "not_a_model" not in registry
