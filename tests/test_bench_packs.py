"""Tests for the problem-pack subsystem: registry, core invariance, CLI."""

from __future__ import annotations

import importlib.util
import json
import threading
from pathlib import Path

import pytest

from repro.bench import (
    CORE_PACK_NAME,
    GoldenStore,
    Problem,
    ProblemPack,
    all_problems,
    find_problem_by_description,
    get_pack,
    get_problem,
    pack_names,
    pack_summaries,
    problems_by_category,
    register_pack,
    unregister_pack,
)
from repro.bench.problems import (
    fundamental,
    interconnects,
    optical_computing,
    switches,
    wdm_links,
)
from repro.evalkit import EvaluationConfig, Evaluator, pass_at_k_by_pack
from repro.harness import SweepConfig, packs_text, run_model, table1_text
from repro.harness.cli import main
from repro.llm import PerfectDesigner
from repro.netlist import validate_netlist
from repro.netlist.validation import PortSpec
from repro.prompts.system_prompt import PromptConfig, build_system_prompt
from tests.conftest import TEST_NUM_WAVELENGTHS

#: The seed's 24 problem names, in Table I enumeration order.
SEED_PROBLEM_NAMES = (
    "clements_4x4",
    "clements_8x8",
    "reck_4x4",
    "reck_8x8",
    "nls",
    "umatrix_block",
    "direct_modulator",
    "qpsk_modulator",
    "qam8_modulator",
    "qam64_modulator",
    "wdm_mux",
    "wdm_demux",
    "optical_hybrid",
    "os_2x2",
    "crossbar_4x4",
    "crossbar_8x8",
    "spanke_4x4",
    "spanke_8x8",
    "benes_4x4",
    "benes_8x8",
    "spankebenes_4x4",
    "spankebenes_8x8",
    "mzi_ps",
    "mzm",
)


def _seed_enumeration():
    """Rebuild the suite exactly as the seed's fixed table did."""
    problems = []
    problems.extend(optical_computing.build_problems())
    problems.extend(interconnects.build_problems())
    problems.extend(switches.build_problems())
    problems.extend(fundamental.build_problems())
    return problems


class TestCorePackInvariance:
    """The core pack must reproduce the seed's 24 problems byte for byte."""

    def test_core_name_order_is_the_seed_order(self):
        assert tuple(p.name for p in all_problems()) == SEED_PROBLEM_NAMES

    def test_default_equals_explicit_core(self):
        assert all_problems() is all_problems(CORE_PACK_NAME)

    def test_core_problems_match_seed_enumeration_exactly(self):
        seed = _seed_enumeration()
        core = all_problems()
        assert len(core) == len(seed) == 24
        for packed, original in zip(core, seed):
            assert packed.name == original.name
            assert packed.title == original.title
            assert packed.category == original.category
            assert packed.summary == original.summary
            assert packed.description == original.description
            assert packed.port_spec == original.port_spec
            assert packed.golden_netlist().to_json() == original.golden_netlist().to_json()

    def test_core_problems_are_stamped_core(self):
        assert {p.pack for p in all_problems()} == {CORE_PACK_NAME}

    def test_core_system_prompt_has_no_pack_note(self):
        prompt = build_system_prompt(config=PromptConfig())
        assert "<<<Benchmark pack>>>" not in prompt


class TestPackRegistry:
    def test_builtin_packs_present_core_first(self):
        names = pack_names()
        assert names[0] == CORE_PACK_NAME
        assert "wdm-links" in names

    def test_get_pack_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available packs"):
            get_pack("no-such-pack")

    def test_all_problems_unknown_pack_raises(self):
        with pytest.raises(KeyError, match="available packs"):
            all_problems("no-such-pack")

    def test_duplicate_registration_rejected(self):
        pack = get_pack("wdm-links")
        with pytest.raises(ValueError, match="already registered"):
            register_pack(pack)
        register_pack(pack, replace_existing=True)  # idempotent escape hatch

    def test_builtin_packs_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="cannot be unregistered"):
            unregister_pack(CORE_PACK_NAME)

    def test_unknown_pack_param_rejected(self):
        with pytest.raises(KeyError, match="does not accept parameter"):
            all_problems("wdm-links", {"flux": 1})

    def test_duplicate_problem_names_rejected(self):
        def bad_builder(params):
            problem = all_problems()[0]
            return [problem, problem]

        pack = ProblemPack(
            name="broken-pack",
            title="Broken",
            description="duplicate names",
            categories=("Optical Computing",),
            builder=bad_builder,
        )
        with pytest.raises(RuntimeError, match="duplicate problem names"):
            pack.build_problems()

    def test_undeclared_category_rejected(self):
        pack = ProblemPack(
            name="misfiled-pack",
            title="Misfiled",
            description="category not declared",
            categories=("Some Other Category",),
            builder=lambda params: [all_problems()[0]],
        )
        with pytest.raises(RuntimeError, match="does not declare"):
            pack.build_problems()

    def test_expected_count_enforced_for_default_build(self):
        pack = ProblemPack(
            name="short-pack",
            title="Short",
            description="too few problems",
            categories=("Fundamental Devices",),
            builder=lambda params: [get_problem("mzi_ps")],
            expected_count=2,
        )
        with pytest.raises(RuntimeError, match="must contain 2 problems"):
            pack.build_problems()

    def test_pack_summaries_cover_all_packs(self):
        summaries = {entry["name"]: entry for entry in pack_summaries()}
        assert summaries[CORE_PACK_NAME]["num_problems"] == 24
        assert summaries["wdm-links"]["parametric"] is True

    def test_enumeration_is_cached_and_thread_safe(self):
        results = []

        def enumerate_pack():
            results.append(all_problems("wdm-links"))

        threads = [threading.Thread(target=enumerate_pack) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result is results[0] for result in results)


class TestWdmLinksPack:
    def test_default_enumeration(self):
        problems = all_problems("wdm-links")
        assert [p.name for p in problems] == [
            f"wdm_{kind}_{n}ch"
            for n in (2, 4, 8)
            for kind in ("mux", "demux", "link")
        ]
        assert {p.pack for p in problems} == {"wdm-links"}

    def test_goldens_validate_against_port_specs(self):
        for problem in all_problems("wdm-links"):
            validate_netlist(problem.golden_netlist(), port_spec=problem.port_spec)

    def test_parametric_override(self):
        problems = all_problems("wdm-links", {"channels": (3,), "spacing": 0.1})
        assert [p.name for p in problems] == ["wdm_mux_3ch", "wdm_demux_3ch", "wdm_link_3ch"]
        mux = problems[0].golden_netlist()
        radii = sorted(inst.settings["radius"] for inst in mux.instances.values())
        assert radii == [5.0, 5.1, 5.2]

    def test_link_port_spec_matches_channels(self):
        link = get_problem("wdm_link_4ch", "wdm-links")
        assert link.port_spec == PortSpec(num_inputs=4, num_outputs=4)

    def test_channel_radii_validation(self):
        with pytest.raises(ValueError, match="num_channels"):
            wdm_links.channel_radii(0)
        with pytest.raises(ValueError, match="spacing"):
            wdm_links.channel_radii(4, spacing=0.0)

    def test_descriptions_unique_and_well_formed(self):
        problems = all_problems("wdm-links")
        descriptions = [p.description for p in problems]
        assert len(set(descriptions)) == len(descriptions)
        for description in descriptions:
            assert "Ports:" in description

    def test_problems_by_category_uses_pack_categories(self):
        grouped = problems_by_category("wdm-links")
        assert list(grouped) == [wdm_links.CATEGORY_MULTIPLEXING, wdm_links.CATEGORY_LINKS]
        assert len(grouped[wdm_links.CATEGORY_LINKS]) == 3

    def test_find_problem_by_description(self):
        problem = get_problem("wdm_link_2ch", "wdm-links")
        found = find_problem_by_description(f"prefix\n{problem.description}\nsuffix")
        assert found is not None and found.name == "wdm_link_2ch"

    def test_perfect_designer_passes_wdm_problems(self):
        problems = [
            get_problem("wdm_mux_2ch", "wdm-links"),
            get_problem("wdm_link_2ch", "wdm-links"),
        ]
        evaluator = Evaluator(
            EvaluationConfig(samples_per_problem=1, num_wavelengths=TEST_NUM_WAVELENGTHS)
        )
        report = evaluator.run_suite(PerfectDesigner(), problems)
        assert report.pack == "wdm-links"
        assert report.pass_at_k(1, metric="functional", max_feedback=0) == pytest.approx(100.0)


class TestGoldenStoreNamespacing:
    def test_disk_artefacts_are_namespaced_per_pack(self, tmp_path):
        core_store = GoldenStore(
            num_wavelengths=TEST_NUM_WAVELENGTHS, cache_dir=tmp_path
        )
        wdm_store = GoldenStore(
            num_wavelengths=TEST_NUM_WAVELENGTHS, cache_dir=tmp_path, pack="wdm-links"
        )
        core_store.response_for("mzi_ps")
        wdm_store.response_for("wdm_mux_2ch")
        names = sorted(path.name for path in tmp_path.glob("*.json"))
        assert any(name.startswith("core.mzi_ps.golden.") for name in names)
        assert any(name.startswith("wdm-links.wdm_mux_2ch.golden.") for name in names)

    def test_string_lookup_resolves_against_store_pack(self):
        store = GoldenStore(num_wavelengths=TEST_NUM_WAVELENGTHS, pack="wdm-links")
        response = store.response_for("wdm_demux_2ch")
        assert response is store.response_for("wdm_demux_2ch")  # memory hit

    def test_reparameterised_pack_gets_fresh_artefact(self, tmp_path):
        narrow = GoldenStore(
            num_wavelengths=TEST_NUM_WAVELENGTHS, cache_dir=tmp_path, pack="wdm-links"
        )
        wide = GoldenStore(
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            cache_dir=tmp_path,
            pack="wdm-links",
            pack_params={"spacing": 0.2},
        )
        narrow.response_for("wdm_mux_2ch")
        wide.response_for("wdm_mux_2ch")
        artefacts = list(tmp_path.glob("wdm-links.wdm_mux_2ch.golden.*.json"))
        assert len(artefacts) == 2  # different golden fingerprints


class TestHarnessPackSelection:
    def test_sweep_config_selects_pack_problems(self):
        config = SweepConfig(pack="wdm-links", pack_params={"channels": (2,)})
        assert [p.name for p in config.select_problems()] == [
            "wdm_mux_2ch",
            "wdm_demux_2ch",
            "wdm_link_2ch",
        ]

    def test_prompt_config_carries_pack_note_for_non_core(self):
        config = SweepConfig(pack="wdm-links")
        prompt_config = config.prompt_config(include_restrictions=False)
        assert prompt_config.pack_note is not None
        assert "WDM" in prompt_config.pack_note
        prompt = build_system_prompt(config=prompt_config)
        assert "<<<Benchmark pack>>>" in prompt
        assert SweepConfig().prompt_config(include_restrictions=False).pack_note is None

    def test_run_model_on_wdm_pack(self):
        config = SweepConfig(
            samples_per_problem=1,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            pack="wdm-links",
            pack_params={"channels": (2,)},
        )
        report = run_model(PerfectDesigner(), include_restrictions=False, config=config)
        assert report.pack == "wdm-links"
        assert report.pass_at_k(1, metric="functional", max_feedback=0) == pytest.approx(100.0)

    def test_pass_at_k_by_pack_groups_reports(self):
        core_config = SweepConfig(
            samples_per_problem=1,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            problems=("mzi_ps",),
        )
        wdm_config = SweepConfig(
            samples_per_problem=1,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            pack="wdm-links",
            pack_params={"channels": (2,)},
            problems=("wdm_mux_2ch",),
        )
        reports = [
            run_model(PerfectDesigner(), include_restrictions=False, config=core_config),
            run_model(PerfectDesigner(), include_restrictions=False, config=wdm_config),
        ]
        aggregated = pass_at_k_by_pack(reports, 1, metric="functional")
        assert aggregated == {
            "core": pytest.approx(100.0),
            "wdm-links": pytest.approx(100.0),
        }

    def test_sweep_with_non_default_pack_params_runs(self):
        # Regression: parameter overrides change the problem descriptions, and
        # the simulated designers must still recognise the problems.
        from repro.harness import run_sweep
        from repro.llm import DEFAULT_PROFILES

        config = SweepConfig(
            samples_per_problem=1,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            pack="wdm-links",
            pack_params={"channels": (3,), "spacing": 0.1},
            problems=("wdm_mux_3ch",),
        )
        sweep = run_sweep(
            config, profiles=DEFAULT_PROFILES[:1], restriction_settings=(False,)
        )
        assert sweep.packs() == ["wdm-links"]

    def test_reparameterised_pack_gets_fresh_memory_golden(self):
        # Regression: the in-memory golden cache must key on the golden
        # design's content, not just (pack, name).
        store = GoldenStore(num_wavelengths=TEST_NUM_WAVELENGTHS, pack="wdm-links")
        default_problem = get_problem("wdm_mux_2ch", "wdm-links")
        wide_problem = get_problem("wdm_mux_2ch", "wdm-links", {"spacing": 0.2})
        default_response = store.response_for(default_problem)
        wide_response = store.response_for(wide_problem)
        assert default_response is not wide_response

    def test_reregistration_invalidates_cached_suites(self):
        try:
            register_pack(
                ProblemPack(
                    name="mutable-pack",
                    title="Mutable",
                    description="re-registration test",
                    categories=("Fundamental Devices",),
                    builder=lambda params: [get_problem("mzi_ps")],
                )
            )
            assert [p.name for p in all_problems("mutable-pack")] == ["mzi_ps"]
            register_pack(
                ProblemPack(
                    name="mutable-pack",
                    title="Mutable",
                    description="re-registration test",
                    categories=("Fundamental Devices",),
                    builder=lambda params: [get_problem("mzm")],
                ),
                replace_existing=True,
            )
            assert [p.name for p in all_problems("mutable-pack")] == ["mzm"]
        finally:
            unregister_pack("mutable-pack")
        with pytest.raises(KeyError):
            all_problems("mutable-pack")

    def test_table1_text_names_non_core_pack(self):
        text = table1_text("wdm-links")
        assert "(pack: wdm-links)" in text
        assert "WDM link 8ch" in text
        assert "(pack:" not in table1_text()

    def test_packs_text_lists_builtins(self):
        text = packs_text()
        assert "core" in text and "wdm-links" in text


class TestCliPackFlags:
    def test_list_packs(self, capsys):
        assert main(["--list-packs"]) == 0
        out = capsys.readouterr().out
        assert "Registered problem packs" in out
        assert "wdm-links" in out

    def test_missing_target_without_list_packs_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_table1_pack_flag(self, capsys):
        assert main(["table1", "--pack", "wdm-links"]) == 0
        assert "(pack: wdm-links)" in capsys.readouterr().out

    def test_bad_pack_param_syntax_rejected(self):
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            main(["table1", "--pack", "wdm-links", "--pack-param", "channels"])

    def test_sweep_pack_end_to_end(self, capsys, tmp_path):
        output = tmp_path / "wdm_results.json"
        code = main(
            [
                "table3",
                "--pack",
                "wdm-links",
                "--pack-param",
                "channels=[2]",
                "--problems",
                "wdm_mux_2ch",
                "wdm_link_2ch",
                "--samples",
                "1",
                "--feedback",
                "1",
                "--wavelengths",
                str(TEST_NUM_WAVELENGTHS),
                "--workers",
                "2",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE III" in out
        assert "(pack: wdm-links)" in out
        assert "[wdm-links]" in out
        payload = json.loads(output.read_text())
        assert all(report["pack"] == "wdm-links" for report in payload.values())


class TestAuthoringGuideExample:
    """The docs/AUTHORING_PROBLEMS.md worked example must run end to end."""

    @pytest.fixture(scope="class")
    def custom_pack_module(self):
        path = Path(__file__).resolve().parent.parent / "examples" / "custom_pack.py"
        spec = importlib.util.spec_from_file_location("custom_pack_example", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.register()
        yield module
        unregister_pack("splitter-trees")

    def test_pack_registers_and_enumerates(self, custom_pack_module):
        problems = all_problems("splitter-trees")
        assert [p.name for p in problems] == [
            "splitter_tree_2way",
            "splitter_tree_4way",
            "splitter_tree_8way",
        ]
        for problem in problems:
            validate_netlist(problem.golden_netlist(), port_spec=problem.port_spec)

    def test_perfect_designer_passes_the_example_pack(self, custom_pack_module):
        evaluator = Evaluator(
            EvaluationConfig(samples_per_problem=1, num_wavelengths=TEST_NUM_WAVELENGTHS)
        )
        report = evaluator.run_suite(PerfectDesigner(), all_problems("splitter-trees"))
        assert report.pack == "splitter-trees"
        assert report.pass_at_k(1, metric="functional") == pytest.approx(100.0)

    def test_example_main_runs(self, custom_pack_module, capsys):
        custom_pack_module.main()
        out = capsys.readouterr().out
        assert "splitter-trees" in out
        assert "functionality Pass@1 = 100.0%" in out
