"""Service-grade tests of the job queue, job specs and the EvalService.

Three layers:

* :class:`repro.service.queue.JobQueue` mechanics with a synthetic
  executor -- ordering/fairness, priorities, bounded concurrency, N
  concurrent submitters, cancellation (queued and mid-run), and the
  ``UnitFailure``-style crash containment (a failed job never poisons the
  queue).
* :class:`repro.service.spec.JobSpec` validation, JSON round trips and
  content fingerprints.
* :class:`repro.service.service.EvalService` integration on tiny sweeps:
  byte-identity with the direct ``run_model`` path, persisted job
  metadata, store-level dedup, and the warm-cache regression tests (job 2
  through one service sees warm plan/simulation caches).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import pytest

from repro.harness.runner import SweepConfig, run_model
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedDesigner
from repro.service import EvalService, JobCancelled, JobQueue, JobSpec, JobState
from repro.service.store import canonical_report_json

#: Spec small enough for sub-second jobs but rich enough to exercise the
#: solver (4 samples x 2 feedback iterations produce several structurally
#: identical candidate netlists -> real plan-cache traffic).
TINY = dict(
    models=("GPT-4o",),
    restrictions=(False,),
    samples_per_problem=1,
    max_feedback_iterations=1,
    num_wavelengths=5,
    problems=("mzi_ps",),
)
WARM = dict(TINY, samples_per_problem=4, max_feedback_iterations=2)


def drain(queue: JobQueue) -> None:
    """Shut a queue down, draining whatever is still queued."""
    queue.shutdown(wait=True, timeout=30.0)


# ======================================================================
# JobQueue mechanics (synthetic executor)
# ======================================================================
class Recorder:
    """Synthetic executor recording execution order and concurrency."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.lock = threading.Lock()
        self.order = []
        self.active = 0
        self.max_active = 0

    def __call__(self, job):
        with self.lock:
            self.active += 1
            self.max_active = max(self.max_active, self.active)
            self.order.append(job.job_id)
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.active -= 1
        return f"result:{job.job_id}"


def test_submit_runs_to_done():
    recorder = Recorder()
    queue = JobQueue(recorder, workers=1)
    job_id = queue.submit(JobSpec(**TINY))
    record = queue.wait(job_id, timeout=10.0)
    assert record.state is JobState.DONE
    assert record.state.terminal
    assert record.result == f"result:{job_id}"
    assert record.started_at is not None and record.finished_at is not None
    drain(queue)


def test_fifo_order_with_single_worker():
    recorder = Recorder()
    gate = threading.Event()

    def gated(job):
        gate.wait(10.0)
        return recorder(job)

    queue = JobQueue(gated, workers=1)
    ids = [queue.submit(JobSpec(**TINY, base_seed=i)) for i in range(6)]
    gate.set()
    for job_id in ids:
        assert queue.wait(job_id, timeout=10.0).state is JobState.DONE
    assert recorder.order == ids
    drain(queue)


def test_priority_orders_execution():
    recorder = Recorder()
    started = threading.Event()
    gate = threading.Event()

    def gated(job):
        # The blocker parks the single worker so the prioritised jobs all
        # sit in the heap together before any of them is popped.
        if job.spec.base_seed == 99:
            started.set()
            gate.wait(10.0)
            return "blocker"
        return recorder(job)

    queue = JobQueue(gated, workers=1)
    blocker = queue.submit(JobSpec(**TINY, base_seed=99))
    assert started.wait(10.0)
    low = queue.submit(JobSpec(**TINY, base_seed=1), priority=10)
    high = queue.submit(JobSpec(**TINY, base_seed=2), priority=-10)
    mid = queue.submit(JobSpec(**TINY, base_seed=3), priority=0)
    gate.set()
    for job_id in (blocker, low, high, mid):
        queue.wait(job_id, timeout=10.0)
    assert recorder.order == [high, mid, low]
    drain(queue)


def test_equal_priority_is_submission_order():
    recorder = Recorder()
    gate = threading.Event()

    def gated(job):
        gate.wait(10.0)
        return recorder(job)

    queue = JobQueue(gated, workers=1)
    ids = [queue.submit(JobSpec(**TINY, base_seed=i), priority=5) for i in range(8)]
    gate.set()
    for job_id in ids:
        queue.wait(job_id, timeout=10.0)
    assert recorder.order == ids
    drain(queue)


def test_concurrent_submitters_no_lost_or_duplicated_jobs():
    recorder = Recorder()
    queue = JobQueue(recorder, workers=4)
    submitted = []
    submitted_lock = threading.Lock()

    def submitter(seed_base):
        for i in range(5):
            job_id = queue.submit(JobSpec(**TINY, base_seed=seed_base * 100 + i))
            with submitted_lock:
                submitted.append(job_id)

    threads = [threading.Thread(target=submitter, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(submitted) == 40
    assert len(set(submitted)) == 40, "job ids must be unique"
    for job_id in submitted:
        assert queue.wait(job_id, timeout=30.0).state is JobState.DONE
    # Executed exactly once each: no lost and no duplicated jobs.
    assert sorted(recorder.order) == sorted(submitted)
    drain(queue)


def test_bounded_worker_concurrency():
    recorder = Recorder(delay=0.05)
    queue = JobQueue(recorder, workers=2)
    ids = [queue.submit(JobSpec(**TINY, base_seed=i)) for i in range(8)]
    for job_id in ids:
        queue.wait(job_id, timeout=30.0)
    assert recorder.max_active <= 2
    drain(queue)


def test_cancel_queued_job_never_runs():
    recorder = Recorder()
    release = threading.Event()

    def blocking(job):
        release.wait(10.0)
        return recorder(job)

    queue = JobQueue(blocking, workers=1)
    blocker = queue.submit(JobSpec(**TINY, base_seed=0))
    victim = queue.submit(JobSpec(**TINY, base_seed=1))
    assert queue.cancel(victim) is True
    record = queue.get(victim)
    assert record.state is JobState.CANCELLED
    release.set()
    queue.wait(blocker, timeout=10.0)
    drain(queue)
    assert victim not in recorder.order, "a cancelled queued job must never execute"


def test_cancel_running_job_mid_run():
    started = threading.Event()

    def cancellable(job):
        started.set()
        for _ in range(200):
            job.checkpoint()  # raises JobCancelled once requested
            time.sleep(0.01)
        return "finished"

    queue = JobQueue(cancellable, workers=1)
    job_id = queue.submit(JobSpec(**TINY))
    assert started.wait(10.0)
    assert queue.cancel(job_id) is True
    record = queue.wait(job_id, timeout=10.0)
    assert record.state is JobState.CANCELLED
    assert record.result is None
    drain(queue)


def test_cancel_terminal_job_returns_false():
    queue = JobQueue(Recorder(), workers=1)
    job_id = queue.submit(JobSpec(**TINY))
    queue.wait(job_id, timeout=10.0)
    assert queue.cancel(job_id) is False
    drain(queue)


def test_late_cancel_after_completion_stays_done():
    finishing = threading.Event()

    def fast(job):
        finishing.set()
        return "ok"

    queue = JobQueue(fast, workers=1)
    job_id = queue.submit(JobSpec(**TINY))
    record = queue.wait(job_id, timeout=10.0)
    assert record.state is JobState.DONE
    # A cancel request that lands after completion cannot un-do the work.
    assert queue.cancel(job_id) is False
    assert queue.get(job_id).state is JobState.DONE
    drain(queue)


def test_failed_job_records_error_and_traceback():
    def exploding(job):
        raise RuntimeError("boom in the executor")

    queue = JobQueue(exploding, workers=1)
    job_id = queue.submit(JobSpec(**TINY))
    record = queue.wait(job_id, timeout=10.0)
    assert record.state is JobState.FAILED
    assert "RuntimeError" in record.error and "boom in the executor" in record.error
    assert "Traceback" in record.error_traceback
    drain(queue)


def test_crashed_job_never_poisons_the_queue():
    calls = []

    def flaky(job):
        calls.append(job.job_id)
        if job.spec.base_seed % 2 == 0:
            raise ValueError(f"synthetic crash for {job.job_id}")
        return "ok"

    queue = JobQueue(flaky, workers=2)
    ids = [queue.submit(JobSpec(**TINY, base_seed=i)) for i in range(10)]
    states = [queue.wait(job_id, timeout=30.0).state for job_id in ids]
    assert states == [
        JobState.FAILED if i % 2 == 0 else JobState.DONE for i in range(10)
    ]
    assert len(calls) == 10, "every job ran exactly once despite the crashes"
    drain(queue)


def test_unknown_job_id_raises_keyerror():
    queue = JobQueue(Recorder(), workers=1)
    with pytest.raises(KeyError):
        queue.get("job-does-not-exist")
    with pytest.raises(KeyError):
        queue.cancel("job-does-not-exist")
    drain(queue)


def test_submit_after_shutdown_raises():
    queue = JobQueue(Recorder(), workers=1)
    drain(queue)
    with pytest.raises(RuntimeError):
        queue.submit(JobSpec(**TINY))


def test_shutdown_drains_queued_jobs():
    recorder = Recorder(delay=0.01)
    queue = JobQueue(recorder, workers=1)
    ids = [queue.submit(JobSpec(**TINY, base_seed=i)) for i in range(5)]
    queue.shutdown(wait=True, timeout=30.0)
    assert [queue.get(job_id).state for job_id in ids] == [JobState.DONE] * 5


def test_wait_timeout_returns_live_record():
    release = threading.Event()

    def blocking(job):
        release.wait(10.0)
        return "ok"

    queue = JobQueue(blocking, workers=1)
    job_id = queue.submit(JobSpec(**TINY))
    record = queue.wait(job_id, timeout=0.05)
    assert not record.state.terminal
    release.set()
    assert queue.wait(job_id, timeout=10.0).state is JobState.DONE
    drain(queue)


def test_on_update_hook_sees_every_transition():
    seen = []
    queue = JobQueue(
        Recorder(), workers=1, on_update=lambda record: seen.append(record.state)
    )
    job_id = queue.submit(JobSpec(**TINY))
    queue.wait(job_id, timeout=10.0)
    drain(queue)
    assert seen[0] is JobState.QUEUED
    assert JobState.RUNNING in seen
    assert seen[-1] is JobState.DONE


def test_on_update_hook_failure_is_contained():
    def hostile_hook(record):
        raise OSError("the store is down")

    queue = JobQueue(Recorder(), workers=1, on_update=hostile_hook)
    job_id = queue.submit(JobSpec(**TINY))
    assert queue.wait(job_id, timeout=10.0).state is JobState.DONE
    drain(queue)


def test_adopt_rejects_live_records():
    from repro.service.queue import JobRecord

    queue = JobQueue(Recorder(), workers=1)
    with pytest.raises(ValueError):
        queue.adopt(JobRecord(job_id="job-x", spec=JobSpec(**TINY)))
    drain(queue)


def test_jobs_listing_preserves_submission_order():
    gate = threading.Event()
    queue = JobQueue(lambda job: gate.wait(10.0), workers=1)
    ids = [queue.submit(JobSpec(**TINY, base_seed=i)) for i in range(4)]
    assert [record.job_id for record in queue.jobs()] == ids
    gate.set()
    drain(queue)


# ======================================================================
# JobSpec
# ======================================================================
def test_spec_json_roundtrip():
    spec = JobSpec(
        models=("GPT-4o", "GPT-4"),
        restrictions=(True,),
        pack="wdm-links",
        pack_params={"channels": [2]},
        problems=("wdm_mux_2ch",),
        batch_size=4,
    )
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_spec_fingerprint_stable_and_content_sensitive():
    spec = JobSpec(**TINY)
    assert spec.fingerprint() == JobSpec(**TINY).fingerprint()
    assert spec.fingerprint() != replace(spec, base_seed=1).fingerprint()
    assert spec.fingerprint() != replace(spec, samples_per_problem=2).fingerprint()


def test_spec_rejects_unknown_kind_and_mode():
    with pytest.raises(ValueError):
        JobSpec(kind="nonsense")
    with pytest.raises(ValueError):
        JobSpec(execution_mode="quantum")


def test_spec_evaluate_kind_is_single_model_single_restriction():
    JobSpec(kind="evaluate", models=("GPT-4o",), restrictions=(False,))
    with pytest.raises(ValueError):
        JobSpec(kind="evaluate", models=("GPT-4o", "GPT-4"), restrictions=(False,))
    with pytest.raises(ValueError):
        JobSpec(kind="evaluate", models=("GPT-4o",), restrictions=(False, True))


def test_spec_rejects_empty_models_and_restrictions():
    with pytest.raises(ValueError):
        JobSpec(models=())
    with pytest.raises(ValueError):
        JobSpec(restrictions=())


def test_spec_validate_rejects_unknown_model_and_pack():
    with pytest.raises(KeyError):
        JobSpec(models=("GPT-99",)).validate()
    with pytest.raises(KeyError):
        JobSpec(pack="no-such-pack").validate()


def test_spec_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError):
        JobSpec.from_dict({"cache_dir": "/tmp/x"})


def test_queue_submit_validates_spec():
    queue = JobQueue(Recorder(), workers=1)
    with pytest.raises(KeyError):
        queue.submit(JobSpec(**dict(TINY, models=("GPT-99",))))
    drain(queue)


# ======================================================================
# EvalService integration
# ======================================================================
@pytest.fixture()
def service(tmp_path):
    """A small service on a temp database (one queue worker: deterministic)."""
    with EvalService(tmp_path / "results.db", job_workers=1) as svc:
        yield svc


def test_service_job_matches_direct_run_model(service):
    spec = JobSpec(**TINY)
    job_id = service.submit(spec)
    record = service.wait(job_id, timeout=120.0)
    assert record.state is JobState.DONE
    direct = run_model(
        SimulatedDesigner(get_profile("GPT-4o"), base_seed=spec.base_seed),
        include_restrictions=False,
        config=spec.sweep_config(),
    )
    via_service = record.result[("GPT-4o", False)]
    assert canonical_report_json(via_service) == canonical_report_json(direct)


def test_service_persists_run_and_job_metadata(service):
    spec = JobSpec(**TINY)
    job_id = service.submit(spec)
    record = service.wait(job_id, timeout=120.0)
    stored_job = service.store.load_job(job_id)
    assert stored_job["state"] == "done"
    assert stored_job["run_id"] == record.run_id
    run = service.store.load_run(record.run_id)
    assert run.spec == spec
    assert set(run.reports) == {("GPT-4o", False)}


def test_sequential_jobs_share_plan_cache(service):
    """THE one-shot regression test: job 2 hits job 1's compiled plans.

    The second job differs only in its base seed, so its candidate
    netlists share topology (but not content) with job 1's -- exactly the
    case the topology-keyed plan cache serves.  A one-shot CLI would
    recompile from scratch; the service's shared engine must not.
    """
    first = service.submit(JobSpec(**WARM))
    assert service.wait(first, timeout=300.0).state is JobState.DONE
    second = service.submit(JobSpec(**WARM, base_seed=7))
    record = service.wait(second, timeout=300.0)
    assert record.state is JobState.DONE
    plan = record.engine_stats["plan_cache"]
    assert plan["hits"] > 0, "job 2 must get warm plan-cache hits"
    assert plan["hit_rate"] > 0.0


def test_identical_resubmission_is_fully_warm(service):
    spec = JobSpec(**WARM)
    first = service.submit(spec)
    assert service.wait(first, timeout=300.0).state is JobState.DONE
    second = service.submit(spec)
    record = service.wait(second, timeout=300.0)
    assert record.state is JobState.DONE
    delta = record.engine_stats
    assert delta["simulation_cache"]["hits"] > 0, "job 2 must hit the simulation cache"
    assert delta["simulation_cache"]["misses"] == 0, "nothing should be re-simulated"
    assert delta["plan_cache"]["misses"] == 0, "nothing should be re-compiled"
    # Identical specs produce identical reports -> the same stored run.
    assert record.run_id == service.status(first).run_id


def test_dedupe_submission_reuses_stored_run(service):
    spec = JobSpec(**TINY)
    first = service.submit(spec)
    service.wait(first, timeout=120.0)
    before = service.store.counts()
    second = service.submit(spec, dedupe=True)
    record = service.wait(second, timeout=10.0)
    assert record.state is JobState.DONE
    assert record.deduplicated is True
    assert record.run_id == service.status(first).run_id
    after = service.store.counts()
    assert after["runs"] == before["runs"], "dedup must not create a new run"
    assert after["jobs"] == before["jobs"] + 1, "but the job itself is recorded"


def test_failed_job_is_contained_and_queue_survives(service):
    bad = service.submit(JobSpec(**dict(TINY, problems=("no_such_problem",))))
    record = service.wait(bad, timeout=120.0)
    assert record.state is JobState.FAILED
    assert "no_such_problem" in record.error
    assert service.store.load_job(bad)["state"] == "failed"
    good = service.submit(JobSpec(**TINY))
    assert service.wait(good, timeout=120.0).state is JobState.DONE


def test_concurrent_service_jobs_all_complete(tmp_path):
    with EvalService(tmp_path / "results.db", job_workers=2) as svc:
        ids = [svc.submit(JobSpec(**TINY, base_seed=seed)) for seed in range(4)]
        records = [svc.wait(job_id, timeout=300.0) for job_id in ids]
        assert all(record.state is JobState.DONE for record in records)
        assert svc.store.counts()["runs"] == len({record.run_id for record in records})
        stats = svc.stats()
        assert stats["jobs"]["done"] == 4
