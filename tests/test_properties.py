"""Property-based tests (hypothesis) on the core invariants of the library."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.evalkit import pass_at_k
from repro.llm.simulated import _stable_seed
from repro.meshes import (
    clements_decomposition,
    is_unitary_matrix,
    random_unitary,
    reck_decomposition,
)
from repro.sim.models import coupler, mzi2x2, phase_shifter, waveguide
from repro.sim.sparams import is_reciprocal, is_unitary
from repro.switching import route_benes, route_crossbar, route_spanke_benes
from repro.switching.benes import _build_structure

WAVELENGTHS = np.linspace(1.51, 1.59, 5)

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
phases = st.floats(min_value=-2 * np.pi, max_value=2 * np.pi, allow_nan=False)


@given(coupling=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_coupler_is_always_unitary_and_reciprocal(coupling):
    sm = coupler(WAVELENGTHS, coupling=coupling)
    assert is_unitary(sm)
    assert is_reciprocal(sm)


@given(theta=phases, phi=phases)
@settings(max_examples=40, deadline=None)
def test_mzi2x2_energy_conservation(theta, phi):
    sm = mzi2x2(WAVELENGTHS, theta=theta, phi=phi, length=0.0)
    total_from_i1 = sm.transmission("O1", "I1") + sm.transmission("O2", "I1")
    total_from_i2 = sm.transmission("O1", "I2") + sm.transmission("O2", "I2")
    assert np.allclose(total_from_i1, 1.0, atol=1e-9)
    assert np.allclose(total_from_i2, 1.0, atol=1e-9)


@given(length=st.floats(min_value=0.0, max_value=5e3, allow_nan=False), phase=phases)
@settings(max_examples=40, deadline=None)
def test_phase_shifter_never_amplifies(length, phase):
    sm = phase_shifter(WAVELENGTHS, length=length, phase=phase, loss_db_cm=0.5)
    t = sm.transmission("O1", "I1")
    assert np.all(t <= 1.0 + 1e-12)
    assert np.all(t >= 0.0)


@given(length=st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_waveguide_lossless_magnitude_one(length):
    sm = waveguide(WAVELENGTHS, length=length)
    assert np.allclose(np.abs(sm.s("O1", "I1")), 1.0)


@given(n=st.integers(min_value=2, max_value=6), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_decompositions_roundtrip_property(n, seed):
    unitary = random_unitary(n, seed=seed)
    assert is_unitary_matrix(unitary)
    for decompose in (clements_decomposition, reck_decomposition):
        decomposition = decompose(unitary)
        assert len(decomposition.placements) == n * (n - 1) // 2
        assert np.allclose(decomposition.reconstruct(), unitary, atol=1e-6)


@st.composite
def permutations_of_size(draw, sizes=(4, 8)):
    size = draw(st.sampled_from(sizes))
    return size, tuple(draw(st.permutations(range(size))))


@given(permutations_of_size())
@settings(max_examples=30, deadline=None)
def test_crossbar_routing_crosses_once_per_input(size_and_perm):
    size, perm = size_and_perm
    states = route_crossbar(size, perm)
    assert sum(1 for state in states.values() if state == "cross") == size


@given(permutations_of_size())
@settings(max_examples=30, deadline=None)
def test_benes_routing_constraints(size_and_perm):
    """The looping algorithm must produce a consistent switch assignment.

    Verified symbolically (without simulation): propagate each input through
    the recursive structure using the computed states and check it lands on
    the requested output terminal.
    """
    size, perm = size_and_perm
    states = route_benes(size, perm)
    root, _elements, connections = _build_structure(size)

    # Build a quick lookup: for each element and input port, which output port
    # does the configured state route to?
    def propagate(endpoint):
        # endpoint is an instance input endpoint "name,I1" / "name,I2"
        name, port = endpoint.split(",")
        state = states[name]
        if state == "bar":
            out_port = "O1" if port == "I1" else "O2"
        else:
            out_port = "O2" if port == "I1" else "O1"
        return f"{name},{out_port}"

    bidirectional = dict(connections)
    for terminal, out in enumerate(perm):
        endpoint = root.input_endpoints[terminal]
        for _ in range(100):
            out_endpoint = propagate(endpoint)
            if out_endpoint == root.output_endpoints[out]:
                break
            assert out_endpoint in bidirectional, (
                f"signal from input {terminal} leaked out at {out_endpoint}"
            )
            endpoint = bidirectional[out_endpoint]
        else:  # pragma: no cover - guards against infinite loops
            raise AssertionError("path did not terminate")


@given(permutations_of_size())
@settings(max_examples=30, deadline=None)
def test_spanke_benes_routing_sorts(size_and_perm):
    size, perm = size_and_perm
    states = route_spanke_benes(size, perm)
    assert len(states) == size * (size - 1) // 2


@given(
    n=st.integers(min_value=1, max_value=20),
    c=st.integers(min_value=0, max_value=20),
    k=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=100, deadline=None)
def test_pass_at_k_bounds_property(n, c, k):
    if c > n or k > n:
        return
    value = pass_at_k(n, c, k)
    assert 0.0 <= value <= 1.0
    if c == 0:
        assert value == 0.0
    if c == n:
        assert value == 1.0


@given(st.lists(st.text(min_size=0, max_size=12), min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_stable_seed_is_deterministic_and_in_range(parts):
    seed_a = _stable_seed(*parts)
    seed_b = _stable_seed(*parts)
    assert seed_a == seed_b
    assert 0 <= seed_a < 2**64
