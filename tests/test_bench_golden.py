"""Tests for golden designs and the golden-response store."""

import numpy as np
import pytest

from repro.bench import GoldenStore, get_problem, golden_response
from repro.bench.problems.interconnects import (
    WDM_CHANNEL_RADII,
    optical_hybrid_golden,
    qam64_modulator_golden,
    wdm_demux_golden,
)
from repro.bench.problems.optical_computing import NLS_ETA_CENTER, NLS_ETA_OUTER, nls_golden
from repro.sim import evaluate_netlist, is_unitary
from tests.conftest import TEST_NUM_WAVELENGTHS


class TestGoldenStore:
    def test_response_cached_in_memory(self, golden_store, mzi_ps_problem):
        first = golden_store.response_for(mzi_ps_problem)
        second = golden_store.response_for(mzi_ps_problem)
        assert first is second

    def test_response_by_name(self, golden_store):
        response = golden_store.response_for("mzm")
        assert set(response.ports) == {"I1", "O1"}

    def test_wavelength_grid_matches_band(self, golden_store):
        assert golden_store.wavelengths[0] == pytest.approx(1.510)
        assert golden_store.wavelengths[-1] == pytest.approx(1.590)

    def test_disk_persistence(self, tmp_path):
        store = GoldenStore(num_wavelengths=7, cache_dir=tmp_path)
        response = store.response_for("mzi_ps")
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        # A fresh store reloads from disk and matches.
        reloaded = GoldenStore(num_wavelengths=7, cache_dir=tmp_path).response_for("mzi_ps")
        for pair, spectrum in response.transmission.items():
            assert np.allclose(reloaded.transmission[pair], spectrum)

    def test_module_level_helper(self):
        response = golden_response("direct_modulator", num_wavelengths=TEST_NUM_WAVELENGTHS)
        assert response.wavelengths.size == TEST_NUM_WAVELENGTHS


class TestGoldenPhysics:
    def test_all_goldens_simulate(self, golden_store, suite):
        for problem in suite:
            response = golden_store.response_for(problem)
            for spectrum in response.transmission.values():
                assert np.all(np.isfinite(spectrum))
                # Gate-switch fabrics are idealised (finite extinction leakage
                # paths can interfere constructively), so allow a small margin
                # above unity instead of demanding strict passivity.
                assert np.all(spectrum <= 1.0 + 1e-2), problem.name

    def test_nls_uses_klm_reflectivities(self):
        netlist = nls_golden()
        couplings = [inst.settings["coupling"] for inst in netlist.instances.values()]
        assert couplings.count(pytest.approx(NLS_ETA_OUTER)) == 2
        assert couplings.count(pytest.approx(NLS_ETA_CENTER)) == 1

    def test_nls_is_unitary(self, wavelengths):
        assert is_unitary(evaluate_netlist(nls_golden(), wavelengths), atol=1e-8)

    def test_optical_hybrid_splits_power_evenly(self, single_wavelength):
        sm = evaluate_netlist(optical_hybrid_golden(), single_wavelength)
        for out in ("O1", "O2", "O3", "O4"):
            assert sm.transmission(out, "I1")[0] == pytest.approx(0.25, abs=1e-9)
            assert sm.transmission(out, "I2")[0] == pytest.approx(0.25, abs=1e-9)

    def test_wdm_demux_channels_separate(self):
        from repro.constants import default_wavelength_grid

        wl = default_wavelength_grid(401)
        sm = evaluate_netlist(wdm_demux_golden(), wl)
        peak_positions = [np.argmax(sm.transmission(f"O{k}", "I1")) for k in range(1, 5)]
        # Each channel drops at a different wavelength.
        assert len(set(peak_positions)) == 4
        assert len(WDM_CHANNEL_RADII) == 4

    def test_qam64_has_three_iq_stages(self):
        netlist = qam64_modulator_golden()
        mzm_count = sum(1 for inst in netlist.instances.values() if inst.component == "mzm")
        assert mzm_count == 6  # two MZMs per IQ stage, three stages
        assert netlist.num_instances() == 21

    def test_mesh_goldens_pass_all_power(self, golden_store):
        # With all MZIs at default settings the mesh is lossless: the column
        # sums of |S|^2 from any input over all outputs equal 1.
        response = golden_store.response_for("clements_4x4")
        for inp in (f"I{k}" for k in range(1, 5)):
            total = sum(
                response.transmission[(f"O{k}", inp)] for k in range(1, 5)
            )
            assert np.allclose(total, 1.0, atol=1e-8)

    def test_switch_fabric_golden_is_permutation_like(self, golden_store):
        # Default states route every input to exactly one output at full power.
        response = golden_store.response_for("benes_4x4")
        matrix = np.array(
            [
                [response.transmission[(f"O{o}", f"I{i}")][0] for i in range(1, 5)]
                for o in range(1, 5)
            ]
        )
        assert np.allclose(matrix.sum(axis=0), 1.0, atol=1e-6)
        assert np.allclose(matrix.max(axis=0), 1.0, atol=1e-6)
