"""Equivalence and plumbing tests for the solver backends (dense vs cascade).

The cascade backend must be numerically equivalent (<= 1e-9) to the dense
backend on every problem of every registered pack and on adversarial cyclic
topologies (rings, nested rings, self-coupled clusters); backend selection
must thread through the solver, the convenience API, the engine (with
backend-invariant cache keys) and the sweep configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.packs import pack_names, get_pack
from repro.engine.engine import EngineConfig, ExecutionEngine, default_engine
from repro.harness.cli import build_parser
from repro.harness.runner import SweepConfig
from repro.netlist import Instance, Netlist
from repro.sim import SOLVER_BACKENDS, CircuitSolver, evaluate_netlist
from repro.sim.cascade import strongly_connected_components
from repro.sim.circuit import default_solver

EQUIVALENCE_ATOL = 1e-9


def _max_abs_diff(a, b):
    """Largest absolute element-wise deviation between two S-matrices."""
    return float(np.max(np.abs(a.data - b.data))) if a.data.size else 0.0


def _registered_pack_problems():
    """One pytest param per problem of every registered pack (default params)."""
    params = []
    for pack_name in pack_names():
        for problem in get_pack(pack_name).build_problems():
            params.append(pytest.param(problem, id=f"{pack_name}:{problem.name}"))
    return params


def _ring_netlist():
    """All-pass ring: coupler + feedback waveguide (one loop)."""
    return Netlist(
        instances={
            "cp": Instance("coupler", {"coupling": 0.2}),
            "loop": Instance("waveguide", {"length": 31.4}),
        },
        connections={"cp,O2": "loop,I1", "loop,O1": "cp,I2"},
        ports={"I1": "cp,I1", "O1": "cp,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def _self_coupled_netlist():
    """A single coupler feeding itself: a one-instance feedback cluster."""
    return Netlist(
        instances={"cp": Instance("coupler", {"coupling": 0.3})},
        connections={"cp,O2": "cp,I2"},
        ports={"I1": "cp,I1", "O1": "cp,O1"},
        models={"coupler": "coupler"},
    )


def _nested_rings_netlist():
    """An outer loop that passes through a coupler carrying its own inner ring."""
    return Netlist(
        instances={
            "cpa": Instance("coupler", {"coupling": 0.2}),
            "cpb": Instance("coupler", {"coupling": 0.4}),
            "wga": Instance("waveguide", {"length": 40.0}),
            "wgb": Instance("waveguide", {"length": 25.0}),
        },
        connections={
            "cpa,O2": "cpb,I1",
            "cpb,O1": "wga,I1",
            "wga,O1": "cpa,I2",
            "cpb,O2": "wgb,I1",
            "wgb,O1": "cpb,I2",
        },
        ports={"I1": "cpa,I1", "O1": "cpa,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def _ring_chain_netlist():
    """Two independent all-pass rings in series: two feedback clusters."""
    return Netlist(
        instances={
            "cpA": Instance("coupler", {"coupling": 0.2}),
            "loopA": Instance("waveguide", {"length": 31.4}),
            "cpB": Instance("coupler", {"coupling": 0.1}),
            "loopB": Instance("waveguide", {"length": 62.8}),
        },
        connections={
            "cpA,O2": "loopA,I1",
            "loopA,O1": "cpA,I2",
            "cpA,O1": "cpB,I1",
            "cpB,O2": "loopB,I1",
            "loopB,O1": "cpB,I2",
        },
        ports={"I1": "cpA,I1", "O1": "cpB,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def _adddrop_ring_netlist():
    """Add/drop ring from two couplers and two half-loops (4-instance cluster)."""
    return Netlist(
        instances={
            "cin": Instance("coupler", {"coupling": 0.1}),
            "cout": Instance("coupler", {"coupling": 0.1}),
            "top": Instance("waveguide", {"length": 15.7}),
            "bot": Instance("waveguide", {"length": 15.7}),
        },
        connections={
            "cin,O2": "top,I1",
            "top,O1": "cout,I2",
            "cout,O2": "bot,I1",
            "bot,O1": "cin,I2",
        },
        ports={"I1": "cin,I1", "O1": "cin,O1", "I2": "cout,I1", "O2": "cout,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


CYCLIC_NETLISTS = {
    "ring": _ring_netlist,
    "self_coupled": _self_coupled_netlist,
    "nested_rings": _nested_rings_netlist,
    "ring_chain": _ring_chain_netlist,
    "adddrop_ring": _adddrop_ring_netlist,
}


class TestBackendEquivalence:
    @pytest.mark.parametrize("problem", _registered_pack_problems())
    def test_cascade_matches_dense_on_every_pack_problem(self, problem, wavelengths, solver):
        netlist = problem.golden_netlist()
        dense = solver.evaluate(
            netlist, wavelengths, port_spec=problem.port_spec, backend="dense"
        )
        cascade = solver.evaluate(
            netlist, wavelengths, port_spec=problem.port_spec, backend="cascade"
        )
        assert dense.ports == cascade.ports
        assert _max_abs_diff(dense, cascade) <= EQUIVALENCE_ATOL

    @pytest.mark.parametrize("name", sorted(CYCLIC_NETLISTS))
    def test_cascade_matches_dense_on_cyclic_topologies(self, name, wavelengths, solver):
        netlist = CYCLIC_NETLISTS[name]()
        dense = solver.evaluate(netlist, wavelengths, backend="dense")
        cascade = solver.evaluate(netlist, wavelengths, backend="cascade")
        assert _max_abs_diff(dense, cascade) <= EQUIVALENCE_ATOL

    def test_auto_matches_dense(self, wavelengths, solver):
        netlist = _ring_chain_netlist()
        auto = solver.evaluate(netlist, wavelengths, backend="auto")
        dense = solver.evaluate(netlist, wavelengths, backend="dense")
        assert _max_abs_diff(auto, dense) <= EQUIVALENCE_ATOL

    def test_lossless_ring_stays_allpass_under_cascade(self, wavelengths, solver):
        sm = solver.evaluate(_ring_netlist(), wavelengths, backend="cascade")
        assert np.allclose(sm.transmission("O1", "I1"), 1.0, atol=1e-9)


class TestCascadePlan:
    def test_feedforward_fabric_has_no_feedback_clusters(self, wavelengths, solver):
        from repro.bench import get_problem

        netlist = get_problem("spanke_8x8").golden_netlist()
        plan = solver.cascade_plan(netlist, wavelengths)
        assert plan.feedback == ()
        assert plan.num_feedback_ports == 0
        assert plan.largest_feedback_cluster == 0
        assert sum(len(c) for c in plan.components) == plan.num_ports

    def test_ring_produces_feedback_clusters(self, wavelengths, solver):
        # A reciprocal ring carries a forward and a backward signal-flow loop.
        plan = solver.cascade_plan(_ring_netlist(), wavelengths)
        assert len(plan.feedback) == 2
        assert plan.largest_feedback_cluster == 2

    def test_self_coupled_instance_is_a_singleton_cluster(self, wavelengths, solver):
        plan = solver.cascade_plan(_self_coupled_netlist(), wavelengths)
        assert all(len(component) == 1 for component in plan.feedback)
        assert len(plan.feedback) == 2

    def test_nested_rings_condense_into_larger_clusters(self, wavelengths, solver):
        plan = solver.cascade_plan(_nested_rings_netlist(), wavelengths)
        assert plan.largest_feedback_cluster >= 4

    def test_components_are_topologically_ordered(self, wavelengths, solver):
        # In a waveguide chain the outgoing wave of wg(k+1) depends on the
        # outgoing wave of wg(k), so the forward O1 ports must be scheduled
        # in strictly increasing chain order.
        lengths = [10.0, 15.0, 5.0, 20.0]
        instances = {
            f"wg{i + 1}": Instance("waveguide", {"length": length})
            for i, length in enumerate(lengths)
        }
        connections = {f"wg{i + 1},O1": f"wg{i + 2},I1" for i in range(len(lengths) - 1)}
        netlist = Netlist(
            instances=instances,
            connections=connections,
            ports={"I1": "wg1,I1", "O1": f"wg{len(lengths)},O1"},
            models={"waveguide": "waveguide"},
        )
        plan = solver.cascade_plan(netlist, wavelengths)
        position = {}
        for rank, component in enumerate(plan.components):
            for port in component:
                position[port] = rank
        # Flattened port order is (wg1.I1, wg1.O1, wg2.I1, wg2.O1, ...): the
        # O1 column of wg(k) is port index 2k + 1.
        forward_ranks = [position[2 * k + 1] for k in range(len(lengths))]
        assert forward_ranks == sorted(forward_ranks)
        assert len(set(forward_ranks)) == len(forward_ranks)


class TestSccAlgorithm:
    def test_known_graph(self):
        # 0 -> 1 -> 2 -> 0 is a cycle; 3 depends on the cycle; 4 is isolated.
        adjacency = [[1], [2], [0, 3], [], []]
        components = strongly_connected_components(adjacency)
        as_sets = [frozenset(c) for c in components]
        assert frozenset({0, 1, 2}) in as_sets
        # Reverse topological order: the dependent node 3 is emitted before
        # the cycle that feeds it.
        assert as_sets.index(frozenset({3})) < as_sets.index(frozenset({0, 1, 2}))

    def test_self_loop_is_singleton(self):
        components = strongly_connected_components([[0, 1], []])
        assert [sorted(c) for c in components] == [[1], [0]]

    def test_empty_graph(self):
        assert strongly_connected_components([]) == []


class TestBackendPlumbing:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            CircuitSolver(backend="bogus")

    def test_unknown_backend_rejected_at_evaluate(self, wavelengths, solver):
        with pytest.raises(ValueError, match="unknown solver backend"):
            solver.evaluate(_ring_netlist(), wavelengths, backend="bogus")

    def test_all_declared_backends_accepted(self, wavelengths):
        for backend in SOLVER_BACKENDS:
            CircuitSolver(backend=backend).evaluate(
                _ring_netlist(), wavelengths, backend=backend
            )

    def test_evaluate_netlist_reuses_module_default_solver(self, wavelengths):
        shared = default_solver()
        netlist = _ring_netlist()
        evaluate_netlist(netlist, wavelengths)
        hits_before = shared.instance_cache_stats().hits
        evaluate_netlist(netlist, wavelengths)
        assert default_solver() is shared
        # The second convenience call must hit the shared instance cache.
        assert shared.instance_cache_stats().hits >= hits_before + 2

    def test_evaluate_netlist_accepts_backend(self, wavelengths):
        dense = evaluate_netlist(_ring_netlist(), wavelengths, backend="dense")
        cascade = evaluate_netlist(_ring_netlist(), wavelengths, backend="cascade")
        assert _max_abs_diff(dense, cascade) <= EQUIVALENCE_ATOL

    def test_engine_cache_key_is_backend_invariant(self, wavelengths):
        netlist = _ring_netlist()
        dense_engine = ExecutionEngine(EngineConfig(solver_backend="dense"))
        cascade_engine = ExecutionEngine(EngineConfig(solver_backend="cascade"))
        assert dense_engine.simulation_key(netlist, wavelengths) == cascade_engine.simulation_key(
            netlist, wavelengths
        )
        dense_result = dense_engine.evaluate(netlist, wavelengths)
        cascade_result = cascade_engine.evaluate(netlist, wavelengths)
        assert _max_abs_diff(dense_result, cascade_result) <= EQUIVALENCE_ATOL

    def test_engine_threads_backend_to_solver(self):
        engine = default_engine(solver_backend="cascade")
        assert engine.solver.backend == "cascade"
        assert engine.config.solver_backend == "cascade"

    def test_sweep_config_threads_backend(self):
        config = SweepConfig(solver_backend="cascade")
        assert config.engine_config().solver_backend == "cascade"

    def test_cli_accepts_solver_backend(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--solver-backend", "cascade"])
        assert args.solver_backend == "cascade"

    def test_cli_rejects_unknown_solver_backend(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--solver-backend", "sparse-lu"])


class TestUnvalidatedEdgeCases:
    def test_multi_partner_port_falls_back_to_dense_semantics(self, wavelengths):
        # A port wired to two partners is invalid, but with validation off the
        # cascade backend must still agree with the legacy dense formulation.
        netlist = Netlist(
            instances={
                "sp": Instance("mmi1x2"),
                "a": Instance("waveguide", {"length": 10.0}),
                "b": Instance("waveguide", {"length": 20.0}),
            },
            connections={"sp,O1": "a,I1", "a,O1": "b,I1", "b,O1": "sp,O2"},
            ports={"I1": "sp,I1", "O1": "b,O1"},
            models={"mmi1x2": "mmi1x2", "waveguide": "waveguide"},
        )
        # Re-wire so one endpoint appears twice (two connections on a,O1).
        netlist.connections = {"sp,O1": "a,I1", "a,O1": "b,I1", "sp,O2": "a,O1"}
        netlist.ports = {"I1": "sp,I1", "O1": "b,O1"}
        solver = CircuitSolver(validate=False)
        dense = solver.evaluate(netlist, wavelengths, backend="dense")
        cascade = solver.evaluate(netlist, wavelengths, backend="cascade")
        assert _max_abs_diff(dense, cascade) <= EQUIVALENCE_ATOL

    def test_dangling_ports_supported_by_cascade(self, wavelengths, solver):
        netlist = Netlist(
            instances={"splitter": Instance("mmi1x2")},
            ports={"I1": "splitter,I1", "O1": "splitter,O1"},
            models={"mmi1x2": "mmi1x2"},
        )
        sm = solver.evaluate(netlist, wavelengths, backend="cascade")
        assert np.allclose(sm.transmission("O1", "I1"), 0.5)
