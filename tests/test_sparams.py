"""Tests for the SMatrix container and S-parameter helpers."""

import numpy as np
import pytest

from repro.sim.sparams import (
    SMatrix,
    is_reciprocal,
    is_unitary,
    power_transmission,
    sdict_to_smatrix,
)


@pytest.fixture
def simple_smatrix():
    wavelengths = np.linspace(1.51, 1.59, 5)
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): 0.5 + 0.5j})


class TestSMatrixConstruction:
    def test_shape_checks(self):
        wl = np.array([1.55])
        with pytest.raises(ValueError):
            SMatrix(wl, ("A", "B"), np.zeros((1, 3, 3)))

    def test_wavelength_axis_mismatch(self):
        with pytest.raises(ValueError):
            SMatrix(np.array([1.55, 1.56]), ("A",), np.zeros((1, 1, 1)))

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError):
            SMatrix(np.array([1.55]), ("A", "A"), np.zeros((1, 2, 2)))

    def test_2d_data_is_broadcast(self):
        sm = SMatrix(np.array([1.55, 1.56, 1.57]), ("A", "B"), np.eye(2))
        assert sm.data.shape == (3, 2, 2)

    def test_num_ports_and_wavelengths(self, simple_smatrix):
        assert simple_smatrix.num_ports == 2
        assert simple_smatrix.num_wavelengths == 5


class TestSMatrixAccess:
    def test_port_index_error_lists_ports(self, simple_smatrix):
        with pytest.raises(KeyError, match="I1"):
            simple_smatrix.port_index("missing")

    def test_s_and_transmission(self, simple_smatrix):
        s = simple_smatrix.s("O1", "I1")
        assert np.allclose(s, 0.5 + 0.5j)
        assert np.allclose(simple_smatrix.transmission("O1", "I1"), 0.5)

    def test_transmission_db(self, simple_smatrix):
        db = simple_smatrix.transmission_db("O1", "I1")
        assert np.allclose(db, 10 * np.log10(0.5))

    def test_transmission_db_floor(self, simple_smatrix):
        db = simple_smatrix.transmission_db("I1", "O1", floor=1e-12)
        # reciprocal fill means this is also 0.5, so check a genuinely zero path
        zero = simple_smatrix.transmission_db("I1", "I1", floor=1e-12)
        assert np.all(zero == pytest.approx(-120.0))
        assert np.all(np.isfinite(db))

    def test_to_sdict_roundtrip(self, simple_smatrix):
        sdict = simple_smatrix.to_sdict()
        assert set(sdict) == {(a, b) for a in ("I1", "O1") for b in ("I1", "O1")}
        assert np.allclose(sdict[("O1", "I1")], 0.5 + 0.5j)

    def test_at_wavelength_picks_nearest(self, simple_smatrix):
        matrix = simple_smatrix.at_wavelength(1.5501)
        assert matrix.shape == (2, 2)


class TestSMatrixTransforms:
    def test_renamed(self, simple_smatrix):
        renamed = simple_smatrix.renamed({"I1": "in0"})
        assert renamed.ports == ("in0", "O1")
        assert np.allclose(renamed.s("O1", "in0"), simple_smatrix.s("O1", "I1"))

    def test_reordered(self, simple_smatrix):
        reordered = simple_smatrix.reordered(["O1", "I1"])
        assert reordered.ports == ("O1", "I1")
        assert np.allclose(reordered.s("O1", "I1"), simple_smatrix.s("O1", "I1"))

    def test_reordered_requires_permutation(self, simple_smatrix):
        with pytest.raises(ValueError):
            simple_smatrix.reordered(["O1", "O1"])


class TestSdictToSmatrix:
    def test_reciprocal_fill(self):
        wl = np.array([1.55])
        sm = sdict_to_smatrix(wl, ("A", "B"), {("B", "A"): 1j})
        assert sm.s("A", "B")[0] == 1j

    def test_non_reciprocal(self):
        wl = np.array([1.55])
        sm = sdict_to_smatrix(wl, ("A", "B"), {("B", "A"): 1j}, reciprocal=False)
        assert sm.s("A", "B")[0] == 0

    def test_unknown_port_rejected(self):
        with pytest.raises(KeyError):
            sdict_to_smatrix(np.array([1.55]), ("A",), {("A", "Z"): 1.0})

    def test_spectrum_valued_entries(self):
        wl = np.linspace(1.51, 1.59, 4)
        spectrum = np.linspace(0, 1, 4)
        sm = sdict_to_smatrix(wl, ("A", "B"), {("B", "A"): spectrum})
        assert np.allclose(sm.s("B", "A"), spectrum)


class TestMatrixProperties:
    def test_is_reciprocal_true(self, simple_smatrix):
        assert is_reciprocal(simple_smatrix)

    def test_is_reciprocal_false(self):
        wl = np.array([1.55])
        sm = sdict_to_smatrix(wl, ("A", "B"), {("B", "A"): 1.0}, reciprocal=False)
        assert not is_reciprocal(sm)

    def test_is_unitary_identity(self):
        wl = np.array([1.55, 1.56])
        sm = SMatrix(wl, ("A", "B"), np.broadcast_to(np.eye(2), (2, 2, 2)).copy())
        assert is_unitary(sm)

    def test_is_unitary_lossy_false(self, simple_smatrix):
        assert not is_unitary(simple_smatrix)

    def test_power_transmission_dict(self, simple_smatrix):
        powers = power_transmission(simple_smatrix)
        assert powers[("O1", "I1")][0] == pytest.approx(0.5)
        assert powers[("I1", "I1")][0] == pytest.approx(0.0)
