"""Tests of the fault-injection framework and the retry policies.

Covers the :mod:`repro.faults` primitives (plans, rules, parsing,
determinism, retry/backoff) plus the cache seams they protect: transient
disk-read faults must be retried into misses, torn writes must be
quarantined, and injected write failures must degrade to cache-less
operation -- all without perturbing computed results.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.engine.cache import SimulationCache
from repro.faults import (
    FAULT_KINDS,
    FaultInjected,
    FaultPlan,
    FaultRule,
    INJECTION_POINTS,
    RetryPolicy,
    active_plan,
    clear_plan,
    fault_point,
    fault_stats,
    inject,
    install_plan,
    parse_plan,
    retry_call,
)
from repro.sim.sparams import SMatrix


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with injection disabled."""
    clear_plan()
    yield
    clear_plan()


def _smatrix(value: complex = 1 + 2j) -> SMatrix:
    wavelengths = np.linspace(1.5, 1.6, 5)
    data = np.full((5, 2, 2), value, dtype=complex)
    return SMatrix(wavelengths, ("I1", "O1"), data)


# ----------------------------------------------------------------------
# Rules and plans
# ----------------------------------------------------------------------
def test_registry_covers_production_seams():
    for point in (
        "cache.disk_read",
        "cache.disk_write",
        "procpool.unit",
        "store.write",
        "daemon.request",
        "lock.acquire",
        "solver.evaluate",
        "sweep.unit",
    ):
        assert point in INJECTION_POINTS


def test_rule_validation():
    with pytest.raises(ValueError):
        FaultRule("x", kind="explode")
    with pytest.raises(ValueError):
        FaultRule("")
    with pytest.raises(ValueError):
        FaultRule("x", probability=1.5)
    with pytest.raises(ValueError):
        FaultRule("x", after=-1)
    assert FaultRule("x").kind in FAULT_KINDS


def test_fault_point_without_plan_is_noop():
    assert active_plan() is None
    fault_point("cache.disk_read", key="k")  # must not raise
    assert fault_stats() == {}


def test_raise_kind_is_transient_oserror():
    with inject(FaultRule("p")):
        with pytest.raises(FaultInjected) as excinfo:
            fault_point("p")
    assert isinstance(excinfo.value, OSError)


def test_after_skips_leading_evaluations():
    with inject(FaultRule("p", after=2)) as plan:
        fault_point("p")
        fault_point("p")
        with pytest.raises(FaultInjected):
            fault_point("p")
    assert plan.stats()["p"] == {"evaluations": 3, "triggers": 1}


def test_max_triggers_bounds_injections():
    with inject(FaultRule("p", max_triggers=2)) as plan:
        for _ in range(2):
            with pytest.raises(FaultInjected):
                fault_point("p")
        fault_point("p")  # budget exhausted: passes through
    assert plan.stats()["p"]["triggers"] == 2


def test_probability_decisions_are_key_deterministic():
    def verdicts(seed: int) -> list:
        outcomes = []
        with inject(FaultRule("p", probability=0.5), seed=seed):
            for index in range(32):
                try:
                    fault_point("p", key=f"unit-{index}")
                    outcomes.append(False)
                except FaultInjected:
                    outcomes.append(True)
        return outcomes

    first, second = verdicts(7), verdicts(7)
    assert first == second  # same seed + keys -> same verdicts
    assert any(first) and not all(first)  # a real mix at p=0.5
    assert verdicts(8) != first  # the seed participates


def test_delay_kind_sleeps():
    start = time.monotonic()
    with inject(FaultRule("p", kind="delay", delay=0.05)):
        fault_point("p")
    assert time.monotonic() - start >= 0.05


def test_corrupt_kind_overwrites_target_file(tmp_path):
    target = tmp_path / "entry.npz"
    target.write_bytes(b"A" * 256)
    with inject(FaultRule("p", kind="corrupt")):
        fault_point("p", path=target)
    assert target.read_bytes() != b"A" * 256
    # Deterministic: the same plan writes the same junk.
    second = tmp_path / "other.npz"
    second.write_bytes(b"A" * 256)
    with inject(FaultRule("p", kind="corrupt")):
        fault_point("p", path=second)
    assert target.read_bytes()[:64] == second.read_bytes()[:64]


def test_inject_restores_previous_plan():
    outer = FaultPlan([FaultRule("outer")])
    install_plan(outer)
    with inject(FaultRule("inner")):
        assert active_plan().points() == ["inner"]
    assert active_plan() is outer
    clear_plan()
    with inject(FaultRule("inner")):
        pass
    assert active_plan() is None


# ----------------------------------------------------------------------
# REPRO_FAULTS parsing
# ----------------------------------------------------------------------
def test_parse_json_plan():
    plan = parse_plan(
        json.dumps(
            {
                "seed": 9,
                "rules": [
                    {"point": "procpool.unit", "kind": "kill", "max_triggers": 2}
                ],
            }
        )
    )
    assert plan.seed == 9
    (rule,) = plan.rules["procpool.unit"]
    assert rule.kind == "kill" and rule.max_triggers == 2


def test_parse_compact_plan():
    plan = parse_plan("seed=7;cache.disk_read=raise@0.25x3+2;sweep.unit=delay~0.5")
    assert plan.seed == 7
    (read_rule,) = plan.rules["cache.disk_read"]
    assert read_rule.kind == "raise"
    assert read_rule.probability == 0.25
    assert read_rule.max_triggers == 3
    assert read_rule.after == 2
    (sweep_rule,) = plan.rules["sweep.unit"]
    assert sweep_rule.kind == "delay" and sweep_rule.delay == 0.5


@pytest.mark.parametrize("text", ["", "bogus", "p=notakind", "p=raise@banana"])
def test_parse_rejects_malformed_plans(text):
    with pytest.raises((ValueError, json.JSONDecodeError)):
        parse_plan(text)


def test_env_var_installs_plan(monkeypatch):
    from repro import faults

    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "seed=3;p=raise")
    faults._install_from_env()
    assert active_plan().seed == 3
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "seed=;;;")
    with pytest.raises(ValueError):
        faults._install_from_env()


# ----------------------------------------------------------------------
# Retry policies
# ----------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


def test_retry_policy_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.5, jitter=0.25)
    delays = [policy.delay(i, seed="unit-3") for i in range(5)]
    assert delays == [policy.delay(i, seed="unit-3") for i in range(5)]
    assert delays != [policy.delay(i, seed="unit-4") for i in range(5)]
    for index, delay in enumerate(delays):
        base = min(0.5, 0.1 * 2.0**index)
        assert base <= delay <= base * 1.25


def test_retry_call_recovers_from_transient_errors():
    calls = {"n": 0}
    retried = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return "done"

    result = retry_call(
        flaky,
        policy=RetryPolicy(attempts=3, base_delay=0.0),
        on_retry=lambda attempt, error: retried.append(attempt),
        sleep=lambda _: None,
    )
    assert result == "done"
    assert calls["n"] == 3
    assert retried == [0, 1]


def test_retry_call_exhausts_budget():
    def always_failing():
        raise OSError("still broken")

    with pytest.raises(OSError, match="still broken"):
        retry_call(
            always_failing,
            policy=RetryPolicy(attempts=3, base_delay=0.0),
            sleep=lambda _: None,
        )


def test_retry_call_never_retries_permanent_errors():
    calls = {"n": 0}

    def permanent():
        calls["n"] += 1
        raise KeyError("not transient")

    with pytest.raises(KeyError):
        retry_call(permanent, policy=RetryPolicy(attempts=5), sleep=lambda _: None)
    assert calls["n"] == 1


# ----------------------------------------------------------------------
# Cache seams under injection
# ----------------------------------------------------------------------
def test_transient_disk_read_is_retried_into_a_hit(tmp_path):
    writer = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    writer.put("k", _smatrix())
    reader = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    with inject(FaultRule("cache.disk_read", max_triggers=1)):
        entry = reader.get("k")
    assert entry is not None
    assert np.all(entry.data == _smatrix().data)
    assert reader.stats.disk_retries == 1
    assert reader.stats.disk_corrupt == 0


def test_exhausted_disk_read_retries_degrade_to_a_miss(tmp_path):
    writer = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    writer.put("k", _smatrix())
    reader = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    with inject(FaultRule("cache.disk_read")):
        assert reader.get("k") is None  # miss, not an exception
    # The entry itself was never harmed: a calm read still hits.
    assert SimulationCache(max_entries=4, cache_dir=str(tmp_path)).get("k") is not None


def test_torn_write_is_quarantined_on_read(tmp_path):
    writer = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    with inject(FaultRule("cache.disk_write", kind="corrupt")):
        writer.put("k", _smatrix())
    reader = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    assert reader.get("k") is None
    assert reader.stats.disk_corrupt == 1
    quarantined = list(tmp_path.glob("*.corrupt"))
    assert len(quarantined) == 1
    assert not list(tmp_path.glob("*.npz"))  # the bad entry was moved aside
    # A rewrite of the key repopulates the cache cleanly.
    writer.put("k", _smatrix(3 + 0j))
    fresh = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    entry = fresh.get("k")
    assert entry is not None and np.all(entry.data == 3 + 0j)


def test_injected_write_failure_degrades_to_cacheless(tmp_path):
    cache = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    with inject(FaultRule("cache.disk_write")):
        cache.put("k", _smatrix())  # must not raise
    assert not list(tmp_path.glob("*.npz"))
    assert cache.stats.disk_retries >= 1
    # Memory tier still serves the entry.
    assert cache.get("k") is not None


def test_transient_write_fault_is_retried_through(tmp_path):
    cache = SimulationCache(max_entries=4, cache_dir=str(tmp_path))
    with inject(FaultRule("cache.disk_write", max_triggers=1)):
        cache.put("k", _smatrix())
    assert cache.stats.disk_retries == 1
    assert SimulationCache(max_entries=4, cache_dir=str(tmp_path)).get("k") is not None
