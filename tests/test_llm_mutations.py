"""Tests for the error-injection mutation operators.

The key invariant: applying the operator of Table II category ``X`` to a valid
golden design must make the evaluation pipeline fail with category ``X``
(checked end to end through parse -> validate -> simulate).
"""

import numpy as np
import pytest

from repro.bench import get_problem
from repro.evalkit import as_picbench_error
from repro.llm import apply_functional_mutation, apply_syntax_mutation
from repro.llm.mutations import SYNTAX_MUTATORS
from repro.netlist import ErrorCategory, parse_netlist_text, validate_netlist
from repro.sim import compare_responses, evaluate_netlist


PROBLEMS_FOR_MUTATION = ["mzi_ps", "optical_hybrid", "benes_4x4", "wdm_demux"]


def evaluate_text(problem, text, wavelengths):
    """Run the syntax part of the evaluation pipeline on raw netlist text."""
    netlist = parse_netlist_text(text, strict=True)
    validate_netlist(netlist, port_spec=problem.port_spec)
    return evaluate_netlist(netlist, wavelengths, port_spec=problem.port_spec)


class TestSyntaxMutators:
    def test_all_categories_have_mutators(self):
        expected = {c for c in ErrorCategory if c is not ErrorCategory.FUNCTIONAL}
        assert set(SYNTAX_MUTATORS) == expected

    @pytest.mark.parametrize("problem_name", PROBLEMS_FOR_MUTATION)
    @pytest.mark.parametrize(
        "category",
        [c for c in ErrorCategory if c is not ErrorCategory.FUNCTIONAL],
    )
    def test_mutation_triggers_matching_category(self, problem_name, category, wavelengths):
        problem = get_problem(problem_name)
        rng = np.random.default_rng(7)
        result = apply_syntax_mutation(problem.golden_netlist(), category, rng)
        text = result.netlist.to_json()
        if result.text_wrapper is not None:
            text = result.text_wrapper(text)
        with pytest.raises(Exception) as excinfo:
            evaluate_text(problem, text, wavelengths)
        assert as_picbench_error(excinfo.value).category is category

    def test_unknown_category_rejected(self, mzi_ps_problem):
        with pytest.raises(ValueError):
            apply_syntax_mutation(
                mzi_ps_problem.golden_netlist(),
                ErrorCategory.FUNCTIONAL,
                np.random.default_rng(0),
            )

    def test_mutation_does_not_modify_input(self, mzi_ps_problem):
        golden = mzi_ps_problem.golden_netlist()
        before = golden.to_json()
        apply_syntax_mutation(golden, ErrorCategory.WRONG_PORT, np.random.default_rng(1))
        assert golden.to_json() == before


class TestFunctionalMutation:
    @pytest.mark.parametrize("problem_name", PROBLEMS_FOR_MUTATION + ["spanke_4x4", "qam8_modulator"])
    def test_functional_mutation_keeps_syntax_valid(self, problem_name, wavelengths):
        problem = get_problem(problem_name)
        mutated = apply_functional_mutation(problem.golden_netlist(), np.random.default_rng(3))
        validate_netlist(mutated, port_spec=problem.port_spec)
        evaluate_netlist(mutated, wavelengths, port_spec=problem.port_spec)

    @pytest.mark.parametrize("problem_name", PROBLEMS_FOR_MUTATION)
    def test_functional_mutation_changes_response(self, problem_name, wavelengths):
        problem = get_problem(problem_name)
        golden_sm = evaluate_netlist(problem.golden_netlist(), wavelengths)
        mutated = apply_functional_mutation(problem.golden_netlist(), np.random.default_rng(5))
        mutated_sm = evaluate_netlist(mutated, wavelengths)
        assert not compare_responses(mutated_sm, golden_sm).passed

    def test_functional_mutation_deterministic_given_rng(self, mzi_ps_problem):
        a = apply_functional_mutation(mzi_ps_problem.golden_netlist(), np.random.default_rng(11))
        b = apply_functional_mutation(mzi_ps_problem.golden_netlist(), np.random.default_rng(11))
        assert a.to_json() == b.to_json()
