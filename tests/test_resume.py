"""Tests of sweep checkpointing and kill/resume byte-identity.

The journal (:mod:`repro.harness.journal`) must checkpoint every completed
trajectory durably, key itself by the sweep's *semantic* fingerprint only,
survive torn trailing writes, and let a killed run resume -- in any
execution mode -- computing exactly the missing units while reproducing
the uninterrupted report byte for byte.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.evalkit.outcome import AttemptRecord, SampleResult
from repro.faults import FaultRule, clear_plan, inject
from repro.harness.journal import SweepJournal, sweep_fingerprint, unit_key
from repro.harness.runner import SweepConfig, run_model
from repro.llm.simulated import SimulatedDesigner
from repro.netlist.errors import ErrorCategory

#: Mirrors ``tests/conftest.TEST_NUM_WAVELENGTHS`` (not importable by module
#: name here: ``benchmarks/conftest.py`` shadows it in full-repo runs).
TEST_NUM_WAVELENGTHS = 11

SRC = str(Path(__file__).resolve().parent.parent / "src")

BASE = dict(
    samples_per_problem=3,
    max_feedback_iterations=1,
    num_wavelengths=TEST_NUM_WAVELENGTHS,
    problems=("mzi_ps",),
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def _report(config: SweepConfig) -> str:
    report = run_model(
        SimulatedDesigner("GPT-4o"), include_restrictions=False, config=config
    )
    return json.dumps(report.to_dict(), sort_keys=True)


def _journal_lines(journal_dir: Path) -> list:
    (path,) = list(journal_dir.glob("sweep-*.jsonl"))
    return path.read_text(encoding="utf-8").splitlines()


# ----------------------------------------------------------------------
# Semantic fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_ignores_performance_and_robustness_knobs(tmp_path):
    base = SweepConfig(**BASE)
    fingerprint = sweep_fingerprint(base, ("GPT-4o",), (False,))
    for variant in (
        replace(base, workers=4),
        replace(base, batch_size=8),
        replace(base, execution_mode="process", processes=2),
        replace(base, retry_attempts=5, retry_backoff=0.7),
        replace(base, unit_timeout=12.0),
        replace(base, cache_dir=str(tmp_path)),
        replace(base, journal_dir=str(tmp_path), resume=True),
        replace(base, solver_backend="dense"),
    ):
        assert sweep_fingerprint(variant, ("GPT-4o",), (False,)) == fingerprint


def test_fingerprint_tracks_semantic_fields():
    base = SweepConfig(**BASE)
    fingerprint = sweep_fingerprint(base, ("GPT-4o",), (False,))
    assert sweep_fingerprint(replace(base, base_seed=1), ("GPT-4o",), (False,)) != fingerprint
    assert (
        sweep_fingerprint(replace(base, samples_per_problem=4), ("GPT-4o",), (False,))
        != fingerprint
    )
    assert (
        sweep_fingerprint(replace(base, problems=("nls",)), ("GPT-4o",), (False,))
        != fingerprint
    )
    assert sweep_fingerprint(base, ("Claude35",), (False,)) != fingerprint
    assert sweep_fingerprint(base, ("GPT-4o",), (True,)) != fingerprint


# ----------------------------------------------------------------------
# Journal file mechanics
# ----------------------------------------------------------------------
def _sample(problem: str = "mzi_ps", index: int = 0) -> SampleResult:
    sample = SampleResult(problem=problem, sample_index=index)
    sample.attempts.append(
        AttemptRecord(
            iteration=0,
            syntax_ok=True,
            functional_ok=False,
            error_category=ErrorCategory.FUNCTIONAL,
            error_detail="crosstalk -3.1 dB above spec",
            response_text="netlist: ...",
        )
    )
    sample.attempts.append(
        AttemptRecord(iteration=1, syntax_ok=True, functional_ok=True)
    )
    return sample


def test_journal_round_trip_preserves_report_surface(tmp_path):
    journal = SweepJournal(tmp_path, "deadbeef")
    key = unit_key(False, "GPT-4o", "mzi_ps", 0)
    with journal:
        journal.record(key, _sample())
    loaded = SweepJournal(tmp_path, "deadbeef").load()
    assert set(loaded) == {key}
    restored = loaded[key]
    original = _sample()
    assert len(restored.attempts) == len(original.attempts)
    for restored_attempt, original_attempt in zip(restored.attempts, original.attempts):
        assert restored_attempt.iteration == original_attempt.iteration
        assert restored_attempt.syntax_ok == original_attempt.syntax_ok
        assert restored_attempt.functional_ok == original_attempt.functional_ok
        assert restored_attempt.error_category == original_attempt.error_category
        assert restored_attempt.error_detail == original_attempt.error_detail
        # Response texts are dropped, mirroring EvalReport.to_dict().
        assert restored_attempt.response_text is None


def test_journal_tolerates_torn_trailing_line(tmp_path):
    journal = SweepJournal(tmp_path, "deadbeef")
    with journal:
        journal.record(unit_key(False, "GPT-4o", "mzi_ps", 0), _sample(index=0))
        journal.record(unit_key(False, "GPT-4o", "mzi_ps", 1), _sample(index=1))
    with journal.path.open("a", encoding="utf-8") as handle:
        handle.write('{"with_restrictions": false, "model": "GP')  # SIGKILL shape
    loaded = SweepJournal(tmp_path, "deadbeef").load()
    assert len(loaded) == 2


def test_journal_rejects_mid_file_corruption(tmp_path):
    journal = SweepJournal(tmp_path, "deadbeef")
    with journal:
        journal.record(unit_key(False, "GPT-4o", "mzi_ps", 0), _sample(index=0))
        journal.record(unit_key(False, "GPT-4o", "mzi_ps", 1), _sample(index=1))
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    lines[0] = lines[0][:20]
    journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(ValueError, match="corrupt at line 1"):
        SweepJournal(tmp_path, "deadbeef").load()


def test_missing_journal_loads_empty_and_discard_is_idempotent(tmp_path):
    journal = SweepJournal(tmp_path, "deadbeef")
    assert journal.load() == {}
    journal.discard()
    journal.discard()


# ----------------------------------------------------------------------
# Checkpointed runs (thread tier, in-process)
# ----------------------------------------------------------------------
def test_journaled_run_is_byte_identical_and_complete(tmp_path):
    golden = _report(SweepConfig(**BASE))
    journaled = _report(SweepConfig(**BASE, journal_dir=str(tmp_path)))
    assert journaled == golden
    assert len(_journal_lines(tmp_path)) == BASE["samples_per_problem"]


def test_resume_serves_every_unit_from_the_journal(tmp_path):
    golden = _report(SweepConfig(**BASE, journal_dir=str(tmp_path)))
    # kill-on-first-unit plan: if the resumed run evaluated even one unit,
    # the injected kill would take the whole test process down.
    with inject(FaultRule("sweep.unit", kind="kill")):
        resumed = _report(SweepConfig(**BASE, journal_dir=str(tmp_path), resume=True))
    assert resumed == golden


def test_journaled_batched_run_is_byte_identical(tmp_path):
    golden = _report(SweepConfig(**BASE))
    batched = SweepConfig(**BASE, batch_size=4, journal_dir=str(tmp_path))
    assert _report(batched) == golden
    with inject(FaultRule("sweep.unit", kind="kill")):
        assert _report(replace(batched, resume=True)) == golden


def test_without_resume_a_stale_journal_is_discarded(tmp_path):
    _report(SweepConfig(**BASE, journal_dir=str(tmp_path)))
    journal_path = next(tmp_path.glob("sweep-*.jsonl"))
    first = journal_path.read_text(encoding="utf-8")
    _report(SweepConfig(**BASE, journal_dir=str(tmp_path), resume=False))
    assert journal_path.read_text(encoding="utf-8") == first  # rewritten, not appended


def test_process_mode_resumes_a_thread_mode_journal(tmp_path):
    golden = _report(SweepConfig(**BASE, journal_dir=str(tmp_path)))
    process_config = SweepConfig(
        **BASE,
        execution_mode="process",
        processes=2,
        journal_dir=str(tmp_path),
        resume=True,
    )
    # Same semantic fingerprint despite the mode switch: every unit is
    # served from the journal and the report bytes match.
    with inject(FaultRule("sweep.unit", kind="kill")):
        assert _report(process_config) == golden


# ----------------------------------------------------------------------
# Kill and resume (subprocess: the injected kill is a real process death)
# ----------------------------------------------------------------------
_KILL_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.harness.runner import SweepConfig, run_model
from repro.llm.simulated import SimulatedDesigner

config = SweepConfig(
    samples_per_problem=3, max_feedback_iterations=1, num_wavelengths={nwl},
    problems=("mzi_ps",), journal_dir={journal_dir!r}, resume=True,
)
run_model(SimulatedDesigner("GPT-4o"), include_restrictions=False, config=config)
raise SystemExit("the injected kill never fired")
"""


def test_killed_run_resumes_byte_identically(tmp_path):
    golden = _report(SweepConfig(**BASE))
    env = dict(os.environ)
    env["REPRO_FAULTS"] = "sweep.unit=kill+1"
    env["PYTHONPATH"] = SRC
    child = subprocess.run(
        [
            sys.executable,
            "-c",
            _KILL_CHILD.format(
                src=SRC, nwl=TEST_NUM_WAVELENGTHS, journal_dir=str(tmp_path)
            ),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert child.returncode == 73, child.stdout + child.stderr
    assert len(_journal_lines(tmp_path)) == 1  # exactly one unit checkpointed
    resumed = _report(SweepConfig(**BASE, journal_dir=str(tmp_path), resume=True))
    assert resumed == golden
    assert len(_journal_lines(tmp_path)) == BASE["samples_per_problem"]
    # A second resume finds a complete journal and recomputes nothing.
    with inject(FaultRule("sweep.unit", kind="kill")):
        assert _report(SweepConfig(**BASE, journal_dir=str(tmp_path), resume=True)) == golden
