"""Property-based tests on netlist serialisation, validation and evaluation.

These use hypothesis to generate random-but-well-formed circuits (chains and
small trees of two-port / three-port devices) and check the library's
end-to-end invariants: JSON round-trips are lossless, valid netlists always
validate and simulate, and simulated responses are physically sensible.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    Instance,
    Netlist,
    compose_netlists,
    parse_netlist_text,
    prefix_netlist,
    validate_netlist,
)
from repro.sim import evaluate_netlist

WAVELENGTHS = np.linspace(1.51, 1.59, 5)

#: Two-port components usable in a randomly generated chain, plus a strategy
#: for a settings dictionary each supports.
_TWO_PORT_COMPONENTS = {
    "waveguide": {"length": st.floats(min_value=0.0, max_value=200.0, allow_nan=False)},
    "phase_shifter": {"phase": st.floats(min_value=-3.14, max_value=3.14, allow_nan=False)},
    "attenuator": {"attenuation_db": st.floats(min_value=0.0, max_value=30.0, allow_nan=False)},
    "eam": {"attenuation_db": st.floats(min_value=0.0, max_value=20.0, allow_nan=False)},
    "mzi": {"delta_length": st.floats(min_value=0.0, max_value=50.0, allow_nan=False)},
    "mrr_allpass": {"coupling": st.floats(min_value=0.05, max_value=0.95, allow_nan=False)},
}


@st.composite
def chain_netlists(draw) -> Netlist:
    """A random chain of 1..6 two-port devices with random settings."""
    length = draw(st.integers(min_value=1, max_value=6))
    instances = {}
    connections = {}
    models = {}
    previous = None
    for index in range(length):
        component = draw(st.sampled_from(sorted(_TWO_PORT_COMPONENTS)))
        settings_strategies = _TWO_PORT_COMPONENTS[component]
        use_settings = draw(st.booleans())
        settings = (
            {name: draw(strategy) for name, strategy in settings_strategies.items()}
            if use_settings
            else {}
        )
        name = f"dev{index + 1}"
        instances[name] = Instance(component, settings)
        models[component] = component
        if previous is not None:
            connections[f"{previous},O1"] = f"{name},I1"
        previous = name
    ports = {"I1": "dev1,I1", "O1": f"dev{length},O1"}
    return Netlist(instances=instances, connections=connections, ports=ports, models=models)


@given(chain_netlists())
@settings(max_examples=40, deadline=None)
def test_random_chain_validates_and_simulates(netlist):
    validate_netlist(netlist)
    smatrix = evaluate_netlist(netlist, WAVELENGTHS)
    transmission = smatrix.transmission("O1", "I1")
    assert np.all(np.isfinite(transmission))
    assert np.all(transmission <= 1.0 + 1e-9)
    assert np.all(transmission >= 0.0)
    # No reflections are modelled, so the return loss is infinite.
    assert np.allclose(smatrix.transmission("I1", "I1"), 0.0)


@given(chain_netlists())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_is_lossless(netlist):
    rebuilt = parse_netlist_text(netlist.to_json(), strict=True)
    assert rebuilt.to_dict() == netlist.to_dict()
    # The round-tripped netlist simulates to the same response.
    original = evaluate_netlist(netlist, WAVELENGTHS)
    recovered = evaluate_netlist(rebuilt, WAVELENGTHS)
    assert np.allclose(original.data, recovered.data)


@given(chain_netlists(), st.sampled_from(["left", "right", "stage"]))
@settings(max_examples=25, deadline=None)
def test_prefixing_preserves_response(netlist, prefix):
    prefixed = prefix_netlist(netlist, prefix)
    validate_netlist(prefixed)
    assert np.allclose(
        evaluate_netlist(netlist, WAVELENGTHS).transmission("O1", "I1"),
        evaluate_netlist(prefixed, WAVELENGTHS).transmission("O1", "I1"),
    )


@given(chain_netlists(), chain_netlists())
@settings(max_examples=20, deadline=None)
def test_composition_of_chains_multiplies_transmission(first, second):
    composed = compose_netlists(
        {"head": first, "tail": second},
        links={"head:O1": "tail:I1"},
        ports={"I1": "head:I1", "O1": "tail:O1"},
    )
    validate_netlist(composed)
    t_head = evaluate_netlist(first, WAVELENGTHS).transmission("O1", "I1")
    t_tail = evaluate_netlist(second, WAVELENGTHS).transmission("O1", "I1")
    t_link = evaluate_netlist(composed, WAVELENGTHS).transmission("O1", "I1")
    assert np.allclose(t_link, t_head * t_tail, atol=1e-9)
