"""Tests for structural netlist validation (the Table II taxonomy)."""

import pytest

from repro.bench.problems.fundamental import mzi_ps_golden
from repro.bench.problems.interconnects import optical_hybrid_golden
from repro.netlist import (
    BadComponentNameError,
    BoundIOPortError,
    DanglingPortError,
    DuplicateConnectionError,
    ErrorCategory,
    Instance,
    InstancesModelsConfusedError,
    Netlist,
    OtherSyntaxError,
    PortSpec,
    UndefinedModelError,
    WrongPortCountError,
    WrongPortError,
    collect_violations,
    validate_netlist,
)


@pytest.fixture
def golden():
    return mzi_ps_golden()


class TestValidNetlists:
    def test_golden_passes(self, golden):
        validate_netlist(golden)

    def test_golden_passes_with_port_spec(self, golden):
        validate_netlist(golden, port_spec=PortSpec(1, 1))

    def test_collect_violations_empty_for_golden(self, golden):
        assert collect_violations(golden) == []

    def test_implicit_model_reference_accepted(self):
        # An instance whose component name is itself a registry model does not
        # need an explicit models entry (SAX resolves these directly too).
        netlist = Netlist(
            instances={"wg": Instance("waveguide")},
            ports={"I1": "wg,I1", "O1": "wg,O1"},
        )
        validate_netlist(netlist)


class TestInstanceNames:
    def test_underscore_rejected(self, golden):
        golden.instances["phase_shifter1"] = golden.instances.pop("phaseShifter")
        with pytest.raises(BadComponentNameError):
            validate_netlist(golden)

    def test_comma_rejected(self, golden):
        golden.instances["bad,name"] = Instance("waveguide")
        with pytest.raises(BadComponentNameError):
            validate_netlist(golden)

    def test_leading_digit_rejected(self, golden):
        golden.instances["1mmi"] = Instance("mmi1x2")
        with pytest.raises(BadComponentNameError):
            validate_netlist(golden)

    def test_empty_netlist_rejected(self):
        with pytest.raises(OtherSyntaxError, match="no instances"):
            validate_netlist(Netlist())


class TestModelsSection:
    def test_undefined_model_reference(self, golden):
        golden.models["waveguide"] = "wire"
        with pytest.raises(UndefinedModelError):
            validate_netlist(golden)

    def test_component_without_model(self, golden):
        golden.instances["mystery"] = Instance("unobtainium")
        with pytest.raises(UndefinedModelError):
            validate_netlist(golden)

    def test_non_string_model_value(self, golden):
        golden.models["waveguide"] = {"component": "waveguide"}
        with pytest.raises(InstancesModelsConfusedError):
            validate_netlist(golden)

    def test_inverted_models_section(self):
        # models written as {"<ref>": "<component>"} with distinct alias names.
        netlist = Netlist(
            instances={"wg": Instance("myWaveguide")},
            ports={"I1": "wg,I1", "O1": "wg,O1"},
            models={"waveguide": "myWaveguide"},
        )
        with pytest.raises(InstancesModelsConfusedError):
            validate_netlist(netlist)


class TestPorts:
    def test_missing_ports_section(self, golden):
        golden.ports = {}
        with pytest.raises(WrongPortCountError):
            validate_netlist(golden)

    def test_wrong_port_count_against_spec(self, golden):
        del golden.ports["O1"]
        with pytest.raises(WrongPortCountError):
            validate_netlist(golden, port_spec=PortSpec(1, 1))
        # without a spec, a missing output is not flagged as a count problem
        validate_netlist(golden)

    def test_off_convention_port_name(self, golden):
        golden.ports["result"] = golden.ports.pop("O1")
        with pytest.raises(WrongPortCountError):
            validate_netlist(golden, port_spec=PortSpec(1, 1))

    def test_port_on_unknown_instance(self, golden):
        golden.ports["O1"] = "ghost,O1"
        with pytest.raises(DanglingPortError):
            validate_netlist(golden)

    def test_port_on_unknown_port(self, golden):
        golden.ports["O1"] = "mmi2,O9"
        with pytest.raises(WrongPortError):
            validate_netlist(golden)

    def test_two_external_ports_same_endpoint(self, golden):
        golden.ports["O2"] = golden.ports["O1"]
        with pytest.raises(DuplicateConnectionError):
            validate_netlist(golden)


class TestConnections:
    def test_duplicate_connection(self, golden):
        golden.connections["mmi1,O1"] = "mmi2,I1"  # mmi2,I1 already used
        with pytest.raises(DuplicateConnectionError):
            validate_netlist(golden)

    def test_connection_to_unknown_instance(self, golden):
        golden.connections["phaseShifter,O1"] = "ghost,I1"
        with pytest.raises((DanglingPortError, DuplicateConnectionError)):
            validate_netlist(golden)

    def test_connection_to_unknown_port(self, golden):
        golden.connections["waveBottom,O1"] = "mmi2,I7"
        with pytest.raises((WrongPortError, DuplicateConnectionError)):
            validate_netlist(golden)

    def test_bound_io_port(self, golden):
        golden.connections["mmi1,I1"] = "waveBottom,I1"
        violations = collect_violations(golden)
        categories = {type(v) for v in violations}
        assert BoundIOPortError in categories

    def test_self_connection(self):
        netlist = Netlist(
            instances={"splitter": Instance("mmi1x2")},
            connections={"splitter,O2": "splitter,O2"},
            ports={"I1": "splitter,I1", "O1": "splitter,O1"},
            models={"mmi1x2": "mmi1x2"},
        )
        with pytest.raises(DuplicateConnectionError):
            validate_netlist(netlist)

    def test_malformed_endpoint(self, golden):
        golden.connections["justoneword"] = "mmi2,I2"
        violations = collect_violations(golden)
        assert any(isinstance(v, OtherSyntaxError) for v in violations)


class TestCollectViolations:
    def test_multiple_violations_reported(self, golden):
        golden.models["waveguide"] = "wire"
        golden.connections["phaseShifter,O1"] = "ghost,I1"
        violations = collect_violations(golden)
        assert len(violations) >= 2
        categories = {v.category for v in violations}
        assert ErrorCategory.UNDEFINED_MODEL in categories

    def test_first_violation_raised(self, golden):
        golden.instances["bad_name"] = Instance("waveguide")
        golden.models["waveguide"] = "wire"
        with pytest.raises(BadComponentNameError):
            validate_netlist(golden)

    def test_every_violation_is_syntax_category(self, golden):
        golden.models["waveguide"] = "wire"
        for violation in collect_violations(golden):
            assert violation.category.is_syntax
