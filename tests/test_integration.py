"""End-to-end integration tests crossing all package boundaries."""

import numpy as np
import pytest

from repro.bench import GoldenStore, all_problems, get_problem
from repro.evalkit import EvaluationConfig, Evaluator
from repro.harness import SweepConfig, run_sweep, table3_text, table4_text
from repro.llm import DEFAULT_PROFILES, PerfectDesigner, SimulatedDesigner
from repro.meshes import clements_mesh_netlist, random_unitary
from repro.netlist import parse_netlist_text, validate_netlist
from repro.prompts import build_system_prompt
from repro.sim import compare_responses, evaluate_netlist
from repro.switching import build_fabric, route_fabric
from tests.conftest import TEST_NUM_WAVELENGTHS


class TestFullSuitePerfectDesigner:
    def test_every_problem_passes_with_golden_answer(self, golden_store, suite):
        """The evaluation plumbing accepts the expert solution of all 24 problems."""
        config = EvaluationConfig(
            samples_per_problem=1,
            max_feedback_iterations=0,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
        )
        evaluator = Evaluator(config, golden_store=golden_store)
        report = evaluator.run_suite(PerfectDesigner(), suite)
        assert report.pass_at_k(1, metric="syntax", max_feedback=0) == pytest.approx(100.0)
        assert report.pass_at_k(1, metric="functional", max_feedback=0) == pytest.approx(100.0)


class TestGoldenNetlistsSerialisationRoundtrip:
    def test_json_roundtrip_preserves_response(self, golden_store, suite):
        """Serialising a golden netlist to JSON and re-parsing does not change it."""
        for problem in suite[:8]:
            netlist = parse_netlist_text(problem.golden_netlist().to_json(), strict=True)
            validate_netlist(netlist, port_spec=problem.port_spec)
            smatrix = golden_store.solver.evaluate(netlist, golden_store.wavelengths)
            assert compare_responses(smatrix, golden_store.response_for(problem)).passed


class TestMiniSweepShapes:
    """A miniature Tables III/IV sweep must reproduce the paper's key trends."""

    @pytest.fixture(scope="class")
    def sweep(self):
        config = SweepConfig(
            samples_per_problem=3,
            max_feedback_iterations=3,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            problems=(
                "mzi_ps",
                "mzm",
                "direct_modulator",
                "optical_hybrid",
                "os_2x2",
                "nls",
                "umatrix_block",
                "wdm_demux",
            ),
        )
        return run_sweep(config, profiles=DEFAULT_PROFILES)

    def test_functional_never_exceeds_syntax(self, sweep):
        for report in sweep.reports.values():
            for k in (1, 3):
                for ef in (0, 1, 3):
                    assert report.pass_at_k(k, metric="functional", max_feedback=ef) <= (
                        report.pass_at_k(k, metric="syntax", max_feedback=ef) + 1e-9
                    )

    def test_feedback_monotonically_improves(self, sweep):
        for report in sweep.reports.values():
            scores = [report.pass_at_k(1, metric="syntax", max_feedback=ef) for ef in (0, 1, 3)]
            assert scores[0] <= scores[1] + 1e-9
            assert scores[1] <= scores[2] + 1e-9

    def test_passk_monotone_in_k(self, sweep):
        for report in sweep.reports.values():
            assert report.pass_at_k(3, metric="syntax", max_feedback=0) >= report.pass_at_k(
                1, metric="syntax", max_feedback=0
            )

    def test_restrictions_improve_average_syntax(self, sweep):
        """Averaged over models, restrictions raise the zero-feedback syntax rate."""
        without, with_ = [], []
        for (model, restricted), report in sweep.reports.items():
            score = report.pass_at_k(1, metric="syntax", max_feedback=0)
            (with_ if restricted else without).append(score)
        assert np.mean(with_) > np.mean(without)

    def test_tables_render_from_sweep(self, sweep):
        assert "TABLE III" in table3_text(sweep)
        assert "TABLE IV" in table4_text(sweep)


class TestProgrammedMeshAgainstBenchmarkEvaluation:
    def test_programmed_mesh_differs_from_structural_golden(self, golden_store):
        """A programmed (non-default) mesh is functionally different from the golden."""
        problem = get_problem("clements_4x4")
        programmed = clements_mesh_netlist(4, random_unitary(4, seed=3))
        smatrix = golden_store.solver.evaluate(programmed, golden_store.wavelengths)
        assert not compare_responses(smatrix, golden_store.response_for(problem)).passed


class TestSwitchFabricScenario:
    def test_routed_fabric_as_candidate_fails_functionally(self, golden_store):
        """Routing a fabric away from its default states is a functional change."""
        problem = get_problem("benes_4x4")
        fabric = build_fabric("benes", 4)
        states = route_fabric("benes", 4, [1, 0, 3, 2])
        netlist = fabric.to_netlist(states)
        validate_netlist(netlist, port_spec=problem.port_spec)
        smatrix = golden_store.solver.evaluate(netlist, golden_store.wavelengths)
        comparison = compare_responses(smatrix, golden_store.response_for(problem))
        assert not comparison.passed


class TestPromptAndDesignerConsistency:
    def test_designer_sees_all_problems_through_real_prompts(self):
        """The simulated designer can locate every benchmark problem in its prompt."""
        from repro.llm import system, user
        from repro.prompts import build_user_prompt

        designer = SimulatedDesigner("GPT-4")
        sys_msg = system(build_system_prompt())
        for problem in all_problems():
            found = designer._find_problem([sys_msg, user(build_user_prompt(problem.description))])
            assert found.name == problem.name
