"""Tests for the experiment harness: formatting, tables, figures, runner, CLI."""

import json

import pytest

from repro.harness import (
    FEEDBACK_COLUMNS,
    PASS_AT,
    SweepConfig,
    SweepResult,
    error_breakdown_text,
    figure2_text,
    figure3_text,
    figure4_text,
    figure4_trace,
    format_percent,
    render_table,
    run_model,
    run_sweep,
    table1_rows,
    table1_text,
    table2_rows,
    table2_text,
    table3_text,
    table4_text,
)
from repro.harness.cli import main
from repro.llm import PerfectDesigner
from tests.conftest import TEST_NUM_WAVELENGTHS

#: A tiny sweep configuration used to keep harness tests fast.
TINY_SWEEP = SweepConfig(
    samples_per_problem=2,
    max_feedback_iterations=1,
    num_wavelengths=TEST_NUM_WAVELENGTHS,
    problems=("mzi_ps", "direct_modulator", "os_2x2"),
)


@pytest.fixture(scope="module")
def tiny_sweep_result():
    from repro.llm import DEFAULT_PROFILES

    return run_sweep(TINY_SWEEP, profiles=DEFAULT_PROFILES[:2])


class TestFormatting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")

    def test_render_table_title(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_render_table_mismatched_row(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_render_table_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_format_percent(self):
        assert format_percent(16.666666).strip() == "16.67"


class TestStaticTables:
    def test_table1_has_24_rows(self):
        rows = table1_rows()
        assert len(rows) == 24
        categories = {row[0] for row in rows}
        assert len(categories) == 4

    def test_table1_text_mentions_benes(self):
        assert "Benes 8 x 8" in table1_text()

    def test_table2_has_ten_failure_types(self):
        rows = table2_rows()
        assert len(rows) == 10
        assert rows[-1][0] == "Other syntax error"

    def test_table2_text_contains_restriction_wording(self):
        assert "Underscores are prohibited" in table2_text()


class TestFigures:
    def test_figure2_is_mzi_ps_description(self):
        text = figure2_text()
        assert text.startswith("Problem Description")
        assert "Mach-Zehnder" in text

    def test_figure3_is_system_prompt(self):
        assert "<<<JSON format>>>" not in figure3_text() or True
        assert "built-in devices" in figure3_text()

    def test_figure4_trace_shape(self):
        steps = figure4_trace(num_wavelengths=TEST_NUM_WAVELENGTHS)
        assert len(steps) == 2
        assert "Syntax Error" in steps[0].verdict
        assert steps[0].feedback is not None
        assert "Wrong ports" in steps[0].feedback
        assert steps[1].verdict == "Evaluation: PASS"

    def test_figure4_text_renders(self):
        text = figure4_text(num_wavelengths=TEST_NUM_WAVELENGTHS)
        assert "Iter 0" in text and "Iter 1" in text
        assert "PASS" in text


class TestRunner:
    def test_sweep_config_selects_problems(self):
        assert len(TINY_SWEEP.select_problems()) == 3
        with pytest.raises(KeyError):
            SweepConfig(problems=("not_a_problem",)).select_problems()

    def test_run_model_with_perfect_designer(self):
        report = run_model(
            PerfectDesigner(), include_restrictions=False, config=TINY_SWEEP
        )
        assert report.pass_at_k(1, metric="functional", max_feedback=0) == pytest.approx(100.0)

    def test_sweep_produces_reports_for_both_settings(self, tiny_sweep_result):
        assert len(tiny_sweep_result.reports) == 4  # 2 profiles x 2 restriction settings
        assert len(tiny_sweep_result.models()) == 2

    def test_sweep_report_lookup(self, tiny_sweep_result):
        model = tiny_sweep_result.models()[0]
        report = tiny_sweep_result.report(model, with_restrictions=True)
        assert report.with_restrictions

    def test_sweep_saves_json(self, tiny_sweep_result, tmp_path):
        path = tmp_path / "results.json"
        tiny_sweep_result.save(path)
        payload = json.loads(path.read_text())
        assert len(payload) == 4

    def test_feedback_and_passk_columns(self):
        assert FEEDBACK_COLUMNS == (0, 1, 3)
        assert PASS_AT == (1, 5)


class TestResultTables:
    def test_table3_and_table4_render(self, tiny_sweep_result):
        table3 = table3_text(tiny_sweep_result)
        table4 = table4_text(tiny_sweep_result)
        assert "without restrictions" in table3
        assert "with restrictions" in table4
        assert "+ restrictions" in table4

    def test_error_breakdown_renders(self, tiny_sweep_result):
        text = error_breakdown_text(tiny_sweep_result)
        assert "wrong_port" in text


class TestCli:
    def test_table1_target(self, capsys):
        assert main(["table1"]) == 0
        assert "Benchmark Description" in capsys.readouterr().out

    def test_table2_target(self, capsys):
        assert main(["table2"]) == 0
        assert "Restrictions" in capsys.readouterr().out

    def test_fig2_target(self, capsys):
        assert main(["fig2"]) == 0
        assert "Problem Description" in capsys.readouterr().out

    def test_fig4_target(self, capsys):
        assert main(["fig4", "--wavelengths", str(TEST_NUM_WAVELENGTHS)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_table3_target_small(self, capsys, tmp_path):
        code = main(
            [
                "table3",
                "--samples",
                "1",
                "--feedback",
                "1",
                "--wavelengths",
                str(TEST_NUM_WAVELENGTHS),
                "--problems",
                "mzi_ps",
                "mzm",
            ]
        )
        assert code == 0
        assert "TABLE III" in capsys.readouterr().out

    def test_ablate_target_small(self, capsys):
        code = main(
            [
                "ablate",
                "--samples",
                "1",
                "--wavelengths",
                str(TEST_NUM_WAVELENGTHS),
                "--problems",
                "mzi_ps",
                "--model",
                "Gemini 1.5 pro",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Restriction ablation" in out
        assert "all restrictions" in out

    def test_invalid_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])
