"""Compiled-plan cache and level-batched executor tests (PR 4).

Covers the compile/execute split of the solver: topology-fingerprint plan
caching (hit on settings-only change, miss on topology / mask / model
re-registration change), thread safety under the PR 1 scheduler, chunked
versus unchunked numerical identity, and <= 1e-9 equivalence of the levelled
executor against the dense backend *and* the retained PR 3 per-port cascade
reference over every registered pack problem plus adversarial cyclic
topologies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.packs import get_pack, pack_names
from repro.engine.engine import EngineConfig, ExecutionEngine, default_engine
from repro.engine.scheduler import TaskScheduler
from repro.harness.cli import build_parser
from repro.harness.runner import SweepConfig
from repro.netlist import Instance, Netlist
from repro.netlist.errors import BadComponentNameError, UndefinedModelError
from repro.sim import CircuitSolver, CompiledCircuit, SMatrix, compile_netlist
from repro.sim.cascade import cascade_solve
from repro.sim.registry import ModelInfo, ModelRegistry, default_registry

EQUIVALENCE_ATOL = 1e-9


def _max_abs_diff(a, b):
    """Largest absolute element-wise deviation between two S-matrix arrays."""
    a = a.data if isinstance(a, SMatrix) else np.asarray(a)
    b = b.data if isinstance(b, SMatrix) else np.asarray(b)
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def _mzi_netlist(length=10.0):
    return Netlist(
        instances={
            "sp": Instance("mmi1x2"),
            "top": Instance("waveguide", {"length": length}),
            "bot": Instance("waveguide", {"length": 20.0}),
            "cm": Instance("mmi2x2"),
        },
        connections={
            "sp,O1": "top,I1",
            "sp,O2": "bot,I1",
            "top,O1": "cm,I1",
            "bot,O1": "cm,I2",
        },
        ports={"I1": "sp,I1", "O1": "cm,O1", "O2": "cm,O2"},
        models={
            "mmi1x2": "mmi1x2",
            "mmi2x2": "mmi2x2",
            "waveguide": "waveguide",
        },
    )


def _ring_netlist(coupling=0.2):
    return Netlist(
        instances={
            "cp": Instance("coupler", {"coupling": coupling}),
            "loop": Instance("waveguide", {"length": 31.4}),
        },
        connections={"cp,O2": "loop,I1", "loop,O1": "cp,I2"},
        ports={"I1": "cp,I1", "O1": "cp,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def _registered_pack_problems():
    """One pytest param per problem of every registered pack (default params)."""
    params = []
    for pack_name in pack_names():
        for problem in get_pack(pack_name).build_problems():
            params.append(pytest.param(problem, id=f"{pack_name}:{problem.name}"))
    return params


def _instance_matrices(netlist, wavelengths, registry):
    """Per-instance S-matrix data, independent of the solver's caches."""
    matrices = []
    for inst in netlist.instances.values():
        ref = netlist.models.get(inst.component, inst.component)
        matrices.append(registry.get(ref).evaluate(wavelengths, **inst.settings).data)
    return matrices


class TestPlanCacheKeying:
    def test_hit_on_settings_only_change(self, wavelengths):
        solver = CircuitSolver()
        solver.evaluate(_mzi_netlist(length=10.0), wavelengths)
        stats = solver.plan_cache_stats()
        assert stats.misses == 1
        first = solver.compile(_mzi_netlist(length=10.0), wavelengths)
        other = solver.compile(_mzi_netlist(length=55.5), wavelengths)
        assert other is first  # settings-only change reuses the cached plan
        assert solver.plan_cache_stats().misses == 1
        assert solver.plan_cache_stats().hits >= 2
        # ... and the results still differ (the plan carries no values).
        a = solver.evaluate(_mzi_netlist(length=10.0), wavelengths)
        b = solver.evaluate(_mzi_netlist(length=55.5), wavelengths)
        assert _max_abs_diff(a, b) > 1e-3

    def test_miss_on_topology_change(self, wavelengths):
        solver = CircuitSolver()
        base = solver.compile(_mzi_netlist(), wavelengths)
        rewired = _mzi_netlist()
        rewired.connections = dict(rewired.connections)
        rewired.connections.pop("top,O1")
        rewired.connections["top,O1"] = "cm,I2"
        rewired.connections["bot,O1"] = "cm,I1"
        other = solver.compile(rewired, wavelengths)
        assert other.fingerprint != base.fingerprint

    def test_miss_on_mask_change(self, wavelengths):
        # coupling=0 zeroes the cross terms: same topology, different
        # structural masks -- must compile a different plan.
        solver = CircuitSolver()
        a = solver.compile(_ring_netlist(coupling=0.2), wavelengths)
        b = solver.compile(_ring_netlist(coupling=0.0), wavelengths)
        assert a.fingerprint != b.fingerprint
        dense = solver.evaluate(_ring_netlist(coupling=0.0), wavelengths, backend="dense")
        cascade = solver.evaluate(
            _ring_netlist(coupling=0.0), wavelengths, backend="cascade"
        )
        assert _max_abs_diff(dense, cascade) <= EQUIVALENCE_ATOL

    def test_miss_on_model_reregistration(self, wavelengths):
        registry = ModelRegistry(default_registry())
        solver = CircuitSolver(registry=registry)
        base = solver.compile(_ring_netlist(), wavelengths)

        original = registry.get("waveguide")

        def replacement_waveguide(wl, **settings):
            """A re-registered waveguide implementation (new identity)."""
            return original.func(wl, **settings)

        registry.register(
            ModelInfo(
                name="waveguide",
                func=replacement_waveguide,
                description=original.description,
                input_ports=original.input_ports,
                output_ports=original.output_ports,
                parameters=original.parameters,
            )
        )
        other = solver.compile(_ring_netlist(), wavelengths)
        assert other.fingerprint != base.fingerprint
        assert "replacement_waveguide" in other.func_identities[1]

    def test_plan_cache_can_be_disabled(self, wavelengths):
        solver = CircuitSolver(plan_cache_entries=0)
        solver.evaluate(_mzi_netlist(), wavelengths)
        solver.evaluate(_mzi_netlist(), wavelengths)
        assert solver.plan_cache_stats().hits == 0

    def test_cascade_plan_shares_compiled_artifact(self, wavelengths):
        # Satellite fix: cascade_plan() followed by evaluate() must not
        # redo the structure work.
        solver = CircuitSolver()
        plan = solver.cascade_plan(_mzi_netlist(), wavelengths)
        assert plan.num_ports == 11
        assert solver.plan_cache_stats().misses == 1
        solver.evaluate(_mzi_netlist(), wavelengths, backend="cascade")
        assert solver.plan_cache_stats().misses == 1
        assert solver.plan_cache_stats().hits >= 1


class TestInstanceKeyMemoisation:
    def test_settings_fingerprint_memoised_across_calls(self, wavelengths, monkeypatch):
        import repro.sim.circuit as circuit_module

        calls = []
        original = circuit_module.settings_fingerprint

        def counting(settings):
            calls.append(settings)
            return original(settings)

        monkeypatch.setattr(circuit_module, "settings_fingerprint", counting)
        solver = CircuitSolver()
        netlist = _mzi_netlist()
        solver.evaluate(netlist, wavelengths)
        first = len(calls)
        assert first == netlist.num_instances()
        solver.evaluate(netlist, wavelengths)
        # Same Instance objects: fingerprints come from the memo.
        assert len(calls) == first

    def test_array_valued_settings_do_not_break_the_memo(self, wavelengths):
        # numpy-array settings make dict equality non-boolean; the memo must
        # skip, not crash, and the model's own error must surface each time.
        from repro.netlist.errors import OtherSyntaxError

        solver = CircuitSolver()
        netlist = _ring_netlist()
        netlist.instances["loop"].settings["length"] = np.array([10.0, 20.0])
        for _ in range(2):
            with pytest.raises(OtherSyntaxError):
                solver.evaluate(netlist, wavelengths)

    def test_in_place_settings_mutation_is_detected(self, wavelengths):
        # The memo guards by value equality, so mutating settings in place
        # must still produce fresh results.
        solver = CircuitSolver()
        netlist = _ring_netlist()
        before = solver.evaluate(netlist, wavelengths)
        netlist.instances["loop"].settings["length"] = 62.8
        after = solver.evaluate(netlist, wavelengths)
        assert _max_abs_diff(before, after) > 1e-6
        dense = solver.evaluate(netlist, wavelengths, backend="dense")
        assert _max_abs_diff(after, dense) <= EQUIVALENCE_ATOL


class TestValidationBehaviour:
    def test_invalid_netlist_raises_classified_error_every_time(self, wavelengths):
        solver = CircuitSolver()
        bad = _mzi_netlist()
        bad.instances = {"bad_name!": Instance("waveguide", {"length": 5.0})}
        bad.connections = {}
        bad.ports = {"I1": "bad_name!,I1", "O1": "bad_name!,O1"}
        for _ in range(2):
            with pytest.raises(BadComponentNameError):
                solver.evaluate(bad, wavelengths)

    def test_non_string_models_value_raises_classified_error(self, wavelengths):
        # An unhashable models-section value must surface as the classified
        # Table II error, not as a raw TypeError from the key memo.
        from repro.netlist.errors import PICBenchError

        solver = CircuitSolver()
        bad = _ring_netlist()
        bad.models = dict(bad.models)
        bad.models["waveguide"] = {"model": "waveguide"}
        for _ in range(2):
            with pytest.raises(PICBenchError):
                solver.evaluate(bad, wavelengths)

    def test_undefined_model_raises_classified_error(self, wavelengths):
        solver = CircuitSolver()
        bad = Netlist(
            instances={"x": Instance("warp_drive")},
            ports={"I1": "x,I1", "O1": "x,O1"},
            models={"warp_drive": "warp_drive"},
        )
        for _ in range(2):
            with pytest.raises(UndefinedModelError):
                solver.evaluate(bad, wavelengths)

    def test_settings_only_change_still_validates_clean(self, wavelengths):
        # Warm-path validation skipping must never change results or errors
        # for valid netlists.
        solver = CircuitSolver()
        solver.evaluate(_mzi_netlist(length=10.0), wavelengths)
        result = solver.evaluate(_mzi_netlist(length=11.0), wavelengths)
        assert result.num_ports == 3


class TestChunkedExecution:
    @pytest.mark.parametrize("backend", ["dense", "cascade"])
    def test_chunked_matches_unchunked(self, wavelengths, backend):
        from repro.bench import get_problem

        plain = CircuitSolver()
        chunked = CircuitSolver(max_wavelength_chunk=3)
        for netlist in (
            _mzi_netlist(),
            _ring_netlist(),
            get_problem("clements_4x4").golden_netlist(),
        ):
            a = plain.evaluate(netlist, wavelengths, backend=backend)
            b = chunked.evaluate(netlist, wavelengths, backend=backend)
            assert _max_abs_diff(a, b) <= 1e-12

    def test_chunk_of_one_point(self, wavelengths):
        chunked = CircuitSolver(max_wavelength_chunk=1)
        plain = CircuitSolver()
        a = plain.evaluate(_ring_netlist(), wavelengths, backend="cascade")
        b = chunked.evaluate(_ring_netlist(), wavelengths, backend="cascade")
        assert _max_abs_diff(a, b) <= 1e-12

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError, match="max_wavelength_chunk"):
            CircuitSolver(max_wavelength_chunk=0)


class TestLevelledExecutorEquivalence:
    @pytest.mark.parametrize("problem", _registered_pack_problems())
    def test_matches_dense_and_pr3_cascade_on_every_pack_problem(
        self, problem, wavelengths, solver
    ):
        netlist = problem.golden_netlist()
        dense = solver.evaluate(
            netlist, wavelengths, port_spec=problem.port_spec, backend="dense"
        )
        compiled_result = solver.evaluate(
            netlist, wavelengths, port_spec=problem.port_spec, backend="cascade"
        )
        assert _max_abs_diff(dense, compiled_result) <= EQUIVALENCE_ATOL

        # The retained PR 3 per-port reference implementation.
        compiled = solver.compile(netlist, wavelengths, port_spec=problem.port_spec)
        matrices = _instance_matrices(netlist, wavelengths, solver.registry)
        reference = cascade_solve(
            matrices,
            list(compiled.spans),
            compiled.owner,
            compiled.partner,
            compiled.injection_ports,
            wavelengths.size,
        )
        assert _max_abs_diff(reference, compiled_result.data) <= EQUIVALENCE_ATOL

    def test_asymmetric_device_disables_reciprocity_cover(self, wavelengths):
        # A non-reciprocal (isolator-like) device: the cover must not apply,
        # and the full schedule must still match dense.
        registry = ModelRegistry(default_registry())
        base = registry.get("waveguide")

        def isolator(wl, **settings):
            """One-way waveguide: forward transmission only."""
            sm = base.func(wl, **settings)
            data = sm.data.copy()
            data[:, 0, 1] = 0.0  # kill the backward path
            return SMatrix(sm.wavelengths, sm.ports, data)

        registry.register(
            ModelInfo(
                name="isolator",
                func=isolator,
                description="one-way waveguide",
                input_ports=base.input_ports,
                output_ports=base.output_ports,
                parameters=base.parameters,
            )
        )
        netlist = Netlist(
            instances={
                "sp": Instance("mmi1x2"),
                "iso": Instance("isolator", {"length": 12.0}),
                "wg": Instance("waveguide", {"length": 7.0}),
            },
            connections={"sp,O1": "iso,I1", "sp,O2": "wg,I1"},
            ports={"I1": "sp,I1", "O1": "iso,O1", "O2": "wg,O1"},
            models={"mmi1x2": "mmi1x2", "isolator": "isolator", "waveguide": "waveguide"},
        )
        solver = CircuitSolver(registry=registry)
        dense = solver.evaluate(netlist, wavelengths, backend="dense")
        cascade = solver.evaluate(netlist, wavelengths, backend="cascade")
        assert _max_abs_diff(dense, cascade) <= EQUIVALENCE_ATOL

    def test_all_isolated_external_instances_compile(self, wavelengths, solver):
        # Large enough to trigger column grouping, but every external port
        # sits on an isolated instance: all single-column groups have empty
        # schedules and must still stack/compile cleanly.
        instances = {
            "extA": Instance("waveguide", {"length": 5.0}),
            "extB": Instance("waveguide", {"length": 6.0}),
        }
        connections = {}
        for i in range(140):
            instances[f"wg{i}"] = Instance("waveguide", {"length": float(i + 1)})
        for i in range(139):
            connections[f"wg{i},O1"] = f"wg{i + 1},I1"
        netlist = Netlist(
            instances=instances,
            connections=connections,
            ports={
                "I1": "extA,I1",
                "O1": "extA,O1",
                "I2": "extB,I1",
                "O2": "extB,O1",
            },
            models={"waveguide": "waveguide"},
        )
        dense = solver.evaluate(netlist, wavelengths, backend="dense")
        cascade = solver.evaluate(netlist, wavelengths, backend="cascade")
        assert _max_abs_diff(dense, cascade) <= EQUIVALENCE_ATOL

    def test_compile_netlist_function_standalone(self, wavelengths, registry):
        netlist = _ring_netlist()
        matrices = {}
        for name, inst in netlist.instances.items():
            ref = netlist.models.get(inst.component, inst.component)
            matrices[name] = registry.get(ref).evaluate(wavelengths, **inst.settings)
        compiled = compile_netlist(netlist, matrices)
        assert isinstance(compiled, CompiledCircuit)
        assert compiled.supports_cascade
        assert compiled.num_ports == 6
        assert compiled.plan is not None and len(compiled.plan.feedback) == 2


class TestThreadSafety:
    def test_shared_solver_under_pr1_scheduler(self, wavelengths):
        from repro.bench import get_problem

        solver = CircuitSolver()
        netlists = [
            _mzi_netlist(length=float(10 + i)) for i in range(8)
        ] + [
            _ring_netlist(coupling=0.1 * (i + 1)) for i in range(4)
        ] + [get_problem("clements_4x4").golden_netlist()] * 4
        expected = [solver.evaluate(n, wavelengths).data for n in netlists]

        fresh = CircuitSolver()
        scheduler = TaskScheduler(workers=4)
        results = scheduler.map(lambda n: fresh.evaluate(n, wavelengths).data, netlists * 3)
        for index, result in enumerate(results):
            assert _max_abs_diff(result, expected[index % len(netlists)]) <= 1e-12
        assert fresh.plan_cache_stats().hits > 0


class TestPlanSpill:
    def test_plans_spill_to_disk_and_warm_new_solvers(self, wavelengths, tmp_path):
        netlist = _ring_netlist()
        cold = CircuitSolver(plan_dir=tmp_path)
        expected = cold.evaluate(netlist, wavelengths, backend="cascade")
        spilled = list(tmp_path.glob("plan-*.pkl"))
        assert spilled, "compiled plans must be persisted under plan_dir"

        warm = CircuitSolver(plan_dir=tmp_path)
        result = warm.evaluate(netlist, wavelengths, backend="cascade")
        assert _max_abs_diff(result, expected) <= 1e-12
        assert warm.plan_cache_stats().disk_hits > 0
        assert warm.plan_cache_stats().misses == 0 or warm.plan_cache_stats().hits >= 0

    def test_corrupt_spilled_plan_recompiles(self, wavelengths, tmp_path):
        netlist = _ring_netlist()
        cold = CircuitSolver(plan_dir=tmp_path)
        expected = cold.evaluate(netlist, wavelengths, backend="cascade")
        for path in tmp_path.glob("plan-*.pkl"):
            path.write_bytes(b"not a pickle")
        warm = CircuitSolver(plan_dir=tmp_path)
        result = warm.evaluate(netlist, wavelengths, backend="cascade")
        assert _max_abs_diff(result, expected) <= 1e-12
        assert warm.plan_cache_stats().disk_hits == 0

    def test_clear_plan_cache_leaves_spill_in_place(self, wavelengths, tmp_path):
        solver = CircuitSolver(plan_dir=tmp_path)
        solver.evaluate(_ring_netlist(), wavelengths, backend="cascade")
        spilled = sorted(tmp_path.glob("plan-*.pkl"))
        solver.clear_plan_cache()
        assert sorted(tmp_path.glob("plan-*.pkl")) == spilled

    def test_bad_plan_dir_rejected(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("a file, not a directory")
        with pytest.raises(ValueError, match="plan_dir"):
            CircuitSolver(plan_dir=target)

    def test_engine_resolves_plan_dir_under_cache_dir(self, tmp_path, wavelengths):
        engine = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
        assert engine.config.resolved_plan_dir() == tmp_path / "plans"
        engine.evaluate(_ring_netlist(), wavelengths)
        assert list((tmp_path / "plans").glob("plan-*.pkl"))


class TestKnobPlumbing:
    def test_engine_config_threads_plan_knobs(self):
        engine = ExecutionEngine(
            EngineConfig(plan_cache_entries=7, wavelength_chunk=13)
        )
        assert engine.solver._plan_cache.max_entries == 7
        assert engine.solver.max_wavelength_chunk == 13
        stats = engine.stats()
        assert "plan_cache" in stats and "plan_hit_rate" in stats

    def test_default_engine_threads_plan_knobs(self):
        engine = default_engine(plan_cache_entries=5, wavelength_chunk=9)
        assert engine.solver._plan_cache.max_entries == 5
        assert engine.solver.max_wavelength_chunk == 9

    def test_sweep_config_threads_plan_knobs(self):
        config = SweepConfig(plan_cache_entries=11, wavelength_chunk=17)
        engine_config = config.engine_config()
        assert engine_config.plan_cache_entries == 11
        assert engine_config.wavelength_chunk == 17

    def test_cli_accepts_plan_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--plan-cache-entries", "42", "--wavelength-chunk", "33"]
        )
        assert args.plan_cache_entries == 42
        assert args.wavelength_chunk == 33

    def test_cli_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.plan_cache_entries == 128
        assert args.wavelength_chunk is None

    def test_engine_cache_key_is_plan_invariant(self, wavelengths):
        # Engine cache keys must not depend on plan-cache or chunk settings.
        netlist = _ring_netlist()
        a = ExecutionEngine(EngineConfig(plan_cache_entries=0, wavelength_chunk=2))
        b = ExecutionEngine(EngineConfig(plan_cache_entries=64, wavelength_chunk=None))
        assert a.simulation_key(netlist, wavelengths) == b.simulation_key(
            netlist, wavelengths
        )
        assert _max_abs_diff(
            a.evaluate(netlist, wavelengths), b.evaluate(netlist, wavelengths)
        ) <= 1e-12
