"""Tests for the switch-fabric topologies and permutation routing."""

import itertools

import numpy as np
import pytest

from repro.netlist import validate_netlist
from repro.sim import evaluate_netlist
from repro.switching import (
    OS2X2_BAR_PHASE,
    benes_element_count,
    benes_fabric,
    build_fabric,
    crossbar_fabric,
    os2x2_netlist,
    route_benes,
    route_crossbar,
    route_fabric,
    route_spanke,
    route_spanke_benes,
    spanke_benes_columns,
    spanke_benes_fabric,
    spanke_fabric,
    validate_permutation,
)

ARCHITECTURES = ("crossbar", "spanke", "benes", "spankebenes")


def simulate_permutation_matrix(fabric, states, wavelength=np.array([1.55])):
    """Power transmission matrix [output, input] of a routed fabric."""
    netlist = fabric.to_netlist(states)
    smatrix = evaluate_netlist(netlist, wavelength)
    n = fabric.size
    return np.array(
        [
            [smatrix.transmission(f"O{o + 1}", f"I{i + 1}")[0] for i in range(n)]
            for o in range(n)
        ]
    )


class TestFabricStructure:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("size", [4, 8])
    def test_structural_netlist_validates(self, architecture, size):
        fabric = build_fabric(architecture, size)
        validate_netlist(fabric.to_netlist())
        assert fabric.size == size
        assert len(fabric.ports) == 2 * size

    def test_element_counts(self):
        assert crossbar_fabric(4).num_elements == 16
        assert spanke_fabric(4).num_elements == 2 * 4 * 3
        assert benes_fabric(4).num_elements == 6
        assert spanke_benes_fabric(4).num_elements == 6
        assert benes_fabric(8).num_elements == 20
        assert spanke_benes_fabric(8).num_elements == 28

    def test_benes_element_count_formula(self):
        assert benes_element_count(2) == 1
        assert benes_element_count(4) == 6
        assert benes_element_count(8) == 20
        assert benes_element_count(16) == 56

    def test_instance_names_valid(self):
        for architecture in ARCHITECTURES:
            fabric = build_fabric(architecture, 4)
            for name in fabric.elements:
                assert "_" not in name and "," not in name

    def test_unknown_architecture(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            build_fabric("clos", 4)
        with pytest.raises(ValueError, match="unknown architecture"):
            route_fabric("clos", 4, [0, 1, 2, 3])

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            spanke_fabric(6)
        with pytest.raises(ValueError):
            benes_fabric(6)

    def test_crossbar_small_size_rejected(self):
        with pytest.raises(ValueError):
            crossbar_fabric(1)

    def test_spanke_benes_columns(self):
        columns = spanke_benes_columns(4)
        assert len(columns) == 4
        assert columns[0] == [0, 2]
        assert columns[1] == [1]

    def test_to_netlist_rejects_unknown_states(self):
        fabric = crossbar_fabric(4)
        with pytest.raises(KeyError):
            fabric.to_netlist({"notAnElement": "bar"})


class TestPermutationValidation:
    def test_accepts_valid(self):
        assert validate_permutation([2, 0, 1], 3) == (2, 0, 1)

    @pytest.mark.parametrize("bad", [[0, 0, 1], [0, 1], [0, 1, 3]])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            validate_permutation(bad, 3)

    def test_permutation_matrix(self):
        fabric = crossbar_fabric(4)
        matrix = fabric.permutation_matrix([1, 0, 3, 2])
        assert matrix[1, 0] == 1.0 and matrix[0, 1] == 1.0
        assert matrix.sum() == 4


class TestRouting4x4Exhaustive:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_all_permutations_route_correctly(self, architecture):
        fabric = build_fabric(architecture, 4)
        for perm in itertools.permutations(range(4)):
            states = route_fabric(architecture, 4, perm)
            matrix = simulate_permutation_matrix(fabric, states)
            assert np.allclose(matrix, fabric.permutation_matrix(perm), atol=1e-4), (
                architecture,
                perm,
            )


class TestRouting8x8Sampled:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_sampled_permutations_route_correctly(self, architecture):
        rng = np.random.default_rng(12)
        fabric = build_fabric(architecture, 8)
        for _ in range(3):
            perm = tuple(int(x) for x in rng.permutation(8))
            states = route_fabric(architecture, 8, perm)
            matrix = simulate_permutation_matrix(fabric, states)
            assert np.allclose(matrix, fabric.permutation_matrix(perm), atol=1e-4)

    def test_identity_and_reversal(self):
        for architecture in ARCHITECTURES:
            fabric = build_fabric(architecture, 8)
            for perm in (tuple(range(8)), tuple(reversed(range(8)))):
                states = route_fabric(architecture, 8, perm)
                matrix = simulate_permutation_matrix(fabric, states)
                assert np.allclose(matrix, fabric.permutation_matrix(perm), atol=1e-4)


class TestRoutingStateCounts:
    def test_crossbar_exactly_n_cross_points(self):
        states = route_crossbar(4, [3, 1, 0, 2])
        assert sum(1 for s in states.values() if s == "cross") == 4

    def test_benes_routes_cover_all_elements(self):
        states = route_benes(8, list(range(8)))
        assert len(states) == benes_element_count(8)

    def test_spanke_routing_sets_path_switches(self):
        states = route_spanke(4, [0, 1, 2, 3])
        # Each of the 4 inputs programs log2(4)=2 switches per side.
        assert len(states) == 4 * 2 * 2

    def test_spanke_benes_sorts_labels(self):
        states = route_spanke_benes(8, list(reversed(range(8))))
        assert set(states.values()) <= {"bar", "cross"}

    def test_routing_rejects_bad_permutation(self):
        with pytest.raises(ValueError):
            route_benes(4, [0, 0, 1, 2])


class TestOS2x2:
    def test_structural_netlist_validates(self):
        validate_netlist(os2x2_netlist())

    def test_default_state_is_cross(self, single_wavelength):
        sm = evaluate_netlist(os2x2_netlist(), single_wavelength)
        assert sm.transmission("O2", "I1")[0] == pytest.approx(1.0)
        assert sm.transmission("O1", "I1")[0] == pytest.approx(0.0, abs=1e-10)

    def test_bar_phase_switches_state(self, single_wavelength):
        sm = evaluate_netlist(os2x2_netlist(phase=OS2X2_BAR_PHASE), single_wavelength)
        assert sm.transmission("O1", "I1")[0] == pytest.approx(1.0)
        assert sm.transmission("O2", "I2")[0] == pytest.approx(1.0)

    def test_energy_conserved(self, wavelengths):
        sm = evaluate_netlist(os2x2_netlist(phase=0.7), wavelengths)
        total = sm.transmission("O1", "I1") + sm.transmission("O2", "I1")
        assert np.allclose(total, 1.0, atol=1e-9)
