"""Tests for unitary utilities and the Reck / Clements decompositions."""

import numpy as np
import pytest

from repro.meshes import (
    MZIPlacement,
    clements_decomposition,
    clements_mesh_netlist,
    clements_topology,
    is_unitary_matrix,
    mesh_netlist_from_placements,
    mesh_to_matrix,
    random_unitary,
    reck_decomposition,
    reck_mesh_netlist,
    reck_topology,
)
from repro.meshes.unitary import commute_inverse_through_diagonal, embed_block
from repro.netlist import validate_netlist
from repro.sim import evaluate_netlist


class TestUnitaryHelpers:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_random_unitary_is_unitary(self, n):
        assert is_unitary_matrix(random_unitary(n, seed=n))

    def test_random_unitary_seeded_reproducible(self):
        assert np.allclose(random_unitary(4, seed=7), random_unitary(4, seed=7))

    def test_is_unitary_matrix_rejects_non_square(self):
        assert not is_unitary_matrix(np.ones((2, 3)))

    def test_is_unitary_matrix_rejects_lossy(self):
        assert not is_unitary_matrix(0.5 * np.eye(3))

    def test_embed_block_identity_elsewhere(self):
        block = embed_block(5, 2, 0.3, 0.7)
        assert np.allclose(block[0, 0], 1.0)
        assert np.allclose(block[4, 4], 1.0)
        assert is_unitary_matrix(block)

    def test_embed_block_mode_bounds(self):
        with pytest.raises(ValueError):
            embed_block(4, 3, 0.0, 0.0)

    def test_mesh_to_matrix_order(self):
        # Two placements on different modes commute; on the same modes they don't.
        a = MZIPlacement(mode=0, theta=0.4, phi=0.1)
        b = MZIPlacement(mode=0, theta=1.1, phi=0.9)
        ab = mesh_to_matrix(2, [a, b])
        ba = mesh_to_matrix(2, [b, a])
        assert not np.allclose(ab, ba)

    def test_mesh_to_matrix_output_phases(self):
        matrix = mesh_to_matrix(2, [], output_phases=[np.pi / 2, 0.0])
        assert np.allclose(matrix, np.diag([1j, 1.0]))

    def test_mesh_to_matrix_bad_phase_length(self):
        with pytest.raises(ValueError):
            mesh_to_matrix(3, [], output_phases=[0.0, 0.0])

    def test_commute_inverse_through_diagonal_identity(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = 4
            theta, phi = rng.uniform(0, np.pi), rng.uniform(-np.pi, np.pi)
            mode = int(rng.integers(0, n - 1))
            diag = np.exp(1j * rng.uniform(-np.pi, np.pi, size=n))
            left = embed_block(n, mode, theta, phi).conj().T @ np.diag(diag)
            new_diag, theta2, phi2 = commute_inverse_through_diagonal(n, mode, theta, phi, diag)
            right = np.diag(new_diag) @ embed_block(n, mode, theta2, phi2)
            assert np.allclose(left, right, atol=1e-9)


class TestTopologies:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
    def test_clements_topology_count(self, n):
        assert len(clements_topology(n)) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
    def test_reck_topology_count(self, n):
        assert len(reck_topology(n)) == n * (n - 1) // 2

    def test_clements_topology_alternating_columns(self):
        modes = clements_topology(4)
        assert modes[:3] == [0, 2, 1]

    def test_topology_rejects_small_sizes(self):
        with pytest.raises(ValueError):
            clements_topology(1)
        with pytest.raises(ValueError):
            reck_topology(0)


class TestDecompositions:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8])
    @pytest.mark.parametrize("scheme", ["clements", "reck"])
    def test_roundtrip(self, n, scheme):
        unitary = random_unitary(n, seed=10 * n)
        decompose = clements_decomposition if scheme == "clements" else reck_decomposition
        decomposition = decompose(unitary)
        assert len(decomposition.placements) == n * (n - 1) // 2
        assert np.allclose(decomposition.reconstruct(), unitary, atol=1e-7)
        assert decomposition.scheme == scheme

    def test_identity_decomposition(self):
        decomposition = clements_decomposition(np.eye(4, dtype=complex))
        assert np.allclose(decomposition.reconstruct(), np.eye(4), atol=1e-9)

    def test_permutation_matrix_decomposition(self):
        perm = np.zeros((4, 4), dtype=complex)
        for i, j in enumerate([2, 0, 3, 1]):
            perm[j, i] = 1.0
        for decompose in (clements_decomposition, reck_decomposition):
            assert np.allclose(decompose(perm).reconstruct(), perm, atol=1e-8)

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError):
            clements_decomposition(np.ones((3, 3)))
        with pytest.raises(ValueError):
            reck_decomposition(np.ones((3, 3)))

    def test_placements_act_on_adjacent_modes(self):
        decomposition = clements_decomposition(random_unitary(5, seed=1))
        for placement in decomposition.placements:
            assert 0 <= placement.mode < 4


class TestMeshNetlists:
    @pytest.mark.parametrize("builder,n", [(clements_mesh_netlist, 4), (clements_mesh_netlist, 8),
                                           (reck_mesh_netlist, 4), (reck_mesh_netlist, 8)])
    def test_structural_mesh_validates(self, builder, n):
        netlist = builder(n)
        validate_netlist(netlist)
        assert netlist.num_instances() == n * (n - 1) // 2
        assert len(netlist.external_inputs()) == n
        assert len(netlist.external_outputs()) == n

    @pytest.mark.parametrize("scheme", ["clements", "reck"])
    def test_programmed_mesh_realises_unitary(self, scheme, single_wavelength):
        n = 4
        unitary = random_unitary(n, seed=99)
        builder = clements_mesh_netlist if scheme == "clements" else reck_mesh_netlist
        netlist = builder(n, unitary)
        smatrix = evaluate_netlist(netlist, single_wavelength)
        realised = np.array(
            [[smatrix.s(f"O{i + 1}", f"I{j + 1}")[0] for j in range(n)] for i in range(n)]
        )
        assert np.allclose(realised, unitary, atol=1e-6)

    def test_programmed_mesh_without_output_phases(self, single_wavelength):
        n = 3
        unitary = random_unitary(n, seed=5)
        netlist = clements_mesh_netlist(n, unitary, include_output_phases=False)
        smatrix = evaluate_netlist(netlist, single_wavelength)
        realised = np.array(
            [[smatrix.s(f"O{i + 1}", f"I{j + 1}")[0] for j in range(n)] for i in range(n)]
        )
        # Without the phase screen only the magnitudes are guaranteed.
        assert np.allclose(np.abs(realised), np.abs(unitary), atol=1e-6)

    def test_builder_rejects_uncovered_mode(self):
        with pytest.raises(ValueError, match="floating input"):
            mesh_netlist_from_placements(3, [MZIPlacement(mode=0, theta=0.0, phi=0.0)])

    def test_builder_rejects_out_of_range_mode(self):
        with pytest.raises(ValueError):
            mesh_netlist_from_placements(3, [MZIPlacement(mode=5, theta=0.0, phi=0.0)])

    def test_builder_rejects_bad_output_phase_length(self):
        placements = [MZIPlacement(mode=m, theta=0.0, phi=0.0) for m in clements_topology(3)]
        with pytest.raises(ValueError):
            mesh_netlist_from_placements(3, placements, output_phases=[0.0])

    def test_instance_names_have_no_underscores(self):
        netlist = clements_mesh_netlist(4, random_unitary(4, seed=2))
        assert all("_" not in name for name in netlist.instances)
