"""Tests for frequency-response extraction and golden comparison."""

import numpy as np
import pytest

from repro.sim import compare_responses, evaluate_netlist
from repro.sim.analysis import ComparisonResult, FrequencyResponse
from repro.bench.problems.fundamental import mzi_ps_golden, mzm_golden


@pytest.fixture
def golden_response(wavelengths):
    return FrequencyResponse.from_smatrix(evaluate_netlist(mzi_ps_golden(), wavelengths))


class TestFrequencyResponse:
    def test_from_smatrix_covers_all_pairs(self, golden_response):
        assert set(golden_response.ports) == {"I1", "O1"}
        assert len(golden_response.transmission) == 4

    def test_serialisation_roundtrip(self, golden_response):
        rebuilt = FrequencyResponse.from_dict(golden_response.to_dict())
        assert rebuilt.ports == golden_response.ports
        for pair, spectrum in golden_response.transmission.items():
            assert np.allclose(rebuilt.transmission[pair], spectrum)

    def test_values_are_powers(self, golden_response):
        for spectrum in golden_response.transmission.values():
            assert np.all(spectrum >= 0.0)
            assert np.all(spectrum <= 1.0 + 1e-9)


class TestCompareResponses:
    def test_identical_passes(self, wavelengths, golden_response):
        candidate = evaluate_netlist(mzi_ps_golden(), wavelengths)
        result = compare_responses(candidate, golden_response)
        assert result.passed
        assert result.max_abs_error < 1e-12

    def test_comparison_result_truthiness(self, wavelengths, golden_response):
        candidate = evaluate_netlist(mzi_ps_golden(), wavelengths)
        assert bool(compare_responses(candidate, golden_response))

    def test_parameter_change_fails(self, wavelengths, golden_response):
        modified = mzi_ps_golden(delta_length=25.0)
        result = compare_responses(evaluate_netlist(modified, wavelengths), golden_response)
        assert not result.passed
        assert result.mismatched_pairs
        assert "deviates" in result.reason

    def test_different_structure_fails(self, wavelengths, golden_response):
        result = compare_responses(evaluate_netlist(mzm_golden(), wavelengths), golden_response)
        assert not result.passed

    def test_port_name_mismatch_fails(self, wavelengths, golden_response):
        candidate = evaluate_netlist(mzi_ps_golden(), wavelengths)
        renamed = candidate.renamed({"O1": "out"})
        result = compare_responses(renamed, golden_response)
        assert not result.passed
        assert "port names" in result.reason

    def test_wavelength_grid_mismatch_fails(self, golden_response):
        other_grid = np.linspace(1.52, 1.58, golden_response.wavelengths.size)
        candidate = evaluate_netlist(mzi_ps_golden(), other_grid)
        result = compare_responses(candidate, golden_response)
        assert not result.passed
        assert "wavelength" in result.reason

    def test_tolerance_is_respected(self, wavelengths, golden_response):
        # A barely-different design passes with a loose tolerance.
        modified = mzi_ps_golden(delta_length=10.0001)
        candidate = evaluate_netlist(modified, wavelengths)
        loose = compare_responses(candidate, golden_response, atol=0.5)
        assert loose.passed
