"""Numerical guardrail tests: singular feedback loops degrade, never crash.

A lossless resonant loop (unit round-trip gain, zero round-trip phase)
makes the feedback-cluster linear system exactly singular: ``1 - g`` is
zero at the self-loop site and ``I - S`` loses rank at the cluster/dense
sites.  The solver must fall back to least-squares, mark the result
``degraded``, and keep every number finite -- and nothing non-finite may
ever be persisted to the simulation cache.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine.cache import SimulationCache
from repro.engine.engine import EngineConfig, ExecutionEngine
from repro.evalkit.outcome import AttemptRecord, EvalReport, SampleResult
from repro.harness.journal import _sample_from_payload, _sample_to_payload
from repro.netlist import Instance, Netlist
from repro.sim import CircuitSolver
from repro.sim.guardrails import collect_degradations, solve_with_fallback
from repro.sim.sparams import SMatrix

BACKENDS = ("dense", "cascade")


#: A coupling so weak the through amplitude rounds to exactly 1.0 in float
#: (``sqrt(1 - 1e-30) == 1.0``) while the cross amplitude (``~1e-15``) stays
#: structurally nonzero -- the loop is reachable from the input, yet its
#: round-trip gain is float-exactly 1: the resonant system is singular.
NEAR_LOSSLESS = 1e-30


def lossless_ring_netlist():
    """All-pass ring with float-exact unit round-trip gain on the whole grid.

    The zero-length lossless loop contributes exactly no phase and the
    near-lossless coupler an exact through amplitude of 1, so the feedback
    system ``(1 - g) x = b`` is singular at every wavelength while the loop
    still receives (tiny) excitation from the external input.
    """
    return Netlist(
        instances={
            "cp": Instance("coupler", {"coupling": NEAR_LOSSLESS}),
            "loop": Instance("waveguide", {"length": 0.0, "loss_db_cm": 0.0}),
        },
        connections={"cp,O2": "loop,I1", "loop,O1": "cp,I2"},
        ports={"I1": "cp,I1", "O1": "cp,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


def lossless_adddrop_netlist():
    """Add/drop resonator whose 4-instance cluster is exactly singular."""
    return Netlist(
        instances={
            "cin": Instance("coupler", {"coupling": NEAR_LOSSLESS}),
            "cout": Instance("coupler", {"coupling": NEAR_LOSSLESS}),
            "top": Instance("waveguide", {"length": 0.0, "loss_db_cm": 0.0}),
            "bot": Instance("waveguide", {"length": 0.0, "loss_db_cm": 0.0}),
        },
        connections={
            "cin,O2": "top,I1",
            "top,O1": "cout,I2",
            "cout,O2": "bot,I1",
            "bot,O1": "cin,I2",
        },
        ports={"I1": "cin,I1", "O1": "cin,O1", "I2": "cout,I1", "O2": "cout,O1"},
        models={"coupler": "coupler", "waveguide": "waveguide"},
    )


# ======================================================================
# The fallback primitive
# ======================================================================
def test_solve_with_fallback_survives_singular_systems():
    rng = np.random.default_rng(7)
    system = np.zeros((3, 4, 4), dtype=complex)  # singular in every batch entry
    rhs = rng.standard_normal((3, 4, 2)) + 0j
    with collect_degradations() as events:
        solution = solve_with_fallback(system, rhs, site="cluster")
    assert np.all(np.isfinite(solution))
    assert np.allclose(solution, 0.0)  # minimum-norm solution of 0x = b
    assert events == [{"site": "cluster", "reason": "singular"}]


def test_solve_with_fallback_passes_healthy_systems_through():
    rng = np.random.default_rng(11)
    system = np.eye(4)[None] + 0.01 * rng.standard_normal((3, 4, 4))
    rhs = rng.standard_normal((3, 4, 2)) + 0j
    with collect_degradations() as events:
        solution = solve_with_fallback(system, rhs, site="cluster")
    assert events == []
    assert np.allclose(solution, np.linalg.solve(system, rhs))


# ======================================================================
# Full circuits: lossless resonant loops on both backends
# ======================================================================
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "build", [lossless_ring_netlist, lossless_adddrop_netlist],
    ids=["ring", "adddrop"],
)
def test_singular_loop_degrades_instead_of_raising(wavelengths, backend, build):
    solver = CircuitSolver()
    smatrix = solver.evaluate(build(), wavelengths, backend=backend)
    assert np.all(np.isfinite(smatrix.data))
    assert smatrix.degraded is True
    stats = solver.degradation_stats()
    assert stats["total"] >= 1
    assert stats["singular"] >= 1
    # The decoupled bus still transmits cleanly: the fallback only zeroes
    # the unreachable loop modes, it does not corrupt the external answer.
    assert np.allclose(smatrix.transmission("O1", "I1"), 1.0, atol=1e-9)


@pytest.mark.parametrize("backend", BACKENDS)
def test_healthy_circuits_are_not_flagged(wavelengths, backend):
    lossy = lossless_ring_netlist()
    lossy.instances["cp"].settings["coupling"] = 0.2
    lossy.instances["loop"].settings["length"] = 31.4
    solver = CircuitSolver()
    smatrix = solver.evaluate(lossy, wavelengths, backend=backend)
    assert smatrix.degraded is False
    assert solver.degradation_stats()["total"] == 0


def test_degraded_flag_survives_renames_and_reorders(wavelengths):
    solver = CircuitSolver()
    smatrix = solver.evaluate(lossless_ring_netlist(), wavelengths)
    renamed = smatrix.renamed({"I1": "in", "O1": "out"})
    assert renamed.degraded is True
    assert renamed.reordered(("out", "in")).degraded is True


# ======================================================================
# Engine integration: stats and cache round-trip
# ======================================================================
def test_engine_counts_degradations_and_caches_the_flag(tmp_path, wavelengths):
    engine = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
    first = engine.evaluate(lossless_ring_netlist(), wavelengths)
    assert first.degraded is True
    stats = engine.stats()
    assert stats["solver_degradations"]["total"] >= 1
    assert stats["cache_nonfinite_rejected"] == 0
    # A cold cache read (fresh engine, same disk tier) keeps the flag: the
    # .npz entry persists `degraded` alongside the data.
    reread = ExecutionEngine(EngineConfig(cache_dir=tmp_path)).evaluate(
        lossless_ring_netlist(), wavelengths
    )
    assert reread.degraded is True
    assert np.array_equal(reread.data, first.data)


def test_cache_refuses_nonfinite_results(tmp_path, wavelengths):
    cache = SimulationCache(max_entries=8, cache_dir=tmp_path)
    data = np.ones((len(wavelengths), 2, 2), dtype=complex)
    data[0, 0, 0] = np.nan
    poisoned = SMatrix(wavelengths, ("I1", "O1"), data)
    cache.put("poisoned-key", poisoned)
    assert cache.get("poisoned-key") is None  # nothing persisted, any tier
    assert cache.nonfinite_rejected == 1
    assert list(tmp_path.glob("*.npz")) == []
    # Finite data is unaffected.
    cache.put("clean-key", SMatrix(wavelengths, ("I1", "O1"), np.ones_like(data)))
    assert cache.get("clean-key") is not None


# ======================================================================
# Flag plumbing: SampleResult, report serialisation, journal round-trip
# ======================================================================
def _sample(problem="ring", **attempt_fields):
    sample = SampleResult(problem=problem, sample_index=0)
    sample.attempts.append(
        AttemptRecord(iteration=0, syntax_ok=True, functional_ok=True, **attempt_fields)
    )
    return sample


def test_sample_flags_aggregate_over_attempts():
    clean = _sample()
    assert clean.degraded is False and clean.nonfinite is False
    flagged = _sample(degraded=True)
    flagged.attempts.append(
        AttemptRecord(iteration=1, syntax_ok=True, functional_ok=False, nonfinite=True)
    )
    assert flagged.degraded is True
    assert flagged.nonfinite is True


def test_report_serialises_flags_only_when_set():
    report = EvalReport(
        model="GPT-4o",
        with_restrictions=False,
        samples_per_problem=1,
        max_feedback_iterations=0,
    )
    report.add(_sample(problem="clean"))
    report.add(_sample(problem="flagged", degraded=True, nonfinite=True))
    payload = report.to_dict()
    clean_attempt = payload["results"]["clean"][0]["attempts"][0]
    flagged_attempt = payload["results"]["flagged"][0]["attempts"][0]
    # Byte-identity invariant: a clean attempt's payload has no flag keys at
    # all, so healthy reports serialise exactly as they did pre-guardrails.
    assert "degraded" not in clean_attempt and "nonfinite" not in clean_attempt
    assert flagged_attempt["degraded"] is True
    assert flagged_attempt["nonfinite"] is True
    rebuilt = EvalReport.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt.results["flagged"][0].degraded is True
    assert rebuilt.results["flagged"][0].nonfinite is True
    assert rebuilt.results["clean"][0].degraded is False


def test_journal_round_trips_flags():
    flagged = _sample(degraded=True)
    payload = _sample_to_payload(flagged)
    assert payload[0]["degraded"] is True
    assert "nonfinite" not in payload[0]
    rebuilt = _sample_from_payload("ring", 0, json.loads(json.dumps(payload)))
    assert rebuilt.degraded is True
    assert rebuilt.nonfinite is False
    clean_payload = _sample_to_payload(_sample())
    assert "degraded" not in clean_payload[0] and "nonfinite" not in clean_payload[0]
