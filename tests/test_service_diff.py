"""Tests of the pass@k regression diff and its CI report renderers.

Built on synthetic report pairs with hand-computable pass@k values
(``samples=4, k=1`` -> multiples of 25 percentage points), so every delta
and verdict is asserted *exactly*.  The markdown renderer is pinned with
golden files under ``tests/golden/`` -- the output is deterministic by
construction (sorted entries, fixed precision, no timestamps), so the
comparison is byte for byte.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.evalkit.outcome import AttemptRecord, EvalReport, SampleResult
from repro.service import (
    JobSpec,
    ResultsStore,
    diff_reports,
    diff_runs,
    json_report,
    markdown_report,
)
from repro.service.diff import VERDICTS

GOLDEN_DIR = Path(__file__).parent / "golden"

SPEC = JobSpec(
    models=("GPT-4o",),
    restrictions=(False,),
    samples_per_problem=4,
    max_feedback_iterations=3,
    num_wavelengths=5,
    problems=("mzi_ps",),
)


def make_report(problems: dict, *, model: str = "GPT-4o", with_restrictions: bool = False) -> EvalReport:
    """Report from ``{problem: [pass-iteration or None, ...]}`` sample lists."""
    report = EvalReport(
        model=model,
        with_restrictions=with_restrictions,
        samples_per_problem=max(len(v) for v in problems.values()),
        max_feedback_iterations=3,
        pack="core",
    )
    for problem, passes in problems.items():
        for index, pass_iteration in enumerate(passes):
            sample = SampleResult(problem=problem, sample_index=index)
            last = 3 if pass_iteration is None else pass_iteration
            for iteration in range(last + 1):
                ok = pass_iteration is not None and iteration == pass_iteration
                sample.attempts.append(
                    AttemptRecord(iteration=iteration, syntax_ok=ok, functional_ok=ok)
                )
            report.add(sample)
    return report


def entry_map(diff):
    """Index a diff's entries by their stable key."""
    return {entry.key: entry for entry in diff.entries}


# ======================================================================
# Verdict mechanics
# ======================================================================
def test_identical_reports_diff_empty():
    reports = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, None, None]})}
    diff = diff_reports(reports, reports)
    assert diff.is_empty
    assert not diff.is_regression
    assert len(diff.entries) == 2 * 2 * 3 * 2, "all entries present, all unchanged"
    assert all(entry.verdict == "unchanged" for entry in diff.entries)
    assert all(entry.delta == 0.0 for entry in diff.entries)


def test_known_exact_improvement_delta():
    baseline = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, None, None]})}
    candidate = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, 0, None]})}
    diff = diff_reports(baseline, candidate)
    entry = entry_map(diff)[("GPT-4o", False, "core", "mzi_ps", "syntax", 1, 0)]
    assert entry.baseline == 50.0
    assert entry.candidate == 75.0
    assert entry.delta == 25.0, "2/4 -> 3/4 passes at k=1 is exactly +25 points"
    assert entry.verdict == "improved"
    assert not diff.is_regression


def test_known_exact_regression_delta():
    baseline = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, 0, None]})}
    candidate = {("GPT-4o", False): make_report({"mzi_ps": [0, None, None, None]})}
    diff = diff_reports(baseline, candidate)
    entry = entry_map(diff)[("GPT-4o", False, "core", "mzi_ps", "syntax", 1, 0)]
    assert entry.delta == -50.0, "3/4 -> 1/4 passes at k=1 is exactly -50 points"
    assert entry.verdict == "regressed"
    assert diff.is_regression
    assert entry in diff.regressions


def test_feedback_budget_splits_verdicts():
    """A sample passing at iteration 1 counts for EF1/EF3 but not EF0."""
    baseline = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, None, None]})}
    candidate = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, 1, None]})}
    diff = diff_reports(baseline, candidate)
    entries = entry_map(diff)
    ef0 = entries[("GPT-4o", False, "core", "mzi_ps", "syntax", 1, 0)]
    ef1 = entries[("GPT-4o", False, "core", "mzi_ps", "syntax", 1, 1)]
    assert ef0.verdict == "unchanged" and ef0.delta == 0.0
    assert ef1.verdict == "improved" and ef1.delta == 25.0


def test_tolerance_edge_is_unchanged():
    baseline = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, None, None]})}
    candidate = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, 0, None]})}
    at_edge = diff_reports(baseline, candidate, tolerance=25.0)
    assert at_edge.is_empty, "|delta| == tolerance counts as unchanged"
    below_edge = diff_reports(baseline, candidate, tolerance=24.999)
    assert not below_edge.is_empty, "just above tolerance must be flagged"


def test_negative_tolerance_raises():
    reports = {("GPT-4o", False): make_report({"mzi_ps": [0]})}
    with pytest.raises(ValueError):
        diff_reports(reports, reports, tolerance=-0.1)


def test_added_and_removed_entries():
    baseline = {
        ("GPT-4o", False): make_report({"mzi_ps": [0, None], "y_branch": [0, 0]})
    }
    candidate = {
        ("GPT-4o", False): make_report({"mzi_ps": [0, None], "ring_all_pass": [0, 0]})
    }
    diff = diff_reports(baseline, candidate)
    entries = entry_map(diff)
    removed = entries[("GPT-4o", False, "core", "y_branch", "syntax", 1, 0)]
    added = entries[("GPT-4o", False, "core", "ring_all_pass", "syntax", 1, 0)]
    assert removed.verdict == "removed"
    assert removed.candidate is None and removed.delta is None
    assert added.verdict == "added"
    assert added.baseline is None and added.delta is None
    # One-sided entries never trip the CI gate on their own ...
    assert not diff.is_regression
    # ... but they are visible in `changed` and the verdict histogram.
    counts = diff.verdict_counts()
    assert counts["added"] == counts["removed"] == 2 * 2 * 3


def test_added_model_restriction_pair():
    baseline = {("GPT-4o", False): make_report({"mzi_ps": [0, None]})}
    candidate = {
        ("GPT-4o", False): make_report({"mzi_ps": [0, None]}),
        ("GPT-4o", True): make_report({"mzi_ps": [0, 0]}, with_restrictions=True),
    }
    diff = diff_reports(baseline, candidate)
    added = [entry for entry in diff.entries if entry.with_restrictions]
    assert added and all(entry.verdict == "added" for entry in added)


def test_aggregate_row_tracks_pack_mean():
    baseline = {
        ("GPT-4o", False): make_report({"mzi_ps": [0, 0, None, None], "y_branch": [0, 0, 0, 0]})
    }
    candidate = {
        ("GPT-4o", False): make_report({"mzi_ps": [0, 0, 0, None], "y_branch": [0, 0, 0, 0]})
    }
    diff = diff_reports(baseline, candidate)
    aggregate = entry_map(diff)[("GPT-4o", False, "core", "", "syntax", 1, 0)]
    assert aggregate.problem is None
    assert aggregate.baseline == 75.0, "(50 + 100) / 2"
    assert aggregate.candidate == 87.5, "(75 + 100) / 2"
    assert aggregate.delta == 12.5
    assert aggregate.verdict == "improved"


def test_verdict_counts_cover_all_verdicts():
    baseline = {("GPT-4o", False): make_report({"mzi_ps": [0, 0], "y_branch": [0]})}
    candidate = {("GPT-4o", False): make_report({"mzi_ps": [0, None], "ring_all_pass": [0]})}
    diff = diff_reports(baseline, candidate)
    counts = diff.verdict_counts()
    assert tuple(counts) == VERDICTS
    assert sum(counts.values()) == len(diff.entries)
    assert counts["regressed"] > 0 and counts["added"] > 0 and counts["removed"] > 0


def test_entries_deterministically_ordered():
    baseline = {
        ("GPT-4o", False): make_report({"y_branch": [0], "mzi_ps": [0]}),
        ("GPT-4", False): make_report({"mzi_ps": [0]}, model="GPT-4"),
    }
    first = diff_reports(baseline, baseline)
    second = diff_reports(dict(reversed(list(baseline.items()))), baseline)
    assert [entry.key for entry in first.entries] == sorted(
        entry.key for entry in first.entries
    )
    assert [entry.key for entry in first.entries] == [
        entry.key for entry in second.entries
    ]


# ======================================================================
# Store-backed diff
# ======================================================================
def test_diff_runs_matches_diff_reports(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    baseline_reports = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, None, None]})}
    candidate_reports = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, 0, None]})}
    baseline_id, _ = store.save_run(SPEC, baseline_reports)
    candidate_id, _ = store.save_run(SPEC, candidate_reports)
    via_store = diff_runs(store, baseline_id, candidate_id, tolerance=1.0)
    in_memory = diff_reports(baseline_reports, candidate_reports, tolerance=1.0)
    assert via_store.entries == in_memory.entries
    assert via_store.baseline_id == baseline_id
    assert via_store.candidate_id == candidate_id


def test_diff_runs_unknown_run_raises(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    run_id, _ = store.save_run(SPEC, {("GPT-4o", False): make_report({"mzi_ps": [0]})})
    with pytest.raises(KeyError):
        diff_runs(store, run_id, "run-missing")


# ======================================================================
# Report renderers (golden files)
# ======================================================================
def regression_diff():
    """The fixed diff behind the golden files: one regression, one improvement."""
    baseline = {
        ("GPT-4o", False): make_report({"mzi_ps": [0, 0, 0, None], "y_branch": [0, 0, None, None]})
    }
    candidate = {
        ("GPT-4o", False): make_report({"mzi_ps": [0, None, None, None], "y_branch": [0, 0, 0, None]})
    }
    return diff_reports(
        baseline, candidate, tolerance=0.0, baseline_id="run-base", candidate_id="run-cand"
    )


def empty_diff():
    reports = {("GPT-4o", False): make_report({"mzi_ps": [0, 0, None, None]})}
    return diff_reports(reports, reports, baseline_id="run-base", candidate_id="run-base")


def check_golden(name: str, rendered: str) -> None:
    """Byte-compare against a golden file (regenerate by deleting the file)."""
    golden_path = GOLDEN_DIR / name
    if not golden_path.exists():  # pragma: no cover - regeneration path
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(rendered, encoding="utf-8")
        pytest.fail(f"golden file {name} regenerated; re-run the test")
    assert rendered == golden_path.read_text(encoding="utf-8")


def test_markdown_golden_regression():
    check_golden("diff_regression.md", markdown_report(regression_diff()))


def test_markdown_golden_empty():
    check_golden("diff_empty.md", markdown_report(empty_diff()))


def test_markdown_headline_and_order():
    page = markdown_report(regression_diff())
    assert "❌ REGRESSION" in page.splitlines()[6]
    rows = [line for line in page.splitlines() if line.startswith("| GPT-4o")]
    badges = [row.rsplit("|", 2)[-2].strip() for row in rows]
    regressed = [i for i, badge in enumerate(badges) if badge == "❌ regressed"]
    improved = [i for i, badge in enumerate(badges) if badge == "✅ improved"]
    assert regressed and improved
    assert max(regressed) < min(improved), "regressions render first"


def test_markdown_truncation_is_visible():
    diff = regression_diff()
    page = markdown_report(diff, max_rows=3)
    assert "further changed entries omitted" in page
    assert f"({len(diff.changed)} total)" in page
    assert len([line for line in page.splitlines() if line.startswith("| GPT-4o")]) == 3


def test_markdown_empty_has_no_table():
    page = markdown_report(empty_diff())
    assert "✅ No differences" in page
    assert "No changed entries." in page
    assert "## Changed entries" not in page


def test_json_report_structure():
    diff = regression_diff()
    payload = json_report(diff)
    assert payload["baseline"] == "run-base"
    assert payload["candidate"] == "run-cand"
    assert payload["is_regression"] is True
    assert payload["verdict_counts"] == diff.verdict_counts()
    assert len(payload["changed"]) == len(diff.changed)
    assert payload["changed"][0]["verdict"] == "regressed", "regressions sort first"
    json.dumps(payload)  # must be JSON-serialisable as-is


def test_json_report_empty():
    payload = json_report(empty_diff())
    assert payload["is_empty"] is True
    assert payload["is_regression"] is False
    assert payload["changed"] == []
    json.dumps(payload)
