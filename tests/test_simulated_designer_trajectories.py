"""Behavioural tests of the simulated designer's feedback trajectories.

These check the properties the Tables III/IV reproduction relies on: replay
determinism (the same conversation prefix always yields the same draft),
responsiveness to feedback, and the expected orderings between profiles.
"""

from __future__ import annotations

import pytest

from repro.bench import get_problem
from repro.evalkit import EvaluationConfig, Evaluator
from repro.llm import SimulatedDesigner, get_profile
from repro.prompts import PromptConfig
from tests.conftest import TEST_NUM_WAVELENGTHS


@pytest.fixture(scope="module")
def trajectory_evaluator():
    from repro.bench import GoldenStore

    config = EvaluationConfig(
        samples_per_problem=1,
        max_feedback_iterations=3,
        num_wavelengths=TEST_NUM_WAVELENGTHS,
        keep_responses=True,
    )
    return Evaluator(config, golden_store=GoldenStore(num_wavelengths=TEST_NUM_WAVELENGTHS))


class TestTrajectoryDeterminism:
    def test_full_trajectory_reproducible(self, trajectory_evaluator):
        problem = get_problem("optical_hybrid")
        designer = SimulatedDesigner("GPT-4", base_seed=3)
        first = trajectory_evaluator.run_sample(designer, problem, sample_index=2)
        second = trajectory_evaluator.run_sample(designer, problem, sample_index=2)
        assert [a.response_text for a in first.attempts] == [
            a.response_text for a in second.attempts
        ]
        assert [a.error_category for a in first.attempts] == [
            a.error_category for a in second.attempts
        ]

    def test_different_samples_differ(self, trajectory_evaluator):
        problem = get_problem("optical_hybrid")
        designer = SimulatedDesigner("GPT-o1-mini")
        first = trajectory_evaluator.run_sample(designer, problem, sample_index=0)
        second = trajectory_evaluator.run_sample(designer, problem, sample_index=1)
        assert (
            first.attempts[0].response_text != second.attempts[0].response_text
            or first.attempts[0].error_category != second.attempts[0].error_category
        )

    def test_initial_attempt_unaffected_by_later_feedback(self, trajectory_evaluator):
        """Iteration 0 of a trajectory equals a standalone single-shot query."""
        problem = get_problem("wdm_demux")
        designer = SimulatedDesigner("Claude 3.5 Sonnet", base_seed=7)
        trajectory = trajectory_evaluator.run_sample(designer, problem, sample_index=4)

        from repro.engine import sample_seed
        from repro.llm import system, user
        from repro.prompts import build_system_prompt, build_user_prompt

        single = designer.complete(
            [system(build_system_prompt()), user(build_user_prompt(problem.description))],
            seed=sample_seed(trajectory_evaluator.config.base_seed, problem.name, 4),
        )
        assert trajectory.attempts[0].response_text == single


class TestBehaviouralOrderings:
    @pytest.mark.parametrize("problem_name", ["mzi_ps", "benes_8x8"])
    def test_harder_problems_not_easier(self, problem_name):
        """The per-problem aptitude/difficulty machinery keeps probabilities valid."""
        profile = get_profile("GPT-4")
        designer = SimulatedDesigner(profile)
        problem = get_problem(problem_name)
        assert 0.6 <= designer._difficulty(problem) <= 1.9
        assert designer._aptitude(problem) > 0.0

    def test_aptitude_is_stable_per_problem(self):
        designer = SimulatedDesigner("GPT-4o", base_seed=0)
        problem = get_problem("clements_8x8")
        assert designer._aptitude(problem) == designer._aptitude(problem)

    def test_feedback_eventually_converges_for_strong_fixer(self, trajectory_evaluator):
        """With a near-perfect feedback fixer, most trajectories end in a pass."""
        from dataclasses import replace

        profile = replace(
            get_profile("Claude 3.5 Sonnet"),
            feedback_fix_prob=0.999,
            functional_fix_prob=0.999,
            feedback_new_error_prob=0.0,
        )
        designer = SimulatedDesigner(profile)
        problems = [get_problem(name) for name in ("mzi_ps", "mzm", "direct_modulator")]
        passes = 0
        total = 0
        for problem in problems:
            for sample_index in range(8):
                sample = trajectory_evaluator.run_sample(designer, problem, sample_index)
                total += 1
                if sample.passed_within("syntax", 3):
                    passes += 1
        assert passes / total >= 0.7
