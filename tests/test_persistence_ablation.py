"""Tests for report persistence (save/load) and the restriction ablation."""

import pytest

from repro.evalkit import EvalReport
from repro.harness import (
    SweepConfig,
    SweepResult,
    restriction_ablation_text,
    run_restriction_ablation,
    run_sweep,
)
from repro.llm import DEFAULT_PROFILES, SimulatedDesigner
from repro.netlist import ErrorCategory
from tests.conftest import TEST_NUM_WAVELENGTHS

TINY_CONFIG = SweepConfig(
    samples_per_problem=2,
    max_feedback_iterations=1,
    num_wavelengths=TEST_NUM_WAVELENGTHS,
    problems=("mzi_ps", "direct_modulator"),
)


class TestReportPersistence:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep(TINY_CONFIG, profiles=DEFAULT_PROFILES[:1])

    def test_eval_report_roundtrip(self, sweep):
        report = next(iter(sweep.reports.values()))
        rebuilt = EvalReport.from_dict(report.to_dict())
        assert rebuilt.model == report.model
        for metric in ("syntax", "functional"):
            assert rebuilt.pass_at_k(1, metric=metric, max_feedback=1) == pytest.approx(
                report.pass_at_k(1, metric=metric, max_feedback=1)
            )
        assert rebuilt.error_breakdown() == report.error_breakdown()

    def test_sweep_save_and_load(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        sweep.save(path)
        reloaded = SweepResult.load(path)
        assert set(reloaded.reports) == set(sweep.reports)
        for key, report in sweep.reports.items():
            assert reloaded.reports[key].pass_at_k(
                1, metric="syntax", max_feedback=0
            ) == pytest.approx(report.pass_at_k(1, metric="syntax", max_feedback=0))

    def test_loaded_reports_render_tables(self, sweep, tmp_path):
        from repro.harness import table3_text

        path = tmp_path / "sweep.json"
        sweep.save(path)
        reloaded = SweepResult.load(path)
        assert "TABLE III" in table3_text(reloaded)


class TestRestrictionAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_restriction_ablation(
            SimulatedDesigner("GPT-4o"),
            config=TINY_CONFIG,
            categories=[ErrorCategory.EXTRA_CONTENT, ErrorCategory.WRONG_PORT],
        )

    def test_settings_include_references_and_categories(self, ablation):
        settings = ablation.settings()
        assert settings[0] == "no restrictions"
        assert settings[-1] == "all restrictions"
        assert any("Extra contents" in s for s in settings)
        assert len(settings) == 4

    def test_all_restrictions_not_worse_than_none(self, ablation):
        none_report = ablation.reports["no restrictions"]
        all_report = ablation.reports["all restrictions"]
        assert all_report.pass_at_k(1, metric="syntax", max_feedback=0) >= none_report.pass_at_k(
            1, metric="syntax", max_feedback=0
        )

    def test_rows_and_text_render(self, ablation):
        rows = ablation.rows()
        assert len(rows) == 4
        text = restriction_ablation_text(ablation)
        assert "Restriction ablation" in text
        assert "no restrictions" in text
