"""Tests for the Pass@k estimator, error classification and result records."""

import math

import pytest

from repro.evalkit import (
    AttemptRecord,
    EvalReport,
    SampleResult,
    as_picbench_error,
    classify_exception,
    mean_pass_at_k,
    pass_at_k,
)
from repro.netlist.errors import (
    DuplicateConnectionError,
    ErrorCategory,
    FunctionalError,
    WrongPortError,
)
from repro.sim.registry import UnknownModelError


class TestPassAtK:
    def test_all_pass(self):
        assert pass_at_k(5, 5, 1) == pytest.approx(1.0)

    def test_none_pass(self):
        assert pass_at_k(5, 0, 1) == pytest.approx(0.0)
        assert pass_at_k(5, 0, 5) == pytest.approx(0.0)

    def test_pass_at_1_equals_fraction(self):
        # With k=1 the estimator reduces to c/n.
        for n, c in [(5, 1), (5, 3), (10, 7)]:
            assert pass_at_k(n, c, 1) == pytest.approx(c / n)

    def test_pass_at_n_equals_any(self):
        assert pass_at_k(5, 1, 5) == pytest.approx(1.0)

    def test_known_value(self):
        # n=5, c=2, k=3: 1 - C(3,3)/C(5,3) = 1 - 1/10
        assert pass_at_k(5, 2, 3) == pytest.approx(0.9)

    def test_monotone_in_c(self):
        values = [pass_at_k(10, c, 3) for c in range(11)]
        assert values == sorted(values)

    def test_monotone_in_k(self):
        values = [pass_at_k(10, 3, k) for k in range(1, 11)]
        assert values == sorted(values)

    @pytest.mark.parametrize("n,c,k", [(0, 0, 1), (5, 6, 1), (5, 2, 0), (5, 2, 6), (5, -1, 1)])
    def test_invalid_arguments(self, n, c, k):
        with pytest.raises(ValueError):
            pass_at_k(n, c, k)

    def test_mean_pass_at_k(self):
        counts = [(5, 5), (5, 0)]
        assert mean_pass_at_k(counts, 1) == pytest.approx(0.5)

    def test_mean_requires_counts(self):
        with pytest.raises(ValueError):
            mean_pass_at_k([], 1)


class TestClassification:
    def test_picbench_error_keeps_category(self):
        assert classify_exception(DuplicateConnectionError("dup")) is ErrorCategory.DUPLICATE_CONNECTION

    def test_unknown_model_error_mapped(self):
        assert classify_exception(UnknownModelError("nope")) is ErrorCategory.UNDEFINED_MODEL

    def test_generic_exception_is_other(self):
        assert classify_exception(RuntimeError("boom")) is ErrorCategory.OTHER_SYNTAX

    def test_as_picbench_error_passthrough(self):
        original = WrongPortError("bad")
        assert as_picbench_error(original) is original

    def test_as_picbench_error_wraps_generic(self):
        wrapped = as_picbench_error(ValueError("singular matrix"))
        assert wrapped.category is ErrorCategory.OTHER_SYNTAX
        assert "singular matrix" in wrapped.detail

    def test_as_picbench_error_wraps_unknown_model(self):
        wrapped = as_picbench_error(UnknownModelError("model 'x'"))
        assert wrapped.category is ErrorCategory.UNDEFINED_MODEL

    def test_functional_category_is_not_syntax(self):
        assert not ErrorCategory.FUNCTIONAL.is_syntax
        assert ErrorCategory.WRONG_PORT.is_syntax

    def test_display_names_match_table2(self):
        assert ErrorCategory.INSTANCES_MODELS_CONFUSED.display_name == "Mess up 'Instances' and 'models' part"
        assert ErrorCategory.BAD_COMPONENT_NAME.display_name == "Wrong component name"


def make_sample(problem, outcomes):
    """Build a SampleResult from a list of (syntax_ok, functional_ok) tuples."""
    sample = SampleResult(problem=problem, sample_index=0)
    for iteration, (syntax_ok, functional_ok) in enumerate(outcomes):
        category = None
        if not syntax_ok:
            category = ErrorCategory.WRONG_PORT
        elif not functional_ok:
            category = ErrorCategory.FUNCTIONAL
        sample.attempts.append(
            AttemptRecord(
                iteration=iteration,
                syntax_ok=syntax_ok,
                functional_ok=functional_ok,
                error_category=category,
            )
        )
    return sample


class TestSampleResult:
    def test_first_pass_iteration(self):
        sample = make_sample("p", [(False, False), (True, False), (True, True)])
        assert sample.first_pass_iteration("syntax") == 1
        assert sample.first_pass_iteration("functional") == 2

    def test_never_passed(self):
        sample = make_sample("p", [(False, False), (False, False)])
        assert sample.first_pass_iteration("syntax") is None
        assert not sample.passed_within("syntax", 3)

    def test_passed_within_budget(self):
        sample = make_sample("p", [(False, False), (True, True)])
        assert not sample.passed_within("functional", 0)
        assert sample.passed_within("functional", 1)
        assert sample.passed_within("functional", 3)

    def test_error_categories(self):
        sample = make_sample("p", [(False, False), (True, False), (True, True)])
        assert sample.error_categories() == [ErrorCategory.WRONG_PORT, ErrorCategory.FUNCTIONAL]


class TestEvalReport:
    def build_report(self):
        report = EvalReport(
            model="test", with_restrictions=False, samples_per_problem=2, max_feedback_iterations=1
        )
        report.add(make_sample("a", [(True, True)]))
        report.add(make_sample("a", [(False, False), (False, False)]))
        report.add(make_sample("b", [(False, False), (True, False)]))
        report.add(make_sample("b", [(False, False), (True, True)]))
        return report

    def test_pass_at_k_aggregation(self):
        report = self.build_report()
        # Problem a: 1/2 syntax at 0 EF; problem b: 0/2 -> mean 25%.
        assert report.pass_at_k(1, metric="syntax", max_feedback=0) == pytest.approx(25.0)
        # With 1 EF problem b syntax becomes 2/2 -> mean of 0.5 and 1.0 = 75%.
        assert report.pass_at_k(1, metric="syntax", max_feedback=1) == pytest.approx(75.0)

    def test_functional_leq_syntax(self):
        report = self.build_report()
        for max_feedback in (0, 1):
            syntax = report.pass_at_k(1, metric="syntax", max_feedback=max_feedback)
            functional = report.pass_at_k(1, metric="functional", max_feedback=max_feedback)
            assert functional <= syntax

    def test_pass_at_2(self):
        report = self.build_report()
        assert report.pass_at_k(2, metric="syntax", max_feedback=0) == pytest.approx(50.0)

    def test_error_breakdown(self):
        report = self.build_report()
        breakdown = report.error_breakdown()
        assert breakdown[ErrorCategory.WRONG_PORT] == 4
        assert breakdown[ErrorCategory.FUNCTIONAL] == 1

    def test_to_dict_serialisable(self):
        import json

        report = self.build_report()
        payload = json.dumps(report.to_dict())
        assert "wrong_port" in payload
