"""Tests for the 24-problem benchmark suite (Table I)."""

import pytest

from repro.bench import (
    EXPECTED_PROBLEM_COUNT,
    Category,
    all_problems,
    get_problem,
    problem_names,
    problems_by_category,
    suite_summary,
)
from repro.netlist import validate_netlist


class TestSuiteComposition:
    def test_exactly_24_problems(self, suite):
        assert len(suite) == EXPECTED_PROBLEM_COUNT == 24

    def test_category_counts_match_table1(self):
        grouped = problems_by_category()
        assert len(grouped[Category.OPTICAL_COMPUTING]) == 6
        assert len(grouped[Category.OPTICAL_INTERCONNECTS]) == 7
        assert len(grouped[Category.OPTICAL_SWITCH]) == 9
        assert len(grouped[Category.FUNDAMENTAL_DEVICES]) == 2

    def test_problem_names_unique(self):
        names = problem_names()
        assert len(names) == len(set(names))

    @pytest.mark.parametrize(
        "name",
        [
            "clements_4x4",
            "clements_8x8",
            "reck_4x4",
            "reck_8x8",
            "nls",
            "umatrix_block",
            "direct_modulator",
            "qpsk_modulator",
            "qam8_modulator",
            "qam64_modulator",
            "wdm_mux",
            "wdm_demux",
            "optical_hybrid",
            "os_2x2",
            "crossbar_4x4",
            "crossbar_8x8",
            "spanke_4x4",
            "spanke_8x8",
            "benes_4x4",
            "benes_8x8",
            "spankebenes_4x4",
            "spankebenes_8x8",
            "mzm",
            "mzi_ps",
        ],
    )
    def test_expected_problems_present(self, name):
        problem = get_problem(name)
        assert problem.name == name

    def test_get_problem_unknown(self):
        with pytest.raises(KeyError, match="available problems"):
            get_problem("flux_capacitor")

    def test_suite_summary_fields(self):
        summary = suite_summary()
        assert len(summary) == 24
        for entry in summary:
            assert entry["golden_instances"] >= 3
            assert entry["num_inputs"] >= 1
            assert entry["num_outputs"] >= 1


class TestProblemContents:
    def test_descriptions_are_meaningful(self, suite):
        for problem in suite:
            assert len(problem.description) > 100, problem.name
            assert "Ports:" in problem.description

    def test_descriptions_are_unique(self, suite):
        descriptions = [p.description for p in suite]
        assert len(set(descriptions)) == len(descriptions)

    def test_golden_netlists_validate_against_spec(self, suite):
        for problem in suite:
            netlist = problem.golden_netlist()
            validate_netlist(netlist, port_spec=problem.port_spec)

    def test_golden_port_counts_match_spec(self, suite):
        for problem in suite:
            netlist = problem.golden_netlist()
            assert len(netlist.external_inputs()) == problem.port_spec.num_inputs
            assert len(netlist.external_outputs()) == problem.port_spec.num_outputs

    def test_golden_factory_returns_fresh_copies(self, mzi_ps_problem):
        first = mzi_ps_problem.golden_netlist()
        first.instances.clear()
        second = mzi_ps_problem.golden_netlist()
        assert second.num_instances() == 4

    def test_no_purely_device_level_problems(self, suite):
        # Section III-B: every problem involves connections among components.
        for problem in suite:
            assert problem.complexity >= 3, problem.name

    def test_instance_names_follow_rules(self, suite):
        for problem in suite:
            for name in problem.golden_netlist().instances:
                assert "_" not in name, (problem.name, name)

    def test_categories_are_canonical(self, suite):
        for problem in suite:
            assert problem.category in Category.ALL

    def test_mesh_problem_sizes(self):
        assert get_problem("clements_8x8").complexity == 28
        assert get_problem("reck_4x4").complexity == 6
        assert get_problem("benes_8x8").complexity == 20
        assert get_problem("crossbar_8x8").complexity == 64

    def test_mzi_ps_description_mentions_parameters(self, mzi_ps_problem):
        assert "10 microns" in mzi_ps_problem.description
