"""Tests for the modulator, attenuator, switch and crossing device models."""

import numpy as np
import pytest

from repro.sim.models import (
    amplifier,
    attenuator,
    crossing,
    eam,
    mzm,
    phase_modulator,
    switch1x2,
    switch2x1,
    switch2x2,
    terminator,
)


class TestMZM:
    def test_zero_drive_full_transmission(self, wavelengths):
        sm = mzm(wavelengths, voltage=0.0, bias_phase=0.0)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)

    def test_vpi_drive_extinguishes(self, wavelengths):
        sm = mzm(wavelengths, voltage=3.0, vpi=3.0)
        assert np.allclose(sm.transmission("O1", "I1"), 0.0, atol=1e-12)

    def test_quadrature_bias_half_power(self, wavelengths):
        sm = mzm(wavelengths, bias_phase=np.pi / 2)
        assert np.allclose(sm.transmission("O1", "I1"), 0.5)

    def test_null_bias_extinguishes(self, wavelengths):
        sm = mzm(wavelengths, bias_phase=np.pi)
        assert np.allclose(sm.transmission("O1", "I1"), 0.0, atol=1e-12)

    def test_invalid_vpi(self, wavelengths):
        with pytest.raises(ValueError):
            mzm(wavelengths, vpi=0.0)


class TestPhaseModulator:
    def test_magnitude_flat(self, wavelengths):
        sm = phase_modulator(wavelengths, voltage=1.7)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)

    def test_vpi_drive_gives_pi_phase(self, single_wavelength):
        off = phase_modulator(single_wavelength, voltage=0.0)
        on = phase_modulator(single_wavelength, voltage=3.0, vpi=3.0)
        delta = np.angle(off.s("O1", "I1") / on.s("O1", "I1"))[0]
        assert abs(delta) == pytest.approx(np.pi)

    def test_invalid_vpi(self, wavelengths):
        with pytest.raises(ValueError):
            phase_modulator(wavelengths, vpi=-1.0)


class TestEAMAndAttenuation:
    def test_eam_attenuation(self, wavelengths):
        sm = eam(wavelengths, attenuation_db=10.0)
        assert np.allclose(sm.transmission("O1", "I1"), 0.1)

    def test_eam_negative_attenuation_rejected(self, wavelengths):
        with pytest.raises(ValueError):
            eam(wavelengths, attenuation_db=-1.0)

    def test_attenuator(self, wavelengths):
        sm = attenuator(wavelengths, attenuation_db=3.0)
        assert np.allclose(sm.transmission("O1", "I1"), 10 ** (-0.3))

    def test_attenuator_rejects_negative(self, wavelengths):
        with pytest.raises(ValueError):
            attenuator(wavelengths, attenuation_db=-3.0)

    def test_amplifier_gain(self, wavelengths):
        sm = amplifier(wavelengths, gain_db=3.0)
        assert np.allclose(sm.transmission("O1", "I1"), 10 ** 0.3)


class TestCrossing:
    def test_straight_through_paths(self, wavelengths):
        sm = crossing(wavelengths)
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)
        assert np.allclose(sm.transmission("O2", "I2"), 1.0)
        assert np.allclose(sm.transmission("O2", "I1"), 0.0)

    def test_loss(self, wavelengths):
        sm = crossing(wavelengths, loss_db=1.0)
        assert np.allclose(sm.transmission("O1", "I1"), 10 ** (-0.1))

    def test_negative_loss_rejected(self, wavelengths):
        with pytest.raises(ValueError):
            crossing(wavelengths, loss_db=-0.5)


class TestSwitches:
    def test_switch2x2_cross_default(self, wavelengths):
        sm = switch2x2(wavelengths)
        assert np.allclose(sm.transmission("O2", "I1"), 1.0)
        assert np.allclose(sm.transmission("O1", "I2"), 1.0)

    def test_switch2x2_bar(self, wavelengths):
        sm = switch2x2(wavelengths, state="bar")
        assert np.allclose(sm.transmission("O1", "I1"), 1.0)
        assert np.allclose(sm.transmission("O2", "I2"), 1.0)

    def test_switch2x2_extinction(self, wavelengths):
        sm = switch2x2(wavelengths, state="bar", extinction_db=30.0)
        assert np.allclose(sm.transmission("O2", "I1"), 1e-3)

    def test_switch2x2_invalid_state(self, wavelengths):
        with pytest.raises(ValueError):
            switch2x2(wavelengths, state="diagonal")

    @pytest.mark.parametrize("state,on_port,off_port", [(1, "O1", "O2"), (2, "O2", "O1")])
    def test_switch1x2_states(self, wavelengths, state, on_port, off_port):
        sm = switch1x2(wavelengths, state=state)
        assert np.allclose(sm.transmission(on_port, "I1"), 1.0)
        assert np.all(sm.transmission(off_port, "I1") < 1e-5)

    def test_switch1x2_invalid_state(self, wavelengths):
        with pytest.raises(ValueError):
            switch1x2(wavelengths, state=3)

    @pytest.mark.parametrize("state,on_port", [(1, "I1"), (2, "I2")])
    def test_switch2x1_states(self, wavelengths, state, on_port):
        sm = switch2x1(wavelengths, state=state)
        assert np.allclose(sm.transmission("O1", on_port), 1.0)

    def test_switch2x1_invalid_state(self, wavelengths):
        with pytest.raises(ValueError):
            switch2x1(wavelengths, state=0)

    def test_negative_extinction_rejected(self, wavelengths):
        with pytest.raises(ValueError):
            switch2x2(wavelengths, extinction_db=-10.0)


class TestTerminator:
    def test_absorbs_everything(self, wavelengths):
        sm = terminator(wavelengths)
        assert sm.ports == ("I1",)
        assert np.allclose(sm.data, 0.0)
