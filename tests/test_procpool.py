"""Tests of process-sharded sweep execution.

Covers the generic :class:`~repro.engine.procpool.ProcessScheduler` (order
preservation, failure isolation, worker-crash containment, stats merging)
and the harness integration: process-sharded sweeps must be byte-identical
to sequential ones across every registered problem pack, in both per-unit
and batched (``batch_size > 1``) dispatch.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.bench.packs import pack_names
from repro.engine.procpool import (
    ProcessScheduler,
    UnitFailure,
    WorkerSpec,
    aggregate_engine_stats,
    resolve_processes,
)
from repro.faults import FaultRule, RetryPolicy, clear_plan, inject
from repro.harness.runner import SweepConfig, run_model, run_sweep
from repro.llm.profiles import DEFAULT_PROFILES
from repro.llm.simulated import SimulatedDesigner

#: Mirrors ``tests/conftest.TEST_NUM_WAVELENGTHS`` (not importable by module
#: name here: ``benchmarks/conftest.py`` shadows it in full-repo runs).
TEST_NUM_WAVELENGTHS = 11

#: Small per-pack sweep configurations (problem subsets / shrunk parameters)
#: keeping the differential runs fast while touching every pack's machinery.
PACK_CASES = {
    "core": dict(problems=("clements_4x4", "nls", "direct_modulator")),
    "variability": dict(pack_params={"corners": 1}),
    "wdm-links": dict(pack_params={"channels": (2,)}),
}


def _sweep_config(pack: str, **overrides) -> SweepConfig:
    kwargs = dict(
        samples_per_problem=2,
        max_feedback_iterations=1,
        num_wavelengths=TEST_NUM_WAVELENGTHS,
        pack=pack,
        **PACK_CASES[pack],
    )
    kwargs.update(overrides)
    return SweepConfig(**kwargs)


def _canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Generic scheduler: worker-side helpers (module level, importable by ref)
# ----------------------------------------------------------------------
def _build_offset_context(payload):
    return {"offset": payload["offset"]}


def _square_task(context, task):
    return context["offset"] + task * task


def _square_shard(context, tasks):
    return [context["offset"] + task * task for task in tasks]


def _flaky_task(context, task):
    if task == "boom":
        raise ValueError("poisoned unit")
    return task


def _crashing_task(context, task):
    if task == "die":
        os._exit(17)  # hard worker death: not an exception, a crash
    return task * 10


def _context_stats(context):
    return {"built": 1, "offset": context["offset"]}


OFFSET_SPEC = WorkerSpec(
    builder_ref="test_procpool:_build_offset_context", payload={"offset": 100}
)


def test_scheduler_preserves_task_order():
    scheduler = ProcessScheduler(OFFSET_SPEC, processes=2)
    tasks = list(range(17))
    results, stats = scheduler.map("test_procpool:_square_task", tasks)
    assert results == [100 + task * task for task in tasks]
    assert stats == []


def test_scheduler_shard_runner_mode():
    scheduler = ProcessScheduler(OFFSET_SPEC, processes=2)
    tasks = list(range(11))
    results, _ = scheduler.map(
        "test_procpool:_square_shard", tasks, per_task=False
    )
    assert results == [100 + task * task for task in tasks]


def test_scheduler_collects_worker_stats():
    scheduler = ProcessScheduler(OFFSET_SPEC, processes=2)
    results, stats = scheduler.map(
        "test_procpool:_square_task",
        list(range(8)),
        stats_ref="test_procpool:_context_stats",
    )
    assert results[3] == 109
    assert stats and all(snapshot["offset"] == 100 for snapshot in stats)
    assert aggregate_engine_stats(stats)["built"] == len(stats)


def test_unit_exception_is_isolated():
    scheduler = ProcessScheduler(OFFSET_SPEC, processes=2)
    tasks = ["a", "boom", "b", "c"]
    results, _ = scheduler.map("test_procpool:_flaky_task", tasks)
    assert results[0] == "a" and results[2] == "b" and results[3] == "c"
    failure = results[1]
    assert isinstance(failure, UnitFailure)
    assert not failure.crashed
    assert "poisoned unit" in failure.message
    assert isinstance(failure.exception, ValueError)
    assert "ValueError" in failure.traceback_text


def test_worker_crash_is_contained_to_the_unit():
    """A unit that kills its worker process fails alone; shard-mates survive."""
    scheduler = ProcessScheduler(OFFSET_SPEC, processes=2, shards_per_worker=1)
    tasks = [1, 2, "die", 3, 4, 5]
    results, _ = scheduler.map("test_procpool:_crashing_task", tasks)
    crash_index = tasks.index("die")
    for index, task in enumerate(tasks):
        if index == crash_index:
            assert isinstance(results[index], UnitFailure)
            assert results[index].crashed
        else:
            assert results[index] == task * 10


def test_spawn_start_method():
    """The stricter spawn path (no inherited memory) works end to end."""
    scheduler = ProcessScheduler(OFFSET_SPEC, processes=2, start_method="spawn")
    results, _ = scheduler.map("test_procpool:_square_task", [1, 2, 3])
    assert results == [101, 104, 109]


def _die_n_times_task(context, task):
    """Crash the worker while a file-latch counter is below its budget."""
    if isinstance(task, (list, tuple)) and task and task[0] == "latch":
        _, marker, deaths = task
        path = Path(marker)
        count = int(path.read_text()) if path.exists() else 0
        if count < int(deaths):
            path.write_text(str(count + 1))
            os._exit(23)
        return "survived"
    return task


def _hanging_task(context, task):
    if task == "hang":
        time.sleep(60.0)
    return task


def test_transiently_crashing_unit_is_retried_to_success(tmp_path):
    """A unit that kills its first two workers succeeds within its budget."""
    scheduler = ProcessScheduler(
        OFFSET_SPEC,
        processes=1,
        retry_policy=RetryPolicy(attempts=3, base_delay=0.0),
    )
    marker = tmp_path / "deaths"
    tasks = ["a", ("latch", str(marker), 2), "b"]
    results, _ = scheduler.map("test_procpool:_die_n_times_task", tasks)
    assert results == ["a", "survived", "b"]
    assert scheduler.counters["unit_crashes"] >= 2
    assert scheduler.counters["unit_retries"] >= 1
    assert int(marker.read_text()) == 2


def test_persistently_crashing_unit_exhausts_its_budget(tmp_path):
    """A unit that keeps killing workers fails alone, within bounded attempts."""
    scheduler = ProcessScheduler(
        OFFSET_SPEC,
        processes=1,
        retry_policy=RetryPolicy(attempts=2, base_delay=0.0),
    )
    marker = tmp_path / "deaths"
    tasks = ["a", ("latch", str(marker), 99), "b"]
    results, _ = scheduler.map("test_procpool:_die_n_times_task", tasks)
    assert results[0] == "a" and results[2] == "b"
    failure = results[1]
    assert isinstance(failure, UnitFailure) and failure.crashed
    # Original shard run + exactly `attempts` isolated re-runs, no more.
    assert int(marker.read_text()) == 3


def test_watchdog_kills_hung_workers_and_bounds_the_unit(tmp_path):
    """A hung unit is killed by the watchdog; its shard-mates survive."""
    scheduler = ProcessScheduler(
        OFFSET_SPEC,
        processes=1,
        unit_timeout=0.4,
        retry_policy=RetryPolicy(attempts=2, base_delay=0.0),
    )
    start = time.monotonic()
    results, _ = scheduler.map("test_procpool:_hanging_task", ["a", "hang", "b"])
    elapsed = time.monotonic() - start
    assert elapsed < 30.0  # far below the 60s sleep: the watchdog fired
    assert results[0] == "a" and results[2] == "b"
    failure = results[1]
    assert isinstance(failure, UnitFailure)
    assert failure.crashed and failure.timed_out
    assert scheduler.counters["shard_timeouts"] >= 1
    assert scheduler.counters["unit_timeouts"] >= 1


def test_injected_worker_kills_are_recovered():
    """A `procpool.unit=kill` chaos plan loses workers; every unit recovers."""
    clear_plan()
    scheduler = ProcessScheduler(
        OFFSET_SPEC,
        processes=1,
        start_method="fork",  # workers must inherit the injected plan
        retry_policy=RetryPolicy(attempts=3, base_delay=0.0),
    )
    tasks = list(range(8))
    with inject(FaultRule("procpool.unit", kind="kill", after=2)):
        results, _ = scheduler.map("test_procpool:_square_task", tasks)
    clear_plan()
    assert results == [100 + task * task for task in tasks]
    assert scheduler.counters["unit_crashes"] >= 1


def test_shard_bounds_partition():
    bounds = ProcessScheduler.shard_bounds(10, 4)
    assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]
    assert ProcessScheduler.shard_bounds(2, 8) == [(0, 1), (1, 2)]
    assert ProcessScheduler.shard_bounds(5, 1) == [(0, 5)]


def test_resolve_processes():
    assert resolve_processes(3) == 3
    assert resolve_processes(0) >= 1


def test_aggregate_engine_stats_sums_and_recomputes_rates():
    worker_a = {
        "workers": 1,
        "execution_mode": "thread",
        "simulation_cache": {"hits": 3, "misses": 1},
        "simulation_hit_rate": 0.75,
        "solver_batch": {"samples": 4, "executor_passes": 2, "fusion_rate": 0.5},
    }
    worker_b = {
        "workers": 1,
        "execution_mode": "thread",
        "simulation_cache": {"hits": 1, "misses": 3},
        "simulation_hit_rate": 0.25,
        "solver_batch": {"samples": 0, "executor_passes": 0, "fusion_rate": 0.0},
    }
    merged = aggregate_engine_stats([worker_a, worker_b])
    assert merged["workers"] == 1  # descriptive, not summed
    assert merged["simulation_cache"] == {"hits": 4, "misses": 4}
    assert merged["simulation_hit_rate"] == 0.5  # recomputed, not averaged
    assert merged["solver_batch"]["samples"] == 4
    assert merged["batch_fusion_rate"] == 0.5
    assert aggregate_engine_stats([]) == {}


# ----------------------------------------------------------------------
# Harness integration: byte-identity with the sequential path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pack", sorted(pack_names()))
def test_process_sweep_is_byte_identical_per_pack(pack):
    config = _sweep_config(pack)
    sequential = run_sweep(config, restriction_settings=(False, True))
    process = run_sweep(
        _sweep_config(pack, execution_mode="process", processes=2),
        restriction_settings=(False, True),
    )
    assert _canonical(process) == _canonical(sequential)
    assert process.engine_stats is not None
    assert process.engine_stats["simulation_cache"]["misses"] > 0


def test_process_sweep_batched_dispatch_is_byte_identical():
    sequential = run_sweep(_sweep_config("core"), restriction_settings=(False,))
    batched = run_sweep(
        _sweep_config("core", execution_mode="process", processes=2, batch_size=4),
        restriction_settings=(False,),
    )
    assert _canonical(batched) == _canonical(sequential)


def test_process_sweep_shares_disk_caches(tmp_path):
    config = _sweep_config(
        "core", execution_mode="process", processes=2, cache_dir=str(tmp_path)
    )
    result = run_sweep(config, restriction_settings=(False,))
    assert result.engine_stats is not None
    assert list(tmp_path.glob("sim-*.npz")), "workers must persist .npz entries"
    assert list((tmp_path / "plans").glob("plan-*.pkl")), "workers must spill plans"
    # A second run starts warm from the shared directory and stays identical.
    warm = run_sweep(config, restriction_settings=(False,))
    assert _canonical(warm) == _canonical(result)
    disk = warm.engine_stats["simulation_cache"]["disk_hits"]
    assert disk + warm.engine_stats["plan_cache"]["disk_hits"] > 0


def test_run_model_process_mode_matches_thread_mode():
    report_thread = run_model(
        SimulatedDesigner(DEFAULT_PROFILES[0]),
        include_restrictions=True,
        config=_sweep_config("core"),
    )
    report_process = run_model(
        SimulatedDesigner(DEFAULT_PROFILES[0]),
        include_restrictions=True,
        config=_sweep_config("core", execution_mode="process", processes=2),
    )
    assert json.dumps(report_process.to_dict(), sort_keys=True) == json.dumps(
        report_thread.to_dict(), sort_keys=True
    )


def test_live_clients_are_rejected_in_process_mode():
    class LiveClient:
        name = "live"

        def complete(self, messages, seed=None):
            return ""

    with pytest.raises(ValueError, match="spec-constructible"):
        run_sweep(
            _sweep_config("core", execution_mode="process"),
            clients=[LiveClient()],
        )


def test_unknown_execution_mode_rejected():
    with pytest.raises(ValueError, match="execution_mode"):
        SweepConfig(execution_mode="rocket")


def test_cli_threads_execution_flags():
    from repro.harness.cli import build_parser, _sweep_config

    args = build_parser().parse_args(
        ["sweep", "--execution-mode", "process", "--processes", "3"]
    )
    config = _sweep_config(args)
    assert config.execution_mode == "process"
    assert config.processes == 3
    defaults = _sweep_config(build_parser().parse_args(["sweep"]))
    assert defaults.execution_mode == "thread"
    assert defaults.processes == 0


# ----------------------------------------------------------------------
# Forked-worker solver hygiene
# ----------------------------------------------------------------------
def _child_default_solver_check(queue):
    from repro.sim import circuit

    inherited = circuit._DEFAULT_SOLVER  # kept alive: ids stay distinct
    rebuilt = circuit.default_solver()
    queue.put(
        (
            inherited is not None,
            rebuilt is not inherited,
            circuit._DEFAULT_SOLVER_PID == os.getpid(),
        )
    )


def test_default_solver_is_rebuilt_in_forked_workers():
    """The module-level default solver must not be shared across processes."""
    from repro.sim.circuit import default_solver

    default_solver()  # populate the parent-side singleton before forking
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    proc = ctx.Process(target=_child_default_solver_check, args=(queue,))
    proc.start()
    inherited_present, rebuilt_fresh, pid_stamped = queue.get(timeout=30)
    proc.join(timeout=30)
    assert proc.exitcode == 0
    assert inherited_present, "fork must inherit the parent-side singleton"
    assert rebuilt_fresh, "the child must rebuild its own default solver"
    assert pid_stamped
