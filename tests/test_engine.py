"""Tests of the execution engine: caching, scheduling, and determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import get_problem
from repro.engine import (
    EngineConfig,
    ExecutionEngine,
    LRUCache,
    TaskScheduler,
    grid_fingerprint,
    netlist_fingerprint,
    registry_fingerprint,
    sample_seed,
)
from repro.harness import SweepConfig, run_sweep
from repro.netlist import Instance, Netlist
from repro.netlist.errors import PICBenchError
from repro.sim import CircuitSolver, default_registry
from tests.conftest import TEST_NUM_WAVELENGTHS


def _mzi_netlist(delta_length: float = 10.0) -> Netlist:
    return get_problem("mzi_ps").golden_netlist()


class TestFingerprints:
    def test_netlist_fingerprint_is_order_independent(self):
        netlist = _mzi_netlist()
        shuffled = Netlist(
            instances=dict(reversed(list(netlist.instances.items()))),
            connections=dict(reversed(list(netlist.connections.items()))),
            ports=dict(reversed(list(netlist.ports.items()))),
            models=dict(reversed(list(netlist.models.items()))),
        )
        assert netlist_fingerprint(netlist) == netlist_fingerprint(shuffled)

    def test_netlist_fingerprint_sees_settings(self):
        netlist = _mzi_netlist()
        changed = netlist.copy()
        next(iter(changed.instances.values())).settings["loss_db"] = 1.0
        assert netlist_fingerprint(netlist) != netlist_fingerprint(changed)

    def test_grid_fingerprint(self, wavelengths):
        assert grid_fingerprint(wavelengths) == grid_fingerprint(wavelengths.copy())
        assert grid_fingerprint(wavelengths) != grid_fingerprint(wavelengths * 1.001)

    def test_registry_fingerprint_sees_new_models(self, registry):
        modified = registry.copy()
        info = modified.get("waveguide")
        modified.register(
            type(info)(
                name="custom_wg",
                func=info.func,
                description="custom",
                input_ports=info.input_ports,
                output_ports=info.output_ports,
                parameters=info.parameters,
            )
        )
        assert registry_fingerprint(registry) != registry_fingerprint(modified)

    def test_sample_seed_mixes_problem_name(self):
        seeds = {sample_seed(0, name, 0) for name in ("mzi_ps", "mzm", "wdm_demux")}
        assert len(seeds) == 3
        assert sample_seed(0, "mzi_ps", 0) == sample_seed(0, "mzi_ps", 0)
        assert sample_seed(0, "mzi_ps", 0) != sample_seed(0, "mzi_ps", 1)
        assert sample_seed(0, "mzi_ps", 0) != sample_seed(1, "mzi_ps", 0)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_disabled_cache_never_stores(self):
        cache = LRUCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestSimulationCache:
    def test_hit_and_miss_semantics(self, wavelengths):
        engine = ExecutionEngine()
        netlist = _mzi_netlist()
        first = engine.evaluate(netlist, wavelengths)
        assert engine.cache.stats.misses == 1 and engine.cache.stats.hits == 0
        second = engine.evaluate(netlist, wavelengths)
        assert engine.cache.stats.hits == 1
        assert second is first  # served straight from the memory tier

        # A structurally identical netlist built independently also hits.
        engine.evaluate(get_problem("mzi_ps").golden_netlist(), wavelengths)
        assert engine.cache.stats.hits == 2

        # Changing the grid or the netlist misses.
        engine.evaluate(netlist, wavelengths[:5])
        changed = netlist.copy()
        next(iter(changed.instances.values())).settings["loss_db"] = 0.5
        engine.evaluate(changed, wavelengths)
        assert engine.cache.stats.misses == 3

    def test_port_spec_is_part_of_the_key(self, wavelengths):
        engine = ExecutionEngine()
        problem = get_problem("mzi_ps")
        engine.evaluate(problem.golden_netlist(), wavelengths, port_spec=problem.port_spec)
        engine.evaluate(problem.golden_netlist(), wavelengths, port_spec=None)
        assert engine.cache.stats.misses == 2

    def test_errors_are_never_cached(self, wavelengths):
        engine = ExecutionEngine()
        bad = _mzi_netlist()
        bad.connections["mmi1,O9"] = "mmi2,I9"
        for _ in range(2):
            with pytest.raises(PICBenchError):
                engine.evaluate(bad, wavelengths)
        assert len(engine.cache) == 0

    def test_disabled_cache_still_evaluates(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(cache_entries=0))
        netlist = _mzi_netlist()
        first = engine.evaluate(netlist, wavelengths)
        second = engine.evaluate(netlist, wavelengths)
        assert second is not first
        np.testing.assert_allclose(first.data, second.data)

    def test_disk_cache_round_trip(self, wavelengths, tmp_path):
        netlist = _mzi_netlist()
        warm = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
        original = warm.evaluate(netlist, wavelengths)
        assert list(tmp_path.glob("sim-*.npz"))

        cold = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
        restored = cold.evaluate(netlist, wavelengths)
        assert cold.cache.stats.disk_hits == 1
        assert restored.ports == original.ports
        np.testing.assert_allclose(restored.wavelengths, original.wavelengths)
        np.testing.assert_allclose(restored.data, original.data)

        # Promoted to memory: the next lookup does not touch the disk again.
        cold.evaluate(netlist, wavelengths)
        assert cold.cache.stats.disk_hits == 1 and cold.cache.stats.hits == 1

    def test_registry_mutation_invalidates_cached_results(self, wavelengths):
        registry = default_registry().copy()
        engine = ExecutionEngine(registry=registry)
        netlist = _mzi_netlist()
        engine.evaluate(netlist, wavelengths)

        # Replace a model under the same name: the engine must not serve the
        # result computed with the old implementation.
        base = registry.get("waveguide")

        def replacement(wl, **settings):
            return base.func(wl, **settings)

        registry.register(
            type(base)(
                name="waveguide",
                func=replacement,
                description=base.description,
                input_ports=base.input_ports,
                output_ports=base.output_ports,
                parameters=base.parameters,
            )
        )
        engine.evaluate(netlist, wavelengths)
        assert engine.cache.stats.misses == 2 and engine.cache.stats.hits == 0

    def test_cache_dir_pointing_at_a_file_fails_fast(self, tmp_path):
        bogus = tmp_path / "notadir"
        bogus.touch()
        with pytest.raises(ValueError, match="not a directory"):
            ExecutionEngine(EngineConfig(cache_dir=bogus))

    def test_io_retry_knobs_validate_and_thread_through(self):
        with pytest.raises(ValueError, match="io_retry_attempts"):
            EngineConfig(io_retry_attempts=0)
        policy = EngineConfig(io_retry_attempts=4, io_retry_backoff=0.5).io_retry_policy()
        assert policy.attempts == 4 and policy.base_delay == 0.5

    def test_corrupt_disk_entry_is_quarantined_and_recomputed(
        self, wavelengths, tmp_path
    ):
        netlist = _mzi_netlist()
        warm = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
        original = warm.evaluate(netlist, wavelengths)
        (entry,) = list(tmp_path.glob("sim-*.npz"))
        entry.write_bytes(b"definitely not a zip archive")

        cold = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
        recomputed = cold.evaluate(netlist, wavelengths)
        np.testing.assert_allclose(recomputed.data, original.data)
        assert cold.cache.stats.disk_corrupt == 1
        assert list(tmp_path.glob("sim-*.npz.corrupt"))  # moved aside for autopsy
        # The recompute rewrote a good entry under the same key: a fresh
        # engine disk-hits it cleanly.
        fresh = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
        fresh.evaluate(netlist, wavelengths)
        assert fresh.cache.stats.disk_hits == 1
        assert fresh.cache.stats.disk_corrupt == 0

    def test_stats_surface_fault_and_retry_counters(self, tmp_path):
        engine = ExecutionEngine(EngineConfig(cache_dir=tmp_path))
        stats = engine.stats()
        assert stats["faults"] == {}  # no plan installed
        cache_stats = stats["simulation_cache"]
        assert cache_stats["disk_corrupt"] == 0
        assert cache_stats["disk_retries"] == 0

    def test_injected_solver_fault_propagates_as_oserror(self, wavelengths):
        from repro.faults import FaultRule, clear_plan, inject

        clear_plan()
        engine = ExecutionEngine()
        with inject(FaultRule("solver.evaluate", max_triggers=1)):
            with pytest.raises(OSError):
                engine.evaluate(_mzi_netlist(), wavelengths)
            # The budgeted plan is spent: evaluation recovers, nothing cached
            # from the failed attempt.
            result = engine.evaluate(_mzi_netlist(), wavelengths)
        clear_plan()
        assert result is not None


class TestInstanceSubCache:
    def test_repeated_devices_evaluated_once(self, wavelengths):
        calls = []
        registry = default_registry().copy()
        base = registry.get("waveguide")

        def counting_waveguide(wl, **settings):
            calls.append(settings)
            return base.func(wl, **settings)

        registry.register(
            type(base)(
                name="waveguide",
                func=counting_waveguide,
                description=base.description,
                input_ports=base.input_ports,
                output_ports=base.output_ports,
                parameters=base.parameters,
            )
        )
        solver = CircuitSolver(registry=registry)
        netlist = Netlist(
            instances={
                "wgA": Instance("waveguide", {"length": 25.0}),
                "wgB": Instance("waveguide", {"length": 25.0}),
                "wgC": Instance("waveguide", {"length": 50.0}),
            },
            connections={"wgA,O1": "wgB,I1", "wgB,O1": "wgC,I1"},
            ports={"I1": "wgA,I1", "O1": "wgC,O1"},
            models={"waveguide": "waveguide"},
        )
        solver.evaluate(netlist, wavelengths)
        assert len(calls) == 2  # two distinct (ref, settings) pairs, not three
        assert solver.instance_cache_stats().hits == 1

        solver.evaluate(netlist, wavelengths)
        assert len(calls) == 2  # the sub-cache persists across evaluate() calls

    def test_sub_cache_can_be_disabled(self, wavelengths):
        solver = CircuitSolver(instance_cache_entries=0)
        netlist = _mzi_netlist()
        solver.evaluate(netlist, wavelengths)
        solver.evaluate(netlist, wavelengths)
        assert solver.instance_cache_stats().hits == 0


class TestScheduler:
    def test_map_preserves_order(self):
        scheduler = TaskScheduler(workers=4)
        items = list(range(32))
        assert scheduler.map(lambda i: i * i, items) == [i * i for i in items]

    def test_single_worker_runs_inline(self):
        import threading

        main = threading.current_thread()
        threads = TaskScheduler(workers=1).map(lambda _: threading.current_thread(), range(4))
        assert all(t is main for t in threads)

    def test_exceptions_propagate(self):
        scheduler = TaskScheduler(workers=4)

        def boom(i):
            if i == 3:
                raise RuntimeError("unit 3 failed")
            return i

        with pytest.raises(RuntimeError, match="unit 3"):
            scheduler.map(boom, range(8))

    def test_zero_means_all_cores(self):
        assert TaskScheduler(workers=0).workers >= 1


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def sweep_pair(self):
        kwargs = dict(
            samples_per_problem=2,
            max_feedback_iterations=2,
            num_wavelengths=TEST_NUM_WAVELENGTHS,
            problems=("mzi_ps", "mzm", "wdm_demux"),
        )
        sequential = run_sweep(SweepConfig(workers=1, **kwargs))
        parallel = run_sweep(SweepConfig(workers=4, **kwargs))
        return sequential, parallel

    def test_reports_are_byte_identical(self, sweep_pair):
        sequential, parallel = sweep_pair
        assert set(sequential.reports) == set(parallel.reports)
        for key, seq_report in sequential.reports.items():
            par_report = parallel.reports[key]
            assert seq_report.to_dict() == par_report.to_dict(), key
            assert seq_report == par_report, key

    def test_serialised_sweeps_are_identical(self, sweep_pair, tmp_path):
        import json

        sequential, parallel = sweep_pair
        sequential.save(tmp_path / "seq.json")
        parallel.save(tmp_path / "par.json")
        seq_payload = json.loads((tmp_path / "seq.json").read_text())
        par_payload = json.loads((tmp_path / "par.json").read_text())
        assert seq_payload == par_payload


class TestEngineStats:
    def test_stats_snapshot_shape(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(workers=2))
        engine.evaluate(_mzi_netlist(), wavelengths)
        stats = engine.stats()
        assert stats["workers"] == 2
        assert stats["simulation_cache"]["misses"] == 1
        assert 0.0 <= stats["simulation_hit_rate"] <= 1.0
        assert "instance_cache" in stats
