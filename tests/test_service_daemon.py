"""End-to-end tests of the service daemon, its protocol, and the CLIs.

The daemon fixture runs in-process (real sockets on 127.0.0.1, ephemeral
port) against a real :class:`EvalService` on a temp database, so these
tests exercise the full acceptance path: submit over the wire -> job queue
-> shared engine sweep -> SQLite run -> result/diff ops -> CLI verbs.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.faults import RetryPolicy
from repro.harness.cli import main as harness_main
from repro.service import EvalService, JobSpec
from repro.service.cli import main as service_main
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import PROTOCOL_VERSION, ServiceDaemon

TINY = dict(
    models=("GPT-4o",),
    restrictions=(False,),
    samples_per_problem=1,
    max_feedback_iterations=1,
    num_wavelengths=5,
    problems=("mzi_ps",),
)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One shared in-process daemon (module-scoped: jobs accumulate)."""
    db = tmp_path_factory.mktemp("service") / "results.db"
    with EvalService(db, job_workers=4) as service:
        with ServiceDaemon(service) as running:
            yield running


@pytest.fixture(scope="module")
def client(daemon):
    host, port = daemon.address
    return ServiceClient(host, port)


# ======================================================================
# Protocol basics
# ======================================================================
def test_ping(client):
    response = client.ping()
    assert response["ok"] is True
    assert response["protocol"] == PROTOCOL_VERSION


def test_submit_status_poll_result(client, daemon):
    spec = JobSpec(**TINY)
    job_id = client.submit(spec)
    job = client.poll(job_id, timeout=120.0)
    assert job["state"] == "done"
    assert job["spec_fingerprint"] == spec.fingerprint()
    result = client.result(job_id)
    assert result["run_id"] == job["run_id"]
    assert result["spec"] == spec.to_dict()
    report = result["reports"]["GPT-4o|without_restrictions"]
    # The wire payload is the store's exact document.
    stored = daemon.service.store.load_report_json(job["run_id"], "GPT-4o", False)
    assert report == json.loads(stored)


def test_result_before_done_is_an_error(client):
    spec = JobSpec(**dict(TINY, samples_per_problem=2))
    job_id = client.submit(spec)
    try:
        client.result(job_id)
    except ServiceError as error:
        assert "no result" in str(error)
    finally:
        client.poll(job_id, timeout=120.0)  # leave the fixture drained


def test_cancel_queued_job_via_protocol(tmp_path):
    # A dedicated single-worker daemon so the second job is reliably queued.
    release = threading.Event()
    with EvalService(tmp_path / "cancel.db", job_workers=1) as service:
        original = service.queue._executor

        def gated(job):
            release.wait(30.0)
            return original(job)

        service.queue._executor = gated
        with ServiceDaemon(service) as daemon:
            client = ServiceClient(*daemon.address)
            blocker = client.submit(JobSpec(**TINY))
            victim = client.submit(JobSpec(**TINY, base_seed=1))
            assert client.cancel(victim) is True
            assert client.status(victim)["state"] == "cancelled"
            assert client.cancel(victim) is False, "already terminal"
            release.set()
            assert client.poll(blocker, timeout=120.0)["state"] == "done"


def test_concurrent_submitters_all_jobs_persisted(client, daemon):
    """Acceptance: >= 4 concurrent sweep jobs, every report lands in SQLite."""
    ids, errors = [], []
    lock = threading.Lock()

    def submitter(seed):
        try:
            job_id = client.submit(JobSpec(**TINY, base_seed=100 + seed))
            with lock:
                ids.append(job_id)
        except Exception as error:  # noqa: BLE001 - surfaced via the list
            errors.append(error)

    threads = [threading.Thread(target=submitter, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == [] and len(ids) == 4
    jobs = [client.poll(job_id, timeout=300.0) for job_id in ids]
    assert all(job["state"] == "done" for job in jobs)
    store = daemon.service.store
    for job in jobs:
        run = store.load_run(job["run_id"])  # raises if the run is missing
        assert ("GPT-4o", False) in run.reports
        assert store.load_job(job["job_id"])["state"] == "done"


def test_self_diff_is_empty_via_protocol(client):
    job = client.poll(client.submit(JobSpec(**TINY, base_seed=42)), timeout=120.0)
    response = client.diff(job["run_id"], job["run_id"])
    assert response["report"]["is_empty"] is True
    assert response["report"]["is_regression"] is False
    assert "✅ No differences" in response["markdown"]


def test_runs_listing_and_fingerprint_filter(client):
    spec = JobSpec(**TINY, base_seed=77)
    job = client.poll(client.submit(spec), timeout=120.0)
    runs = client.runs()
    assert any(run["run_id"] == job["run_id"] for run in runs)
    filtered = client.runs(spec.fingerprint())
    assert [run["run_id"] for run in filtered] == [job["run_id"]]


def test_stats_op(client):
    stats = client.stats()
    assert stats["jobs"]["done"] >= 1
    assert stats["store"]["runs"] >= 1
    assert "plan_cache" in stats["engine"]
    assert stats["uptime"] > 0


# ======================================================================
# Protocol robustness
# ======================================================================
def raw_exchange(daemon, lines):
    """Send raw lines on one socket, return one parsed response per line."""
    with socket.create_connection(daemon.address, timeout=30.0) as sock:
        sock.sendall("".join(line + "\n" for line in lines).encode("utf-8"))
        handle = sock.makefile("r", encoding="utf-8")
        return [json.loads(handle.readline()) for _ in lines]


def test_unknown_op_is_an_error_not_a_disconnect(daemon):
    responses = raw_exchange(
        daemon, [json.dumps({"op": "frobnicate"}), json.dumps({"op": "ping"})]
    )
    assert responses[0]["ok"] is False
    assert "unknown op" in responses[0]["error"]
    assert responses[1]["ok"] is True, "the connection survives an unknown op"


def test_malformed_json_line_is_contained(daemon):
    responses = raw_exchange(daemon, ["this is not json", json.dumps({"op": "ping"})])
    assert responses[0]["ok"] is False
    assert responses[1]["ok"] is True, "the connection survives a bad line"


def test_non_object_request_rejected(daemon):
    responses = raw_exchange(daemon, [json.dumps(["op", "ping"])])
    assert responses[0]["ok"] is False


def test_unknown_job_id_is_an_error(client):
    with pytest.raises(ServiceError, match="job-missing"):
        client.status("job-missing")
    with pytest.raises(ServiceError):
        client.result("job-missing")


def test_pipelined_requests_one_socket(daemon):
    responses = raw_exchange(
        daemon, [json.dumps({"op": "ping"}), json.dumps({"op": "stats"}), json.dumps({"op": "ping"})]
    )
    assert [response["ok"] for response in responses] == [True, True, True]


def test_invalid_spec_in_submit_is_an_error(client):
    with pytest.raises(ServiceError, match="cache_dir"):
        client.request("submit", spec={"cache_dir": "/tmp/x"})


def test_idle_connection_gets_structured_timeout(tmp_path):
    """A silent connection is answered with an idle-timeout error, then closed."""
    with EvalService(tmp_path / "idle.db", job_workers=1) as service:
        with ServiceDaemon(service, idle_timeout=0.2) as daemon:
            with socket.create_connection(daemon.address, timeout=30.0) as sock:
                handle = sock.makefile("r", encoding="utf-8")
                start = time.monotonic()
                response = json.loads(handle.readline())
                assert time.monotonic() - start >= 0.2
                assert response["ok"] is False
                assert "idle timeout" in response["error"]
                assert handle.readline() == ""  # the daemon closed the socket


def test_active_connection_is_not_idle_timed_out(tmp_path):
    with EvalService(tmp_path / "busy.db", job_workers=1) as service:
        with ServiceDaemon(service, idle_timeout=0.5) as daemon:
            with socket.create_connection(daemon.address, timeout=30.0) as sock:
                handle = sock.makefile("r", encoding="utf-8")
                for _ in range(3):
                    time.sleep(0.2)  # under the limit every time
                    sock.sendall(b'{"op": "ping"}\n')
                    assert json.loads(handle.readline())["ok"] is True


def test_oversized_request_is_rejected_but_connection_survives(tmp_path):
    with EvalService(tmp_path / "big.db", job_workers=1) as service:
        with ServiceDaemon(service, max_request_bytes=256) as daemon:
            huge = json.dumps({"op": "ping", "padding": "x" * 4096})
            responses = raw_exchange(daemon, [huge, json.dumps({"op": "ping"})])
            assert responses[0]["ok"] is False
            assert "exceeds 256 bytes" in responses[0]["error"]
            assert responses[1]["ok"] is True, "the connection keeps serving"


def test_request_size_cap_validation(tmp_path):
    with EvalService(tmp_path / "cap.db", job_workers=1) as service:
        with pytest.raises(ValueError, match="max_request_bytes"):
            ServiceDaemon(service, max_request_bytes=0)


def test_injected_request_fault_is_a_structured_error(tmp_path):
    """A `daemon.request` fault surfaces as an error response, not a hangup."""
    from repro.faults import FaultRule, clear_plan, inject

    clear_plan()
    with EvalService(tmp_path / "chaos.db", job_workers=1) as service:
        with ServiceDaemon(service) as daemon:
            with inject(FaultRule("daemon.request", max_triggers=1)):
                responses = raw_exchange(
                    daemon, [json.dumps({"op": "ping"}), json.dumps({"op": "ping"})]
                )
    clear_plan()
    assert responses[0]["ok"] is False
    assert "FaultInjected" in responses[0]["error"]
    assert responses[1]["ok"] is True, "the connection survives the injection"


def test_shutdown_op_stops_daemon(tmp_path):
    with EvalService(tmp_path / "stop.db", job_workers=1) as service:
        daemon = ServiceDaemon(service)
        host, port = daemon.start()
        # attempts=1: the probe loop must see the refusal, not retry past it.
        client = ServiceClient(host, port, retry=RetryPolicy(attempts=1))
        client.shutdown()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                client.ping()
                time.sleep(0.05)
            except ServiceError as error:
                assert error.transport  # wrapped ConnectionError, not a daemon reply
                break
        else:
            pytest.fail("the daemon kept serving after the shutdown op")
        daemon.stop()  # idempotent


# ======================================================================
# CLI front doors (in-process)
# ======================================================================
def cli_port(daemon) -> str:
    return str(daemon.address[1])


def test_cli_submit_wait_and_status(daemon, capsys):
    exit_code = service_main(
        [
            "jobs", "--port", cli_port(daemon), "submit",
            "--models", "GPT-4o", "--restrictions", "without",
            "--samples", "1", "--feedback", "1", "--wavelengths", "5",
            "--problems", "mzi_ps", "--seed", "55", "--wait",
        ]
    )
    assert exit_code == 0
    job = json.loads(capsys.readouterr().out)
    assert job["state"] == "done"
    assert service_main(["jobs", "--port", cli_port(daemon), "status", job["job_id"]]) == 0
    assert json.loads(capsys.readouterr().out)["state"] == "done"


def test_cli_list_runs_stats(daemon, capsys):
    for verb in ("list", "runs", "stats"):
        assert service_main(["jobs", "--port", cli_port(daemon), verb]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload, f"'{verb}' must print a non-empty JSON payload"


def test_cli_diff_self_passes_regression_gate(daemon, client, capsys):
    job = client.poll(client.submit(JobSpec(**TINY, base_seed=66)), timeout=120.0)
    exit_code = service_main(
        [
            "jobs", "--port", cli_port(daemon), "diff",
            job["run_id"], job["run_id"], "--fail-on-regression",
        ]
    )
    assert exit_code == 0
    assert "✅ No differences" in capsys.readouterr().out
    assert (
        service_main(
            [
                "jobs", "--port", cli_port(daemon), "diff",
                job["run_id"], job["run_id"], "--format", "json",
            ]
        )
        == 0
    )
    assert json.loads(capsys.readouterr().out)["is_empty"] is True


def test_cli_unreachable_daemon_exits_2(capsys):
    with socket.socket() as probe:  # grab a port that is then closed again
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    assert (
        service_main(
            ["jobs", "--port", str(dead_port), "--connect-retries", "1", "list"]
        )
        == 2
    )
    assert "could not reach the service daemon" in capsys.readouterr().err


def test_harness_cli_forwards_service_verbs(daemon, capsys):
    assert harness_main(["jobs", "--port", cli_port(daemon), "stats"]) == 0
    assert json.loads(capsys.readouterr().out)["store"]["runs"] >= 1


# ======================================================================
# Acceptance end-to-end + process mode
# ======================================================================
def test_end_to_end_acceptance(tmp_path):
    """ISSUE acceptance: daemon -> tiny core sweep -> poll -> fetch -> self-diff."""
    with EvalService(tmp_path / "e2e.db", job_workers=2) as service:
        with ServiceDaemon(service) as daemon:
            client = ServiceClient(*daemon.address)
            spec = JobSpec(
                models=("GPT-4o",),
                restrictions=(False,),
                samples_per_problem=2,
                max_feedback_iterations=1,
                num_wavelengths=5,
                problems=("mzi_ps", "mzm"),
            )
            job = client.poll(client.submit(spec), timeout=300.0)
            assert job["state"] == "done"
            result = client.result(job["job_id"])
            report = result["reports"]["GPT-4o|without_restrictions"]
            assert set(report["results"]) == {"mzi_ps", "mzm"}
            diff = client.diff(job["run_id"], job["run_id"])
            assert diff["report"]["is_empty"] is True
            counts = service.store.counts()
            assert counts["runs"] == 1 and counts["reports"] == 1
            assert counts["trajectories"] == 2 * 2 * 3 * (1 + 2)


def test_process_mode_job_through_service(tmp_path):
    """A process-mode spec dispatches onto the PR 6 procpool path."""
    with EvalService(
        tmp_path / "proc.db", cache_dir=tmp_path / "cache", job_workers=1
    ) as service:
        spec = JobSpec(**TINY, execution_mode="process", processes=2)
        job_id = service.submit(spec)
        record = service.wait(job_id, timeout=300.0)
        assert record.state.value == "done"
        run = service.store.load_run(record.run_id)
        # Process mode must produce the same bytes as a thread-mode job.
        thread_job = service.submit(JobSpec(**TINY))
        thread_record = service.wait(thread_job, timeout=300.0)
        assert record.run_id != thread_record.run_id, "different specs, different runs"
        thread_run = service.store.load_run(thread_record.run_id)
        assert (
            run.reports[("GPT-4o", False)] == thread_run.reports[("GPT-4o", False)]
        ), "execution mode must not change results"
