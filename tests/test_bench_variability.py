"""Tests for the ``variability`` problem pack and its Monte-Carlo yield API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.packs import get_pack, pack_names, unregister_pack
from repro.bench.problems import variability
from repro.bench.suite import all_problems
from repro.engine import EngineConfig, ExecutionEngine
from repro.harness.runner import SweepConfig, run_sweep
from repro.netlist.validation import validate_netlist
from repro.sim import CircuitSolver, apply_settings


@pytest.fixture(scope="module")
def pack():
    """The registered variability pack."""
    return get_pack("variability")


@pytest.fixture(scope="module")
def problems(pack):
    """The pack's default corner problems."""
    return pack.build_problems()


class TestPackRegistration:
    def test_pack_is_registered(self):
        assert "variability" in pack_names()

    def test_builtin_pack_is_protected(self):
        with pytest.raises(ValueError, match="cannot be unregistered"):
            unregister_pack("variability")

    def test_default_build_emits_three_families_per_corner(self, problems):
        corners = int(variability.DEFAULT_PARAMS["corners"])
        assert len(problems) == 3 * corners
        for corner in range(corners):
            for key in ("mzi", "ring", "wdm"):
                assert any(p.name == f"var_{key}_c{corner:02d}" for p in problems)

    def test_categories_match_declaration(self, pack, problems):
        assert set(p.category for p in problems) == set(pack.categories)

    def test_suite_enumeration_includes_the_pack(self):
        names = [p.name for p in all_problems("variability")]
        assert "var_mzi_c00" in names

    def test_corner_count_is_parametric(self, pack):
        assert len(pack.build_problems({"corners": 1})) == 3
        assert len(pack.build_problems({"corners": 5})) == 15

    def test_invalid_distribution_rejected(self, pack):
        with pytest.raises(ValueError, match="distribution"):
            pack.build_problems({"distribution": "cauchy"})

    def test_unknown_parameter_rejected(self, pack):
        with pytest.raises(KeyError):
            pack.build_problems({"draws": 5})


class TestCornerGoldens:
    def test_goldens_validate_and_simulate(self, problems, wavelengths, registry):
        solver = CircuitSolver(registry=registry)
        for problem in problems:
            netlist = problem.golden_netlist()
            validate_netlist(netlist, registry, problem.port_spec)
            smatrix = solver.evaluate(netlist, wavelengths, port_spec=problem.port_spec)
            assert smatrix.num_ports == 4

    def test_corners_are_deterministic(self, pack):
        first = pack.build_problems()
        second = pack.build_problems()
        for a, b in zip(first, second):
            assert a.description == b.description
            assert a.golden_netlist().to_json() == b.golden_netlist().to_json()

    def test_corners_actually_differ(self, problems):
        mzi = [p for p in problems if p.name.startswith("var_mzi")]
        settings = [p.golden_netlist().instances["cpIn"].settings["coupling"] for p in mzi]
        assert len(set(settings)) == len(settings)

    def test_descriptions_state_the_exact_corner_values(self, problems):
        for problem in problems:
            netlist = problem.golden_netlist()
            if problem.name.startswith("var_mzi"):
                value = netlist.instances["cpIn"].settings["coupling"]
                assert str(value) in problem.description
            elif problem.name.startswith("var_ring"):
                value = netlist.instances["cpBus"].settings["coupling"]
                assert str(value) in problem.description
            else:  # wdm: the perturbed ring radii appear verbatim
                radii = sorted(
                    inst.settings["radius"]
                    for inst in netlist.instances.values()
                    if "radius" in inst.settings
                )
                assert str(radii[0]) in problem.description

    def test_wdm_corner_uses_the_same_radii_on_both_sides(self, problems):
        for problem in problems:
            if not problem.name.startswith("var_wdm"):
                continue
            netlist = problem.golden_netlist()
            radii = [
                inst.settings["radius"]
                for inst in netlist.instances.values()
                if "radius" in inst.settings
            ]
            assert len(radii) == 4  # 2 mux + 2 demux rings
            assert sorted(radii)[0::2] == sorted(radii)[1::2]  # pairwise equal

    def test_ring_family_is_a_feedback_cluster(self, wavelengths):
        solver = CircuitSolver()
        plan = solver.cascade_plan(variability.ring_filter_nominal(), wavelengths)
        assert plan.feedback  # the explicit ring loop condenses into clusters


class TestPerturbation:
    def test_perturb_settings_only_touches_perturbable_keys(self):
        rng = np.random.default_rng(0)
        overrides = variability.perturb_settings(
            {"coupling": 0.5, "length": 100.0, "state": "cross"},
            rng,
            sigma_coupling=0.05,
            sigma_radius=0.02,
            sigma_loss_db_cm=0.5,
        )
        assert set(overrides) == {"coupling"}

    def test_draws_are_clipped_to_physical_ranges(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            overrides = variability.perturb_settings(
                {"coupling": 0.5, "radius": 5.0, "loss_db_cm": 0.1},
                rng,
                sigma_coupling=10.0,
                sigma_radius=100.0,
                sigma_loss_db_cm=10.0,
            )
            assert 0.0 <= overrides["coupling"] <= 1.0
            assert overrides["radius"] >= 0.05
            assert overrides["loss_db_cm"] >= 0.0

    def test_zero_sigma_disables_a_rule(self):
        rng = np.random.default_rng(2)
        overrides = variability.perturb_settings(
            {"coupling": 0.5, "loss_db_cm": 1.0},
            rng,
            sigma_coupling=0.0,
            sigma_radius=0.02,
            sigma_loss_db_cm=0.5,
        )
        assert "coupling" not in overrides
        assert "loss_db_cm" in overrides

    def test_monte_carlo_settings_draws_are_stable_per_index(self):
        netlist = variability.ring_filter_nominal()
        short = variability.monte_carlo_settings(netlist, 3, seed=7)
        long = variability.monte_carlo_settings(netlist, 6, seed=7)
        assert short == long[:3]

    def test_monte_carlo_settings_uniform_distribution(self):
        netlist = variability.interferometer_nominal()
        batches = variability.monte_carlo_settings(
            netlist, 4, seed=3, distribution="uniform", sigma_coupling=0.1
        )
        for overrides in batches:
            assert abs(overrides["cpIn"]["coupling"] - 0.5) <= 0.1 + 1e-12

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            variability.monte_carlo_settings(
                variability.interferometer_nominal(), 2, seed=0, distribution="pareto"
            )


class TestYield:
    def test_yield_spec_metrics(self):
        spectrum = np.array([0.1, 0.4, 0.7])
        assert variability.YieldSpec("O1", "I1", 0.0).score(spectrum) == pytest.approx(0.4)
        assert variability.YieldSpec("O1", "I1", 0.0, metric="min").score(spectrum) == 0.1
        assert variability.YieldSpec("O1", "I1", 0.0, metric="max").score(spectrum) == 0.7
        with pytest.raises(ValueError, match="metric"):
            variability.YieldSpec("O1", "I1", 0.0, metric="median").score(spectrum)

    def test_monte_carlo_yield_matches_per_sample_loop(self, wavelengths):
        netlist = variability.ring_filter_nominal()
        spec = variability.YieldSpec("O2", "I1", 0.05, metric="max")
        result = variability.monte_carlo_yield(
            netlist, spec, draws=8, seed=11, wavelengths=wavelengths
        )
        batches = variability.monte_carlo_settings(netlist, 8, seed=11)
        solver = CircuitSolver()
        expected = []
        for overrides in batches:
            smatrix = solver.evaluate(apply_settings(netlist, overrides), wavelengths)
            expected.append(spec.score(smatrix.transmission("O2", "I1")))
        assert result.draws == 8
        assert list(result.metrics) == pytest.approx(expected, abs=1e-12)
        assert result.passes == sum(1 for m in expected if m >= spec.min_transmission)
        assert 0.0 <= result.yield_fraction <= 1.0

    def test_monte_carlo_yield_through_engine_batches(self, wavelengths):
        engine = ExecutionEngine(EngineConfig(batch_size=4))
        netlist = variability.interferometer_nominal()
        spec = variability.YieldSpec("O1", "I1", 0.0)
        result = variability.monte_carlo_yield(
            netlist, spec, draws=6, seed=2, wavelengths=wavelengths, engine=engine
        )
        assert result.draws == 6
        assert engine.batch_stats().samples == 6
        assert engine.solver.batch_stats().samples == 6

    def test_zero_draws_yield_is_one(self, wavelengths):
        result = variability.monte_carlo_yield(
            variability.interferometer_nominal(),
            variability.YieldSpec("O1", "I1", 0.0),
            draws=0,
            wavelengths=wavelengths,
        )
        assert result.draws == 0
        assert result.yield_fraction == 1.0


class TestSweepIntegration:
    def test_simulated_designer_sweep_over_the_pack(self):
        config = SweepConfig(
            samples_per_problem=1,
            max_feedback_iterations=1,
            num_wavelengths=11,
            pack="variability",
            pack_params={"corners": 1},
            batch_size=4,
        )
        sweep = run_sweep(
            config, profiles=["GPT-4o"], restriction_settings=(False,)
        )
        report = sweep.report("GPT-4o", with_restrictions=False)
        assert report.pack == "variability"
        assert set(report.results) == {"var_mzi_c00", "var_ring_c00", "var_wdm_c00"}
        assert all(len(samples) == 1 for samples in report.results.values())
