"""Tests for the LLM client primitives and response splitting."""

import pytest

from repro.llm import (
    CallableLLM,
    ChatMessage,
    EchoDesigner,
    LLMClient,
    assistant,
    format_response,
    split_response,
    system,
    user,
)


class TestChatMessages:
    def test_helpers_set_roles(self):
        assert system("s").role == "system"
        assert user("u").role == "user"
        assert assistant("a").role == "assistant"

    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            ChatMessage(role="tool", content="x")

    def test_messages_are_frozen(self):
        message = user("hello")
        with pytest.raises(Exception):
            message.content = "bye"  # type: ignore[misc]


class TestCallableLLM:
    def test_wraps_function(self):
        client = CallableLLM("myModel", lambda msgs: f"saw {len(msgs)} messages")
        assert client.name == "myModel"
        assert client.complete([system("s"), user("u")]) == "saw 2 messages"

    def test_satisfies_protocol(self):
        client = CallableLLM("m", lambda msgs: "ok")
        assert isinstance(client, LLMClient)

    def test_echo_designer_satisfies_protocol(self):
        assert isinstance(EchoDesigner("fixed"), LLMClient)

    def test_seed_is_ignored(self):
        client = CallableLLM("m", lambda msgs: "ok")
        assert client.complete([user("u")], seed=123) == "ok"


class TestSplitResponse:
    def test_standard_format(self):
        text = "<analysis>\nthinking step by step\n<result>\n{\"a\": 1}"
        response = split_response(text)
        assert response.analysis == "thinking step by step"
        assert response.result == '{"a": 1}'
        assert response.has_result_marker

    def test_closing_result_tag_stripped(self):
        response = split_response("<analysis>x<result>{\"a\": 1}</result>")
        assert response.result == '{"a": 1}'

    def test_bare_json_treated_as_result(self):
        response = split_response('{"netlist": {}}')
        assert response.result == '{"netlist": {}}'
        assert response.analysis == ""
        assert not response.has_result_marker

    def test_case_insensitive_markers(self):
        response = split_response("<ANALYSIS>a<RESULT>{}")
        assert response.result == "{}"

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            split_response(None)  # type: ignore[arg-type]

    def test_format_then_split_roundtrip(self):
        text = format_response("my analysis", '{"models": {}}')
        response = split_response(text)
        assert response.analysis == "my analysis"
        assert response.result == '{"models": {}}'
