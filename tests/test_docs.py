"""Tests for the documentation satellite: docs files, docstring coverage."""

from __future__ import annotations

import importlib.util
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    """Import ``tools/check_docstrings.py`` as a module."""
    path = REPO_ROOT / "tools" / "check_docstrings.py"
    spec = importlib.util.spec_from_file_location("check_docstrings", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocstringCoverage:
    def test_bench_and_harness_meet_the_ci_threshold(self, capsys):
        checker = _load_checker()
        status = checker.main(
            [
                "--fail-under",
                "90",
                str(REPO_ROOT / "src" / "repro" / "bench"),
                str(REPO_ROOT / "src" / "repro" / "harness"),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0, out
        assert "PASSED" in out

    def test_checker_fails_on_undocumented_code(self, tmp_path, capsys):
        undocumented = tmp_path / "bare.py"
        undocumented.write_text("def f():\n    return 1\n")
        checker = _load_checker()
        assert checker.main(["--fail-under", "90", str(undocumented)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_checker_rejects_missing_target(self, capsys):
        checker = _load_checker()
        assert checker.main(["--fail-under", "90", str(REPO_ROOT / "nope.txt")]) == 2


class TestDocsFiles:
    @pytest.fixture(scope="class")
    def architecture_text(self):
        return (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")

    @pytest.fixture(scope="class")
    def authoring_text(self):
        return (REPO_ROOT / "docs" / "AUTHORING_PROBLEMS.md").read_text(encoding="utf-8")

    def test_architecture_covers_every_layer(self, architecture_text):
        for package in (
            "repro.netlist",
            "repro.sim",
            "repro.meshes",
            "repro.switching",
            "repro.bench",
            "repro.prompts",
            "repro.llm",
            "repro.evalkit",
            "repro.engine",
            "repro.harness",
        ):
            assert package in architecture_text, package

    def test_architecture_documents_the_cache_layers(self, architecture_text):
        assert "SimulationCache" in architecture_text
        assert "netlist_fingerprint" in architecture_text
        assert "GoldenStore" in architecture_text

    def test_authoring_guide_references_the_runnable_example(self, authoring_text):
        assert "examples/custom_pack.py" in authoring_text
        assert (REPO_ROOT / "examples" / "custom_pack.py").exists()

    def test_architecture_documents_batched_execution(self, architecture_text):
        assert "Batched execution" in architecture_text
        assert "evaluate_batch" in architecture_text
        assert "variability" in architecture_text
        assert "examples/monte_carlo_yield.py" in architecture_text

    def test_monte_carlo_example_runs(self, capsys):
        """The docs' Monte-Carlo yield snippet must execute end to end."""
        import runpy

        path = REPO_ROOT / "examples" / "monte_carlo_yield.py"
        module = runpy.run_path(str(path), run_name="example")
        assert module["main"]() == 0
        out = capsys.readouterr().out
        assert "yield:" in out
        assert "fused executor passes:" in out

    def test_doc_cli_commands_use_real_flags(self, authoring_text, architecture_text):
        import argparse

        from repro.harness.cli import build_parser
        from repro.service.cli import build_parser as build_service_parser

        def collect_flags(parser):
            flags = set()
            for action in parser._actions:
                flags.update(action.option_strings)
                if isinstance(action, argparse._SubParsersAction):
                    for sub in action.choices.values():
                        flags.update(collect_flags(sub))
            return flags

        known_flags = collect_flags(build_parser()) | collect_flags(
            build_service_parser()
        )
        bench_tool_flags = (  # tools/bench_to_json.py CLI, not the harness
            "--assert-speedup",
            "--assert-warm-speedup",
            "--assert-batch-speedup",
            "--assert-process-speedup",
        )
        for text in (authoring_text, architecture_text):
            for flag in re.findall(r"--[a-z-]+\b", text):
                if flag in ("--fail-under", "--verbose"):  # check_docstrings CLI
                    continue
                if flag in bench_tool_flags:
                    continue
                assert flag in known_flags, f"doc references unknown CLI flag {flag}"

    def test_doc_python_references_exist(self, architecture_text):
        import importlib

        for reference in re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", architecture_text):
            parts = reference.split(".")
            target = None
            for split in range(len(parts), 0, -1):
                try:
                    target = importlib.import_module(".".join(parts[:split]))
                except ModuleNotFoundError:
                    continue
                for attribute in parts[split:]:
                    target = getattr(target, attribute, None)
                    assert target is not None, f"doc references missing {reference}"
                break
            assert target is not None, f"doc references missing module {reference}"
