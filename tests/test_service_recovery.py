"""Durability tests: crash-safe recovery, backpressure, resilient clients.

Three layers are exercised here:

* In-process: journal-before-acknowledge submits, ``max_queued``
  backpressure with structured ``queue_full`` rejection, idempotent
  re-submission, and ``EvalService(recover=True)`` re-adopting the
  non-terminal jobs an abandoned service left in the store.
* Over the wire: the client's transport retries, ``ServiceError``
  wrapping (original exception as ``__cause__``), and a ``poll`` that
  rides out a daemon restart.
* Subprocess: the acceptance scenario -- SIGKILL a real ``serve``
  daemon with queued/running/done jobs in flight, restart it with
  ``--recover``, and require every pre-crash submission to reach DONE
  with byte-identical stored reports (thread and process modes).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.faults import FaultInjected, FaultRule, RetryPolicy, inject
from repro.service import EvalService, JobSpec, JobState, QueueFullError
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.store import ResultsStore

SRC = Path(__file__).resolve().parent.parent / "src"

TINY = dict(
    models=("GPT-4o",),
    restrictions=(False,),
    samples_per_problem=1,
    max_feedback_iterations=1,
    num_wavelengths=5,
    problems=("mzi_ps",),
)


def gate_executor(service: EvalService) -> threading.Event:
    """Block the service's workers until the returned event is set."""
    release = threading.Event()
    original = service.queue._executor

    def gated(job):
        release.wait()
        return original(job)

    service.queue._executor = gated
    return release


def wait_for_state(service: EvalService, job_id: str, state: JobState, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.status(job_id).state is state:
            return
        time.sleep(0.02)
    pytest.fail(f"job {job_id} never reached {state}")


# ======================================================================
# Journal-before-acknowledge
# ======================================================================
def test_submit_persists_job_before_acknowledging(tmp_path):
    service = EvalService(tmp_path / "ack.db", job_workers=1)
    release = gate_executor(service)
    try:
        job_id = service.submit(JobSpec(**TINY))
        # The store row exists the moment submit returned -- a crash right
        # now loses nothing.
        row = service.store.load_job(job_id)
        assert row["state"] in ("queued", "running")
        assert JobSpec.from_dict(row["spec"]).fingerprint() == JobSpec(**TINY).fingerprint()
    finally:
        release.set()
        service.close(timeout=60.0)


def test_unjournalable_submit_is_fully_rejected(tmp_path):
    service = EvalService(tmp_path / "rej.db", job_workers=1)
    release = gate_executor(service)
    try:
        with inject(FaultRule(point="service.journal")):
            with pytest.raises(FaultInjected):
                service.submit(JobSpec(**TINY))
        # Nothing half-accepted: no queued job, no store row to recover.
        assert service.queue.jobs() == []
        assert service.store.pending_jobs() == []
    finally:
        release.set()
        service.close(timeout=60.0)


# ======================================================================
# Backpressure
# ======================================================================
def test_queue_full_rejects_with_context(tmp_path):
    service = EvalService(tmp_path / "full.db", job_workers=1, max_queued=1)
    release = gate_executor(service)
    try:
        blocker = service.submit(JobSpec(**TINY))
        wait_for_state(service, blocker, JobState.RUNNING)  # off the queue
        queued = service.submit(JobSpec(**TINY, base_seed=1))
        with pytest.raises(QueueFullError) as excinfo:
            service.submit(JobSpec(**TINY, base_seed=2))
        assert excinfo.value.depth == 1
        assert excinfo.value.max_queued == 1
        # The rejected job was journaled first, then terminally cancelled:
        # a later --recover must not resurrect it.
        rejected = [
            row for row in service.store.jobs()
            if row["error"] == "rejected: queue full"
        ]
        assert len(rejected) == 1
        assert rejected[0]["state"] == "cancelled"
        assert {row["job_id"] for row in service.store.pending_jobs()} == {
            blocker,  # running at "crash time" is still recoverable work
            queued,
        }
        # Health/readiness reflect the saturated queue.
        health = service.health()
        assert health["queue_depth"] == 1
        assert health["max_queued"] == 1
        assert health["store_writable"] is True
        assert health["workers"]["alive"] == 1
        assert service.ready()["ready"] is False
        release.set()
        for job_id in (blocker, queued):
            assert service.wait(job_id, timeout=120.0).state is JobState.DONE
        assert service.ready()["ready"] is True
    finally:
        release.set()
        service.close(timeout=60.0)


def test_daemon_answers_structured_queue_full(tmp_path):
    service = EvalService(tmp_path / "wire.db", job_workers=1, max_queued=1)
    release = gate_executor(service)
    try:
        daemon = ServiceDaemon(service)
        blocker = service.submit(JobSpec(**TINY))
        wait_for_state(service, blocker, JobState.RUNNING)
        service.submit(JobSpec(**TINY, base_seed=1))
        response = daemon.dispatch(
            {"op": "submit", "spec": JobSpec(**TINY, base_seed=2).to_dict()}
        )
        assert response["ok"] is False
        assert response["error_code"] == "queue_full"
        assert response["queue_depth"] == 1
        assert response["max_queued"] == 1
        assert "full" in response["error"]
    finally:
        release.set()
        service.close(timeout=60.0)


# ======================================================================
# Idempotent re-submission
# ======================================================================
def test_idempotency_key_never_double_runs(tmp_path):
    service = EvalService(tmp_path / "idem.db", job_workers=1)
    release = gate_executor(service)
    try:
        spec = JobSpec(**TINY)
        first = service.submit(spec, idempotency_key="key-1")
        retried = service.submit(spec, idempotency_key="key-1")
        assert retried == first  # a transport retry re-lands on the same job
        fresh = service.submit(spec, idempotency_key="key-2")
        assert fresh != first  # a deliberate second submit is a second job
        assert len(service.queue.jobs()) == 2
    finally:
        release.set()
        service.close(timeout=60.0)


def test_client_submit_retry_is_idempotent(tmp_path):
    with EvalService(tmp_path / "cidem.db", job_workers=2) as service:
        with ServiceDaemon(service) as daemon:
            client = ServiceClient(*daemon.address)
            spec = JobSpec(**TINY)
            # Plain submits are separate logical calls: distinct jobs.
            a = client.submit(spec)
            b = client.submit(spec)
            assert a != b
            # Content-keyed submits collapse onto the first job.
            c = client.submit(spec, idempotent=True)
            d = client.submit(spec, idempotent=True)
            assert c == d
            for job_id in (a, b, c):
                assert client.poll(job_id, timeout=120.0)["state"] == "done"


# ======================================================================
# Crash recovery (in-process)
# ======================================================================
def test_recover_readopts_pending_jobs_byte_identically(tmp_path):
    specs = [JobSpec(**TINY, base_seed=seed) for seed in (10, 11)]
    # A reference service computes the expected stored-report bytes.
    with EvalService(tmp_path / "ref.db", cache_dir=tmp_path / "refcache") as ref:
        expected = {}
        for spec in specs:
            record = ref.wait(ref.submit(spec), timeout=120.0)
            assert record.state is JobState.DONE
            expected[spec.fingerprint()] = ref.store.load_report_json(
                record.run_id, "GPT-4o", False
            )

    # "Crash" a service mid-flight: one job RUNNING, one QUEUED, then the
    # process is abandoned (its gated workers never finish anything).
    crashed = EvalService(
        tmp_path / "crash.db", job_workers=1, cache_dir=tmp_path / "cache"
    )
    gate_executor(crashed)  # never released: the crash leaves both jobs live
    running = crashed.submit(specs[0])
    queued = crashed.submit(specs[1])
    wait_for_state(crashed, running, JobState.RUNNING)
    # No close(): a SIGKILL'd process does not get to drain.

    recovered = EvalService(
        tmp_path / "crash.db",
        job_workers=2,
        cache_dir=tmp_path / "cache",
        recover=True,
    )
    try:
        summary = recovered.health()["recovery"]
        assert summary["enabled"] is True
        assert summary["recovered"] == 2
        assert set(summary["requeued_jobs"]) == {running, queued}
        for spec, job_id in zip(specs, (running, queued)):
            record = recovered.wait(job_id, timeout=120.0)
            assert record.state is JobState.DONE
            stored = recovered.store.load_report_json(record.run_id, "GPT-4o", False)
            assert stored == expected[spec.fingerprint()]
    finally:
        recovered.close(timeout=60.0)


def test_status_falls_back_to_the_store_after_restart(tmp_path):
    db = tmp_path / "fallback.db"
    with EvalService(db) as service:
        job_id = service.submit(JobSpec(**TINY))
        assert service.wait(job_id, timeout=120.0).state is JobState.DONE
    # A fresh process: the queue never heard of the job, the store did.
    with EvalService(db, recover=True) as fresh:
        assert fresh.health()["recovery"]["recovered"] == 0  # terminal: not re-run
        record = fresh.status(job_id)
        assert record.state is JobState.DONE
        assert record.run_id is not None
        with pytest.raises(KeyError):
            fresh.status("job-truly-unknown")


# ======================================================================
# Resilient client
# ======================================================================
def test_client_wraps_transport_failures_in_service_error():
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    client = ServiceClient("127.0.0.1", dead_port, retry=RetryPolicy(attempts=1))
    with pytest.raises(ServiceError) as excinfo:
        client.ping()
    assert isinstance(excinfo.value.__cause__, ConnectionError)
    assert excinfo.value.transport is True


def test_client_retries_transient_connect_failures(tmp_path):
    with EvalService(tmp_path / "retry.db") as service:
        with ServiceDaemon(service) as daemon:
            # FaultInjected subclasses OSError -- transient under the default
            # policy -- and fires twice, so the third attempt succeeds.
            client = ServiceClient(*daemon.address, retry=RetryPolicy(attempts=3))
            with inject(FaultRule(point="client.connect", max_triggers=2)):
                assert client.ping()["ok"] is True
            # Retries exhausted: the transport failure surfaces as
            # ServiceError with the injected fault as its cause.
            impatient = ServiceClient(*daemon.address, retry=RetryPolicy(attempts=2))
            with inject(FaultRule(point="client.connect", max_triggers=2)):
                with pytest.raises(ServiceError) as excinfo:
                    impatient.ping()
            assert isinstance(excinfo.value.__cause__, FaultInjected)


def test_poll_survives_a_daemon_restart(tmp_path):
    service = EvalService(tmp_path / "restart.db", job_workers=1)
    release = gate_executor(service)
    try:
        first = ServiceDaemon(service)
        host, port = first.start()
        client = ServiceClient(host, port)
        job_id = client.submit(JobSpec(**TINY))

        outcome = {}

        def poll():
            try:
                outcome["job"] = client.poll(job_id, timeout=60.0, interval=0.05)
            except Exception as error:  # noqa: BLE001 - surfaced by the assert
                outcome["error"] = error

        poller = threading.Thread(target=poll)
        poller.start()
        time.sleep(0.3)  # let at least one status probe land
        first.stop()  # daemon gone: polls now hit connection refused
        time.sleep(0.5)
        second = ServiceDaemon(service, port=port)  # "restart" on the same port
        second.start()
        release.set()
        poller.join(timeout=90.0)
        second.stop()
        assert not poller.is_alive()
        assert outcome.get("error") is None, outcome
        assert outcome["job"]["state"] == "done"
    finally:
        release.set()
        service.close(timeout=60.0)


def test_poll_backoff_grows_and_caps():
    policy = RetryPolicy(attempts=2**31 - 1, base_delay=0.1, max_delay=2.0)
    delays = [policy.delay(i, seed="job-x") for i in range(8)]
    # Exponential growth until the cap (jitter stays within 25%)...
    assert delays[0] < delays[2] < delays[4]
    assert delays[0] < 0.2
    # ...then bounded at max_delay plus jitter headroom.
    assert all(d <= 2.0 * 1.25 for d in delays)
    assert min(delays[5:]) >= 2.0
    # Determinism: the same job id always sleeps the same schedule.
    assert delays == [policy.delay(i, seed="job-x") for i in range(8)]


# ======================================================================
# Acceptance: SIGKILL a real daemon, restart with --recover
# ======================================================================
def serve_daemon(db, cache, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("PYTHONHASHSEED", "0")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--db", str(db), "--cache-dir", str(cache), "--job-workers", "1",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise AssertionError(f"daemon died on startup: {proc.stderr.read()}")
    return proc, json.loads(line)


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_sigkilled_daemon_recovers_all_jobs(tmp_path, mode):
    base = dict(
        TINY,
        samples_per_problem=2,
        max_feedback_iterations=2,
        execution_mode=mode,
        processes=2 if mode == "process" else 0,
    )
    specs = [JobSpec(**base, base_seed=seed) for seed in (0, 1, 2)]

    # Reference bytes from an uninterrupted in-process run.
    with EvalService(tmp_path / "ref.db", cache_dir=tmp_path / "refcache") as ref:
        expected = {}
        for spec in specs:
            record = ref.wait(ref.submit(spec), timeout=300.0)
            assert record.state is JobState.DONE
            expected[spec.fingerprint()] = ref.store.load_report_json(
                record.run_id, "GPT-4o", False
            )

    db, cache = tmp_path / "results.db", tmp_path / "cache"
    proc = restarted = None
    try:
        proc, addr = serve_daemon(db, cache)
        client = ServiceClient(addr["host"], addr["port"])
        job_ids = [client.submit(specs[0])]
        first = client.poll(
            job_ids[0], timeout=300.0, interval=0.02, max_interval=0.05
        )
        assert first["state"] == "done"
        # Submit the rest and SIGKILL before they can finish: the crash
        # deterministically leaves done + in-flight + queued jobs behind.
        job_ids += [client.submit(spec) for spec in specs[1:]]
        proc.kill()  # SIGKILL: no drain, no goodbye
        proc.wait(timeout=30.0)

        restarted, addr = serve_daemon(db, cache, "--recover")
        assert addr["recovery"]["enabled"] is True
        assert addr["recovery"]["recovered"] >= 2  # the in-flight jobs
        client = ServiceClient(addr["host"], addr["port"])
        # Every pre-crash submission reaches DONE: jobs 1/2 re-adopted and
        # re-run journal-warm, job 0 answered from the store fallback.
        for job_id in job_ids:
            assert client.poll(job_id, timeout=300.0)["state"] == "done"
        statuses = {job_id: client.status(job_id) for job_id in job_ids}
        client.shutdown()
        restarted.wait(timeout=60.0)
        restarted = None

        store = ResultsStore(db)
        for spec, job_id in zip(specs, job_ids):
            stored = store.load_report_json(
                str(statuses[job_id]["run_id"]), "GPT-4o", False
            )
            assert stored == expected[spec.fingerprint()], (
                f"recovered report of {job_id} is not byte-identical"
            )
    finally:
        for p in (proc, restarted):
            if p is not None and p.poll() is None:
                p.kill()
                p.wait(timeout=30.0)
