"""Tests of the cross-process advisory file lock and its cache integration."""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro._locks import FileLock
from repro.engine.cache import SimulationCache
from repro.faults import FaultRule, clear_plan, inject
from repro.sim.sparams import SMatrix


# ----------------------------------------------------------------------
# Single-process semantics
# ----------------------------------------------------------------------
def test_acquire_release_cycle(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    assert lock.acquire()
    assert lock.held
    assert (tmp_path / "x.lock").exists()
    lock.release()
    assert not lock.held
    assert not (tmp_path / "x.lock").exists()


def test_context_manager(tmp_path):
    path = tmp_path / "x.lock"
    with FileLock(path) as lock:
        assert lock.held
        assert path.exists()
    assert not path.exists()


def test_contended_acquire_times_out(tmp_path):
    path = tmp_path / "x.lock"
    holder = FileLock(path)
    assert holder.acquire()
    contender = FileLock(path, timeout=0.05)
    start = time.monotonic()
    assert not contender.acquire()
    assert time.monotonic() - start >= 0.05
    holder.release()
    assert contender.acquire()
    contender.release()


def test_reacquire_by_same_instance_raises(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    assert lock.acquire()
    with pytest.raises(RuntimeError):
        lock.acquire()
    lock.release()


def test_stale_lock_is_broken(tmp_path):
    """A lock file left by a dead process is taken over after stale_timeout."""
    path = tmp_path / "x.lock"
    path.write_text("99999999")
    old = time.time() - 3600.0
    os.utime(path, (old, old))
    lock = FileLock(path, timeout=1.0, stale_timeout=60.0)
    assert lock.acquire()
    lock.release()


def test_fresh_foreign_lock_is_respected(tmp_path):
    """A recent lock file (live writer) is not stolen before stale_timeout."""
    path = tmp_path / "x.lock"
    path.write_text("12345")
    lock = FileLock(path, timeout=0.05, stale_timeout=60.0)
    assert not lock.acquire()
    assert path.exists()


def test_release_without_acquire_is_noop(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    lock.release()  # must not raise
    assert not lock.held


def test_broken_stale_holder_cannot_release_successor(tmp_path):
    """Token-verified release: a holder broken as stale must not unlink the
    next owner's lockfile out from under it."""
    path = tmp_path / "x.lock"
    overstayer = FileLock(path, stale_timeout=60.0)
    assert overstayer.acquire()
    old = time.time() - 3600.0
    os.utime(path, (old, old))  # the holder "hangs" past stale_timeout
    successor = FileLock(path, timeout=1.0, stale_timeout=60.0)
    assert successor.acquire()
    overstayer.release()  # finds the successor's token: leaves it alone
    assert path.exists()
    successor.release()
    assert not path.exists()


def test_injected_acquire_faults_are_retried(tmp_path):
    """A transient acquisition fault degrades to another poll, not a crash."""
    clear_plan()
    lock = FileLock(tmp_path / "x.lock", timeout=5.0)
    with inject(FaultRule("lock.acquire", max_triggers=2)) as plan:
        assert lock.acquire()
    assert plan.stats()["lock.acquire"]["triggers"] == 2
    assert plan.stats()["lock.acquire"]["evaluations"] >= 3
    lock.release()
    clear_plan()


def test_injected_acquire_faults_exhaust_to_unacquired(tmp_path):
    """Acquisition stays best-effort under permanent faults: False, no raise."""
    clear_plan()
    lock = FileLock(tmp_path / "x.lock", timeout=0.05)
    with inject(FaultRule("lock.acquire")):
        assert not lock.acquire()
    assert not (tmp_path / "x.lock").exists()
    clear_plan()


# ----------------------------------------------------------------------
# Multi-process stress
# ----------------------------------------------------------------------
def _locked_increment(lock_path: str, counter_path: str, rounds: int) -> None:
    """Read-modify-write a counter file under the lock (racy without it)."""
    for _ in range(rounds):
        with FileLock(Path(lock_path), timeout=30.0):
            value = int(Path(counter_path).read_text())
            time.sleep(0.001)  # widen the race window
            Path(counter_path).write_text(str(value + 1))


def test_lock_serialises_processes(tmp_path):
    counter = tmp_path / "counter"
    counter.write_text("0")
    rounds, workers = 5, 4
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(
            target=_locked_increment,
            args=(str(tmp_path / "c.lock"), str(counter), rounds),
        )
        for _ in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    assert int(counter.read_text()) == rounds * workers


def _takeover_contender(lock_path: str, outcome_dir: str, index: int) -> None:
    """Race to break one stale lock; the winner holds longer than the losers
    are willing to wait, so at most one contender can ever report success."""
    # stale_timeout far above the hold time: only the pre-aged seed file is
    # ever breakable, never the winner's own fresh lock.
    lock = FileLock(Path(lock_path), timeout=0.4, stale_timeout=60.0)
    if lock.acquire():
        (Path(outcome_dir) / f"winner-{index}").write_text(lock._token)
        time.sleep(1.2)  # outlast every loser's acquire window
        lock.release()


def test_stale_takeover_yields_exactly_one_owner(tmp_path):
    """Contenders racing to break the same stale lock never both own it."""
    path = tmp_path / "x.lock"
    outcomes = tmp_path / "outcomes"
    outcomes.mkdir()
    path.write_text("99999:deadcafe")  # abandoned by a "crashed" holder
    old = time.time() - 3600.0
    os.utime(path, (old, old))
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(
            target=_takeover_contender, args=(str(path), str(outcomes), index)
        )
        for index in range(2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    winners = list(outcomes.iterdir())
    assert len(winners) == 1, f"expected one owner, got {winners!r}"
    assert not path.exists()  # the winner released cleanly
    assert not list(tmp_path.glob("*.stale-*"))  # takeover left no debris


def _cache_put_worker(cache_dir: str, worker_index: int, keys: int) -> None:
    """Hammer the shared on-disk cache with same-key writes from one process."""
    cache = SimulationCache(max_entries=4, cache_dir=cache_dir)
    wavelengths = np.linspace(1.51, 1.59, 5)
    for round_index in range(3):
        for key_index in range(keys):
            data = np.full((5, 2, 2), complex(key_index + 1), dtype=complex)
            cache.put(f"key{key_index}", SMatrix(wavelengths, ("I1", "O1"), data))


def test_concurrent_cache_puts_stay_consistent(tmp_path):
    """Concurrent same-key .npz writers never corrupt the entries."""
    workers, keys = 4, 3
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_cache_put_worker, args=(str(tmp_path), index, keys))
        for index in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    # Every entry must be readable and carry the content its key implies.
    fresh = SimulationCache(max_entries=0, cache_dir=str(tmp_path))
    for key_index in range(keys):
        entry = fresh.get(f"key{key_index}")
        assert entry is not None
        assert np.all(entry.data == complex(key_index + 1))
    # No lock files are left behind once every writer has finished.
    assert not list(tmp_path.glob("*.lock"))
