"""Parsing of LLM responses into the ``<analysis>`` / ``<result>`` sections.

The system prompt (Fig. 3) instructs the model to answer with an analysis
section and a result section containing only the JSON netlist.  The evaluator
extracts the result section and feeds it to the netlist parser; a missing
result section is itself an "extra content" style failure because the output
format was not respected.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

__all__ = ["LLMResponse", "split_response", "format_response"]

_ANALYSIS_RE = re.compile(r"<analysis>(.*?)(?=<result>|\Z)", re.DOTALL | re.IGNORECASE)
_RESULT_RE = re.compile(r"<result>(.*)\Z", re.DOTALL | re.IGNORECASE)


@dataclass(frozen=True)
class LLMResponse:
    """A raw response split into its analysis and result sections."""

    raw: str
    analysis: str
    result: str

    @property
    def has_result_marker(self) -> bool:
        """True when the response contained an explicit ``<result>`` marker."""
        return "<result>" in self.raw.lower()


def split_response(text: str) -> LLMResponse:
    """Split a raw response into analysis and result sections.

    When no ``<result>`` marker is present the whole response is treated as
    the result, so that models which answer with bare JSON are still
    evaluated (the paper's restriction on extra content is enforced later by
    the netlist parser).
    """
    if not isinstance(text, str):
        raise TypeError(f"response must be a string, got {type(text).__name__}")
    analysis_match = _ANALYSIS_RE.search(text)
    result_match = _RESULT_RE.search(text)
    analysis = analysis_match.group(1).strip() if analysis_match else ""
    if result_match:
        result = result_match.group(1).strip()
        result = re.sub(r"</result>\s*\Z", "", result, flags=re.IGNORECASE).strip()
    else:
        result = text.strip()
    return LLMResponse(raw=text, analysis=analysis, result=result)


def format_response(analysis: str, result_json: str) -> str:
    """Assemble a response in the format the system prompt requires."""
    return f"<analysis>\n{analysis.strip()}\n<result>\n{result_json.strip()}"
