"""Netlist corruption operators, one per Table II failure category.

The simulated designer models an imperfect LLM by starting from the golden
netlist and injecting the error classes a real model exhibits.  Every operator
takes the current netlist (and a random generator) and returns a
:class:`MutationResult`: a possibly-modified netlist plus an optional
text-level wrapper applied after serialisation (used for the "extra content"
and "malformed JSON" classes that live at the text level rather than the
netlist level).

The operators are also reused directly by the validator tests: applying the
operator for category ``X`` to a valid netlist must make the evaluation
pipeline report category ``X``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..netlist.errors import ErrorCategory
from ..netlist.schema import Instance, Netlist, parse_endpoint
from ..sim.registry import ModelRegistry, default_registry

__all__ = [
    "MutationResult",
    "apply_syntax_mutation",
    "apply_functional_mutation",
    "SYNTAX_MUTATORS",
]


@dataclass
class MutationResult:
    """Outcome of a mutation operator."""

    netlist: Netlist
    text_wrapper: Optional[Callable[[str], str]] = None


def _rng_choice(rng: np.random.Generator, items: List[str]) -> str:
    return items[int(rng.integers(0, len(items)))]


def _connected_endpoints(netlist: Netlist) -> List[str]:
    endpoints: List[str] = []
    endpoints.extend(netlist.connections.keys())
    endpoints.extend(netlist.connections.values())
    return endpoints


# ----------------------------------------------------------------------
# Syntax mutators (one per Table II category)
# ----------------------------------------------------------------------
def _mutate_undefined_model(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Reference a model that does not exist in the built-in library."""
    mutated = netlist.copy()
    bogus_models = ["ring", "mmi", "beamsplitter", "ybranch", "dcoupler", "modulator"]
    if mutated.models and rng.random() < 0.5:
        component = _rng_choice(rng, list(mutated.models))
        mutated.models[component] = _rng_choice(rng, bogus_models)
    else:
        name = _rng_choice(rng, list(mutated.instances))
        bogus = _rng_choice(rng, bogus_models)
        mutated.instances[name] = Instance(bogus, dict(mutated.instances[name].settings))
    return MutationResult(mutated)


def _mutate_bound_io_port(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Connect an endpoint that is already exposed as a top-level port."""
    mutated = netlist.copy()
    if not mutated.ports or not mutated.instances:
        return MutationResult(mutated)
    ext_name = _rng_choice(rng, list(mutated.ports))
    exposed_endpoint = mutated.ports[ext_name]
    # Wire the exposed endpoint to some other instance port internally.
    other_instance = _rng_choice(rng, list(mutated.instances))
    mutated.connections[exposed_endpoint] = f"{other_instance},O1"
    return MutationResult(mutated)


def _mutate_instances_models_confused(
    netlist: Netlist, rng: np.random.Generator
) -> MutationResult:
    """Mix up the instances and models sections.

    The classic confusion (seen with real LLMs, per the paper) is writing the
    model binding as an instance-style object instead of a plain reference
    string, i.e. ``"mmi1x2": {"component": "mmi1x2"}`` inside ``models``.
    """
    mutated = netlist.copy()
    if mutated.models:
        component = _rng_choice(rng, list(mutated.models))
        ref = mutated.models[component]
        mutated.models[component] = {"component": ref}  # type: ignore[assignment]
    else:
        name = _rng_choice(rng, list(mutated.instances))
        mutated.models[name] = {"component": mutated.instances[name].component}  # type: ignore[assignment]
    return MutationResult(mutated)


def _mutate_extra_content(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Wrap the JSON in markdown fences and add trailing commentary."""
    def wrapper(text: str) -> str:
        return (
            "Here is the netlist you asked for:\n```json\n"
            + text
            + "\n```\nLet me know if you need any adjustment."
        )

    return MutationResult(netlist.copy(), text_wrapper=wrapper)


def _mutate_duplicate_connection(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Connect an already-connected port a second time (multi-pin net).

    Only existing connection endpoints are reused, so the injected failure is
    unambiguously a duplicate-connection error rather than a wrong-port or
    bound-I/O error.
    """
    mutated = netlist.copy()
    keys = list(mutated.connections)
    if len(keys) >= 2:
        first, second = rng.choice(len(keys), size=2, replace=False)
        # Point the second connection at the first connection's target, so that
        # target now has two drivers.
        mutated.connections[keys[int(second)]] = mutated.connections[keys[int(first)]]
    elif len(keys) == 1:
        key = keys[0]
        value = mutated.connections[key]
        mutated.connections[value] = key  # both endpoints now appear twice
    return MutationResult(mutated)


def _mutate_dangling_port(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Introduce a connection to an instance that does not exist."""
    mutated = netlist.copy()
    if not mutated.instances:
        return MutationResult(mutated)
    source = _rng_choice(rng, list(mutated.instances))
    mutated.connections[f"{source},O1"] = "floatingNode,I1"
    return MutationResult(mutated)


def _mutate_wrong_port_count(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Drop one external port (or rename it off-convention) so the count is wrong."""
    mutated = netlist.copy()
    if len(mutated.ports) > 1:
        victim = _rng_choice(rng, list(mutated.ports))
        del mutated.ports[victim]
    else:
        # A single-port netlist: renaming it to something that is neither an
        # input (I*) nor an output (O*) also violates the port specification.
        victim = _rng_choice(rng, list(mutated.ports))
        mutated.ports[f"port{len(mutated.ports)}"] = mutated.ports.pop(victim)
    return MutationResult(mutated)


def _mutate_wrong_port(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Reference a port the instance does not have (e.g. ``I2`` on an mmi1x2)."""
    mutated = netlist.copy()
    if mutated.connections and rng.random() < 0.8:
        key = _rng_choice(rng, list(mutated.connections))
        instance, _port = parse_endpoint(mutated.connections[key])
        mutated.connections[key] = f"{instance},I9"
    elif mutated.ports:
        ext = _rng_choice(rng, list(mutated.ports))
        instance, _port = parse_endpoint(mutated.ports[ext])
        mutated.ports[ext] = f"{instance},O9"
    return MutationResult(mutated)


def _mutate_bad_component_name(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Rename an instance so it contains an underscore (prohibited)."""
    mutated = netlist.copy()
    old_name = _rng_choice(rng, list(mutated.instances))
    new_name = f"{old_name}_1"

    def rename(endpoint: str) -> str:
        instance, port = parse_endpoint(endpoint)
        return f"{new_name},{port}" if instance == old_name else endpoint

    mutated.instances[new_name] = mutated.instances.pop(old_name)
    mutated.connections = {rename(k): rename(v) for k, v in mutated.connections.items()}
    mutated.ports = {name: rename(v) for name, v in mutated.ports.items()}
    return MutationResult(mutated)


def _mutate_other_syntax(netlist: Netlist, rng: np.random.Generator) -> MutationResult:
    """Emit structurally broken JSON (truncated closing braces)."""
    def wrapper(text: str) -> str:
        closing = text.rfind("}")
        return text[:closing] if closing > 0 else text + "{"

    return MutationResult(netlist.copy(), text_wrapper=wrapper)


SYNTAX_MUTATORS: Dict[ErrorCategory, Callable[[Netlist, np.random.Generator], MutationResult]] = {
    ErrorCategory.UNDEFINED_MODEL: _mutate_undefined_model,
    ErrorCategory.BOUND_IO_PORT: _mutate_bound_io_port,
    ErrorCategory.INSTANCES_MODELS_CONFUSED: _mutate_instances_models_confused,
    ErrorCategory.EXTRA_CONTENT: _mutate_extra_content,
    ErrorCategory.DUPLICATE_CONNECTION: _mutate_duplicate_connection,
    ErrorCategory.DANGLING_PORT: _mutate_dangling_port,
    ErrorCategory.WRONG_PORT_COUNT: _mutate_wrong_port_count,
    ErrorCategory.WRONG_PORT: _mutate_wrong_port,
    ErrorCategory.BAD_COMPONENT_NAME: _mutate_bad_component_name,
    ErrorCategory.OTHER_SYNTAX: _mutate_other_syntax,
}


def apply_syntax_mutation(
    netlist: Netlist, category: ErrorCategory, rng: np.random.Generator
) -> MutationResult:
    """Apply the corruption operator for one syntax error category."""
    try:
        mutator = SYNTAX_MUTATORS[category]
    except KeyError as exc:
        raise ValueError(f"no syntax mutator for category {category!r}") from exc
    return mutator(netlist, rng)


# ----------------------------------------------------------------------
# Functional mutation (syntax stays valid, the response changes)
# ----------------------------------------------------------------------
_PREFERRED_FUNCTIONAL_PARAMETERS: Tuple[str, ...] = (
    "coupling",
    "coupling_in",
    "attenuation_db",
    "radius",
    "theta",
    "delta_length",
    "bias_phase",
    "state",
    "loss_db",
    "length",
)


def apply_functional_mutation(
    netlist: Netlist,
    rng: np.random.Generator,
    registry: Optional[ModelRegistry] = None,
) -> Netlist:
    """Perturb a magnitude-affecting parameter so the response deviates.

    The mutated netlist still validates and simulates; only its frequency
    response differs from the golden design, which is exactly the "functional
    error" case of the benchmark.
    """
    registry = registry if registry is not None else default_registry()
    mutated = netlist.copy()
    candidates: List[Tuple[str, str, object]] = []
    for name, instance in mutated.instances.items():
        ref = mutated.models.get(instance.component, instance.component)
        if ref not in registry:
            continue
        parameters = registry.get(ref).parameters
        for param in _PREFERRED_FUNCTIONAL_PARAMETERS:
            if param in parameters:
                candidates.append((name, param, parameters[param]))
                break
    if not candidates:
        return mutated
    name, param, default = candidates[int(rng.integers(0, len(candidates)))]
    current = mutated.instances[name].settings.get(param, default)
    new_value: object
    if param == "state":
        # Switch states are categorical: flip bar/cross or output 1/output 2.
        if isinstance(current, str):
            new_value = "bar" if current == "cross" else "cross"
        else:
            new_value = 2 if int(current) == 1 else 1
    elif isinstance(current, (int, float)):
        if param in ("coupling", "coupling_in"):
            new_value = 0.85 if float(current) < 0.5 else 0.15
        elif param == "theta":
            new_value = float(current) + 1.2
        else:
            new_value = float(current) * 1.6 + 1.0
    else:  # non-numeric parameter: flip bar/cross style values
        new_value = "bar" if current == "cross" else "cross"
    mutated.instances[name].settings[param] = new_value
    return mutated
