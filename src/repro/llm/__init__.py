"""LLM interface: client protocol, response parsing, simulated designers and profiles."""

from .base import CallableLLM, ChatMessage, Conversation, LLMClient, assistant, system, user
from .mutations import (
    SYNTAX_MUTATORS,
    MutationResult,
    apply_functional_mutation,
    apply_syntax_mutation,
)
from .profiles import DEFAULT_PROFILES, DesignerProfile, get_profile, profile_names
from .response import LLMResponse, format_response, split_response
from .simulated import EchoDesigner, PerfectDesigner, SimulatedDesigner

__all__ = [
    "ChatMessage",
    "Conversation",
    "LLMClient",
    "CallableLLM",
    "system",
    "user",
    "assistant",
    "LLMResponse",
    "split_response",
    "format_response",
    "MutationResult",
    "SYNTAX_MUTATORS",
    "apply_syntax_mutation",
    "apply_functional_mutation",
    "DesignerProfile",
    "DEFAULT_PROFILES",
    "get_profile",
    "profile_names",
    "SimulatedDesigner",
    "PerfectDesigner",
    "EchoDesigner",
]
