"""Simulated designer models (the offline stand-in for commercial LLM APIs).

A :class:`SimulatedDesigner` behaves like a chat model evaluated by PICBench:
it receives the system prompt, the problem description and any feedback turns,
and returns an ``<analysis>`` / ``<result>`` response containing a JSON
netlist.  Internally it starts from the expert golden design and *injects*
the Table II error classes with probabilities governed by its
:class:`~repro.llm.profiles.DesignerProfile`; feedback turns remove injected
errors with the profile's fix probability.  The whole trajectory is a
deterministic function of ``(profile, problem, seed)``, so repeated calls with
a growing conversation replay the same history and extend it by one turn --
exactly how a temperature-sampled API call is used by the benchmark.

:class:`PerfectDesigner` always returns the golden design (useful for testing
the evaluation plumbing end to end), and :class:`EchoDesigner` returns a fixed
response (useful for unit tests of the parser).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..bench.problem import Problem
from ..bench.suite import find_problem_by_description
from ..netlist.errors import ErrorCategory
from ..netlist.schema import Netlist
from ..prompts.feedback import FUNCTIONAL_FEEDBACK
from ..sim.registry import ModelRegistry, default_registry
from .base import ChatMessage, Conversation
from .mutations import apply_functional_mutation, apply_syntax_mutation
from .profiles import DesignerProfile, get_profile
from .response import format_response

__all__ = ["SimulatedDesigner", "PerfectDesigner", "EchoDesigner"]

#: Canonical order in which injected error categories are applied to a draft.
_CATEGORY_ORDER: Tuple[ErrorCategory, ...] = (
    ErrorCategory.UNDEFINED_MODEL,
    ErrorCategory.INSTANCES_MODELS_CONFUSED,
    ErrorCategory.BAD_COMPONENT_NAME,
    ErrorCategory.WRONG_PORT,
    ErrorCategory.WRONG_PORT_COUNT,
    ErrorCategory.DUPLICATE_CONNECTION,
    ErrorCategory.DANGLING_PORT,
    ErrorCategory.BOUND_IO_PORT,
    ErrorCategory.EXTRA_CONTENT,
    ErrorCategory.OTHER_SYNTAX,
)

def _stable_seed(*parts: object) -> int:
    """Derive a reproducible 64-bit seed from arbitrary string-able parts."""
    digest = hashlib.sha256("||".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class _Trajectory:
    """The designer's internal state after replaying the conversation."""

    active_errors: Set[ErrorCategory]
    functional_error: bool
    iteration: int


class SimulatedDesigner:
    """A stochastic PIC designer with an imperfect-LLM behavioural profile."""

    def __init__(
        self,
        profile: DesignerProfile | str,
        *,
        registry: Optional[ModelRegistry] = None,
        base_seed: int = 0,
    ) -> None:
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.registry = registry if registry is not None else default_registry()
        self.base_seed = int(base_seed)
        self.name = self.profile.name

    # ------------------------------------------------------------------
    # Conversation introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _find_problem(messages: Conversation) -> Problem:
        """Recognise which registered problem the conversation is about.

        The first user message embeds the problem description; it is matched
        against every suite built so far (including parameter-overridden
        builds) and every registered pack's default problems, so the
        simulated designers work with any pack known to the registry.
        """
        user_messages = [m for m in messages if m.role == "user"]
        if not user_messages:
            raise ValueError("the conversation contains no user message")
        first = user_messages[0].content
        problem = find_problem_by_description(first)
        if problem is not None:
            return problem
        raise ValueError(
            "the problem description in the conversation does not match any "
            "benchmark problem of a registered pack; SimulatedDesigner only "
            "knows registered problem packs"
        )

    @staticmethod
    def _active_restrictions(messages: Conversation) -> frozenset:
        """Return the set of Table II categories whose restriction text is present.

        The designer reacts to the restrictions it can actually *see* in the
        system prompt, so ablations that include only a subset of Table II
        (``PromptConfig.restriction_categories``) only suppress the matching
        error classes.
        """
        from ..prompts.restrictions import RESTRICTIONS

        system_text = "\n".join(
            message.content for message in messages if message.role == "system"
        )
        active = {
            restriction.category
            for restriction in RESTRICTIONS
            if restriction.text in system_text
        }
        return frozenset(active)

    @staticmethod
    def _feedback_turns(messages: Conversation) -> List[str]:
        user_messages = [m for m in messages if m.role == "user"]
        return [m.content for m in user_messages[1:]]

    @staticmethod
    def _reported_category(feedback: str) -> Optional[ErrorCategory]:
        if FUNCTIONAL_FEEDBACK in feedback:
            return ErrorCategory.FUNCTIONAL
        for category in ErrorCategory:
            if category.display_name in feedback:
                return category
        return None

    # ------------------------------------------------------------------
    # Trajectory replay
    # ------------------------------------------------------------------
    def _difficulty(self, problem: Problem) -> float:
        instances = max(problem.complexity, 1)
        factor = 1.0 + self.profile.difficulty_sensitivity * np.log2(instances / 4.0 + 1.0)
        return float(np.clip(factor, 0.6, 1.9))

    def _aptitude(self, problem: Problem) -> float:
        """Per-(model, problem) aptitude factor.

        Real models are systematically stronger on some problem families than
        others; the factor is a deterministic function of the profile and the
        problem so all five samples of a problem share it (which is what keeps
        Pass@5 well below the independent-samples prediction).
        """
        rng = np.random.default_rng(
            _stable_seed(self.profile.name, problem.name, self.base_seed, "aptitude")
        )
        spread = self.profile.aptitude_spread
        return float(np.exp(rng.normal(loc=0.0, scale=spread)))

    def _replay(
        self,
        problem: Problem,
        feedback_turns: Sequence[str],
        *,
        active_restrictions: frozenset,
        seed: Optional[int],
    ) -> _Trajectory:
        from ..prompts.restrictions import RESTRICTIONS

        rng = np.random.default_rng(
            _stable_seed(self.profile.name, problem.name, self.base_seed, seed)
        )
        difficulty = self._difficulty(problem)
        aptitude = self._aptitude(problem)

        active: Set[ErrorCategory] = set()
        for category in _CATEGORY_ORDER:
            probability = self.profile.category_error_prob(
                category,
                difficulty=difficulty,
                restrictions_active=category in active_restrictions,
                aptitude=aptitude,
            )
            if rng.random() < probability:
                active.add(category)
        # The functional-error reduction scales with how much of Table II is
        # present in the prompt (the restrictions also clarify conventions).
        restriction_fraction = len(active_restrictions) / max(len(RESTRICTIONS), 1)
        functional_probability = self.profile.functional_probability(
            restrictions_active=False, aptitude=aptitude
        )
        functional_probability *= 1.0 - restriction_fraction * (
            1.0 - self.profile.restriction_functional_factor
        )
        functional = rng.random() < functional_probability

        for feedback in feedback_turns:
            reported = self._reported_category(feedback)
            if reported is ErrorCategory.FUNCTIONAL:
                if rng.random() < self.profile.functional_fix_prob:
                    functional = False
                continue
            if reported is not None and reported in active:
                if rng.random() < self.profile.feedback_fix_prob:
                    active.discard(reported)
            elif active:
                # The reported class does not match the designer's own view of
                # its mistake; the detailed message still helps some of the time.
                if rng.random() < self.profile.feedback_fix_prob * 0.7:
                    ordered = [c for c in _CATEGORY_ORDER if c in active]
                    active.discard(ordered[int(rng.integers(0, len(ordered)))])
            if rng.random() < self.profile.feedback_new_error_prob:
                candidates = [c for c in _CATEGORY_ORDER if c not in active]
                if candidates:
                    active.add(candidates[int(rng.integers(0, len(candidates)))])
        return _Trajectory(
            active_errors=active,
            functional_error=functional,
            iteration=len(feedback_turns),
        )

    # ------------------------------------------------------------------
    # Draft generation
    # ------------------------------------------------------------------
    def _render_draft(
        self,
        problem: Problem,
        trajectory: _Trajectory,
        *,
        seed: Optional[int],
    ) -> str:
        rng = np.random.default_rng(
            _stable_seed(
                self.profile.name,
                problem.name,
                self.base_seed,
                seed,
                trajectory.iteration,
                "draft",
            )
        )
        netlist: Netlist = problem.golden_netlist()
        if trajectory.functional_error:
            netlist = apply_functional_mutation(netlist, rng, self.registry)
        wrappers = []
        for category in _CATEGORY_ORDER:
            if category not in trajectory.active_errors:
                continue
            result = apply_syntax_mutation(netlist, category, rng)
            netlist = result.netlist
            if result.text_wrapper is not None:
                wrappers.append(result.text_wrapper)
        text = netlist.to_json()
        for wrapper in wrappers:
            text = wrapper(text)
        return text

    def _render_analysis(self, problem: Problem, trajectory: _Trajectory) -> str:
        if trajectory.iteration == 0:
            return (
                f"Designing {problem.title}: identified the required built-in "
                "components from the API document, instantiated them, and wired "
                "the connections and external ports according to the problem "
                "description."
            )
        return (
            f"Revised the {problem.title} netlist in response to the reported "
            "evaluation feedback and regenerated the full JSON netlist."
        )

    # ------------------------------------------------------------------
    # LLMClient interface
    # ------------------------------------------------------------------
    def complete(self, messages: Conversation, *, seed: Optional[int] = None) -> str:
        """Return the next assistant turn for a PICBench conversation."""
        problem = self._find_problem(messages)
        active_restrictions = self._active_restrictions(messages)
        feedback_turns = self._feedback_turns(messages)
        trajectory = self._replay(
            problem,
            feedback_turns,
            active_restrictions=active_restrictions,
            seed=seed,
        )
        result = self._render_draft(problem, trajectory, seed=seed)
        analysis = self._render_analysis(problem, trajectory)
        return format_response(analysis, result)


class PerfectDesigner:
    """A designer that always answers with the expert golden netlist.

    Used to validate the evaluation plumbing: every problem must pass both the
    syntax and the functionality check when evaluated against this designer.
    """

    def __init__(self, name: str = "PerfectDesigner") -> None:
        self.name = name

    def complete(self, messages: Conversation, *, seed: Optional[int] = None) -> str:
        problem = SimulatedDesigner._find_problem(messages)
        return format_response(
            f"Reproducing the expert design for {problem.title}.",
            problem.golden_netlist().to_json(),
        )


class EchoDesigner:
    """A designer that always returns a fixed, caller-supplied response."""

    def __init__(self, response: str, name: str = "EchoDesigner") -> None:
        self.name = name
        self._response = response

    def complete(self, messages: Conversation, *, seed: Optional[int] = None) -> str:
        return self._response
