"""Capability profiles of the simulated designers.

The paper evaluates five commercial LLMs (GPT-4, GPT-o1-mini, GPT-4o,
Claude 3.5 Sonnet, Gemini 1.5 Pro).  Offline we cannot call those APIs, so the
reproduction replaces each with a :class:`DesignerProfile`: a small set of
behavioural parameters that determine how often the simulated designer makes
each class of mistake, how strongly the Table II restrictions suppress those
mistakes, and how reliably simulator feedback gets acted upon.

The profiles are calibrated to reproduce the *qualitative* orderings of
Tables III and IV, not the exact percentages:

* the GPT-4-like profile has the best no-restriction, no-feedback syntax rate;
* the Claude-like profile benefits the most from error feedback;
* the Gemini-like and GPT-4o-like profiles benefit the most from restrictions;
* the o1-mini-like profile starts weakest without restrictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from ..netlist.errors import ErrorCategory

__all__ = ["DesignerProfile", "DEFAULT_PROFILES", "get_profile", "profile_names"]

#: Relative propensity of each syntax error class (shared baseline shape).
_BASE_CATEGORY_WEIGHTS: Dict[ErrorCategory, float] = {
    ErrorCategory.UNDEFINED_MODEL: 1.1,
    ErrorCategory.BOUND_IO_PORT: 0.8,
    ErrorCategory.INSTANCES_MODELS_CONFUSED: 1.0,
    ErrorCategory.EXTRA_CONTENT: 1.3,
    ErrorCategory.DUPLICATE_CONNECTION: 1.2,
    ErrorCategory.DANGLING_PORT: 0.9,
    ErrorCategory.WRONG_PORT_COUNT: 0.8,
    ErrorCategory.WRONG_PORT: 1.4,
    ErrorCategory.BAD_COMPONENT_NAME: 0.7,
    ErrorCategory.OTHER_SYNTAX: 0.5,
}


@dataclass(frozen=True)
class DesignerProfile:
    """Behavioural parameters of one simulated designer.

    Attributes
    ----------
    name:
        Report name (matches the model names in the paper's tables).
    base_error_rate:
        Baseline per-category probability scale of injecting a syntax error.
    category_weights:
        Per-category multipliers on ``base_error_rate``.
    restriction_factor:
        Multiplier applied to the error probability of a category when the
        system prompt contains the restriction addressing it (smaller is
        better; 1.0 means restrictions are ignored).
    restriction_functional_factor:
        Multiplier on the functional-error probability when restrictions are
        present (restrictions also clarify parameter conventions).
    feedback_fix_prob:
        Probability that one round of classified error feedback removes the
        reported syntax error.
    feedback_new_error_prob:
        Probability that a correction introduces one new random syntax error.
    functional_error_prob:
        Probability that an otherwise valid design deviates functionally from
        the golden response.
    functional_fix_prob:
        Probability that the concise functional feedback message leads to a
        correct revision.
    difficulty_sensitivity:
        How strongly the error rate grows with design size (0 = flat).
    aptitude_spread:
        Spread of the per-problem aptitude factor.  Real models are
        systematically better at some problems than others, which makes the
        five samples of one problem correlated and keeps Pass@5 well below the
        i.i.d. prediction; a larger spread means stronger correlation.
    """

    name: str
    base_error_rate: float
    restriction_factor: float
    feedback_fix_prob: float
    functional_error_prob: float
    functional_fix_prob: float
    feedback_new_error_prob: float = 0.05
    restriction_functional_factor: float = 0.75
    difficulty_sensitivity: float = 0.3
    aptitude_spread: float = 0.45
    category_weights: Mapping[ErrorCategory, float] = field(
        default_factory=lambda: dict(_BASE_CATEGORY_WEIGHTS)
    )

    def category_error_prob(
        self,
        category: ErrorCategory,
        *,
        difficulty: float,
        restrictions_active: bool,
        aptitude: float = 1.0,
    ) -> float:
        """Probability of injecting ``category`` into one fresh draft."""
        weight = self.category_weights.get(category, 1.0)
        probability = self.base_error_rate * weight * difficulty * aptitude
        if restrictions_active:
            probability *= self.restriction_factor
        return float(min(max(probability, 0.0), 0.95))

    def functional_probability(
        self, *, restrictions_active: bool, aptitude: float = 1.0
    ) -> float:
        """Probability that a fresh draft contains a functional deviation."""
        probability = self.functional_error_prob * (0.5 + 0.5 * aptitude)
        if restrictions_active:
            probability *= self.restriction_functional_factor
        return float(min(max(probability, 0.0), 0.98))


def _make_default_profiles() -> Tuple[DesignerProfile, ...]:
    return (
        DesignerProfile(
            name="GPT-4",
            base_error_rate=0.145,
            restriction_factor=0.80,
            feedback_fix_prob=0.62,
            functional_error_prob=0.62,
            functional_fix_prob=0.22,
        ),
        DesignerProfile(
            name="GPT-o1-mini",
            base_error_rate=0.195,
            restriction_factor=0.76,
            feedback_fix_prob=0.78,
            functional_error_prob=0.55,
            functional_fix_prob=0.30,
        ),
        DesignerProfile(
            name="GPT-4o",
            base_error_rate=0.150,
            restriction_factor=0.24,
            feedback_fix_prob=0.72,
            functional_error_prob=0.70,
            functional_fix_prob=0.30,
        ),
        DesignerProfile(
            name="Claude 3.5 Sonnet",
            base_error_rate=0.155,
            restriction_factor=0.28,
            feedback_fix_prob=0.88,
            functional_error_prob=0.85,
            functional_fix_prob=0.32,
        ),
        DesignerProfile(
            name="Gemini 1.5 pro",
            base_error_rate=0.175,
            restriction_factor=0.18,
            feedback_fix_prob=0.70,
            functional_error_prob=0.35,
            functional_fix_prob=0.28,
        ),
    )


DEFAULT_PROFILES: Tuple[DesignerProfile, ...] = _make_default_profiles()


def profile_names() -> Tuple[str, ...]:
    """Names of the five default profiles, in the paper's table order."""
    return tuple(profile.name for profile in DEFAULT_PROFILES)


def get_profile(name: str) -> DesignerProfile:
    """Look up a default profile by (case-insensitive) name."""
    for profile in DEFAULT_PROFILES:
        if profile.name.lower() == name.lower():
            return profile
    raise KeyError(
        f"unknown profile {name!r}; available profiles: {list(profile_names())}"
    )
