"""LLM client protocol and chat-message primitives.

PICBench "is compatible with a wide range of LLMs as long as they provide a
Python API" (Section IV-A).  The evaluation framework only needs a single
entry point: given the conversation so far (system prompt, problem
description, feedback turns), return the model's next response text.

Real API clients can be plugged in by implementing :class:`LLMClient` or by
wrapping any callable with :class:`CallableLLM`.  The offline reproduction
uses :class:`repro.llm.simulated.SimulatedDesigner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence, runtime_checkable

__all__ = ["ChatMessage", "Conversation", "LLMClient", "CallableLLM", "system", "user", "assistant"]


@dataclass(frozen=True)
class ChatMessage:
    """One turn of a conversation."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"unsupported role {self.role!r}")


Conversation = Sequence[ChatMessage]


def system(content: str) -> ChatMessage:
    """Build a system message."""
    return ChatMessage(role="system", content=content)


def user(content: str) -> ChatMessage:
    """Build a user message."""
    return ChatMessage(role="user", content=content)


def assistant(content: str) -> ChatMessage:
    """Build an assistant message."""
    return ChatMessage(role="assistant", content=content)


@runtime_checkable
class LLMClient(Protocol):
    """Anything that can complete a PICBench conversation.

    Implementations must be pure functions of the conversation (plus the
    optional ``seed`` used to diversify repeated samples of the same problem),
    which is how the hosted chat APIs the paper evaluates behave.
    """

    #: Human-readable model name used in reports.
    name: str

    def complete(self, messages: Conversation, *, seed: Optional[int] = None) -> str:
        """Return the assistant response for the given conversation."""
        ...  # pragma: no cover - protocol


class CallableLLM:
    """Adapter turning any ``callable(messages) -> str`` into an :class:`LLMClient`.

    Useful for wrapping real API SDK calls, e.g.::

        client = CallableLLM("gpt-4o", lambda msgs: openai_chat(msgs))
    """

    def __init__(self, name: str, func: Callable[[Conversation], str]) -> None:
        self.name = name
        self._func = func

    def complete(self, messages: Conversation, *, seed: Optional[int] = None) -> str:
        """Delegate to the wrapped callable (the seed is ignored)."""
        return self._func(list(messages))
