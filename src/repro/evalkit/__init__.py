"""Evaluation framework: syntax/functional checks, Pass@k, error feedback loop."""

from .classify import as_picbench_error, classify_exception
from .evaluator import AttemptOutcome, EvaluationConfig, Evaluator
from .outcome import AttemptRecord, EvalReport, SampleResult, pass_at_k_by_pack
from .passk import mean_pass_at_k, pass_at_k

__all__ = [
    "pass_at_k",
    "mean_pass_at_k",
    "pass_at_k_by_pack",
    "classify_exception",
    "as_picbench_error",
    "AttemptRecord",
    "SampleResult",
    "EvalReport",
    "AttemptOutcome",
    "EvaluationConfig",
    "Evaluator",
]
