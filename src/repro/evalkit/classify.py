"""Error classification (the error-classification loop of Section III-D).

Every exception the parsing / validation / simulation pipeline raises is
mapped onto one of the Table II categories so that

* the feedback prompt can name the failure class explicitly, and
* the harness can report a per-category error breakdown.
"""

from __future__ import annotations

from typing import Optional

from ..netlist.errors import ErrorCategory, OtherSyntaxError, PICBenchError
from ..sim.registry import UnknownModelError

__all__ = ["classify_exception", "as_picbench_error"]


def classify_exception(error: BaseException) -> ErrorCategory:
    """Return the Table II category of an exception raised during evaluation."""
    if isinstance(error, PICBenchError):
        return error.category
    if isinstance(error, UnknownModelError):
        return ErrorCategory.UNDEFINED_MODEL
    return ErrorCategory.OTHER_SYNTAX


def as_picbench_error(error: BaseException) -> PICBenchError:
    """Wrap an arbitrary exception into a classified :class:`PICBenchError`."""
    if isinstance(error, PICBenchError):
        return error
    if isinstance(error, UnknownModelError):
        from ..netlist.errors import UndefinedModelError

        return UndefinedModelError(str(error))
    return OtherSyntaxError(f"{type(error).__name__}: {error}")
