"""Result records produced by the evaluation loop.

The hierarchy mirrors how the benchmark is run:

``AttemptRecord``
    One LLM response and its verdict (one box of the Fig. 1 flow).
``SampleResult``
    One complete feedback trajectory for one sample of one problem (up to
    ``max_feedback_iterations + 1`` attempts).
``EvalReport``
    All samples of all problems for one (model, prompt-configuration) pair;
    provides the Pass@k aggregation used by Tables III and IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.errors import ErrorCategory
from .passk import mean_pass_at_k

__all__ = ["AttemptRecord", "SampleResult", "EvalReport", "pass_at_k_by_pack"]


def _mean_pass_percent(counts: Sequence[Tuple[int, int]], k: int) -> float:
    """Mean per-problem Pass@k estimate in percent, clamping ``k`` to ``n``.

    Shared by :meth:`EvalReport.pass_at_k` and :func:`pass_at_k_by_pack` so
    the clamping and percentage conventions cannot drift apart.  Raises
    ``ValueError`` when no problem has samples.
    """
    values = [100.0 * mean_pass_at_k([(n, c)], min(k, n)) for n, c in counts if n > 0]
    if not values:
        raise ValueError("no evaluated samples to aggregate")
    return float(sum(values) / len(values))


@dataclass
class AttemptRecord:
    """Verdict of a single generated response.

    ``degraded`` marks an attempt whose simulation needed the solver's
    least-squares guardrail (singular/near-singular feedback system);
    ``nonfinite`` marks one whose S-matrix still contained NaN/inf.  Both
    are quality annotations -- they do not change the pass verdict.
    """

    iteration: int
    syntax_ok: bool
    functional_ok: bool
    error_category: Optional[ErrorCategory] = None
    error_detail: Optional[str] = None
    response_text: Optional[str] = None
    degraded: bool = False
    nonfinite: bool = False

    @property
    def passed(self) -> bool:
        """True when both the syntax and the functionality checks passed."""
        return self.syntax_ok and self.functional_ok


@dataclass
class SampleResult:
    """One sample's full feedback trajectory."""

    problem: str
    sample_index: int
    attempts: List[AttemptRecord] = field(default_factory=list)

    def first_pass_iteration(self, metric: str) -> Optional[int]:
        """Iteration index of the first attempt passing ``metric`` (or None).

        ``metric`` is ``"syntax"`` or ``"functional"``; iteration 0 is the
        initial query (no feedback).
        """
        for attempt in self.attempts:
            ok = attempt.syntax_ok if metric == "syntax" else attempt.passed
            if ok:
                return attempt.iteration
        return None

    def passed_within(self, metric: str, max_feedback: int) -> bool:
        """Whether the sample passed ``metric`` using at most ``max_feedback`` EFs."""
        iteration = self.first_pass_iteration(metric)
        return iteration is not None and iteration <= max_feedback

    def error_categories(self) -> List[ErrorCategory]:
        """Categories of every failed attempt, in iteration order."""
        return [a.error_category for a in self.attempts if a.error_category is not None]

    @property
    def degraded(self) -> bool:
        """True when any attempt ran through the solver's degraded fallback."""
        return any(attempt.degraded for attempt in self.attempts)

    @property
    def nonfinite(self) -> bool:
        """True when any attempt produced a non-finite S-matrix."""
        return any(attempt.nonfinite for attempt in self.attempts)


@dataclass
class EvalReport:
    """All evaluation results for one model under one prompt configuration.

    ``pack`` records which problem pack produced the results, so reports from
    different packs can live side by side (and be aggregated per pack) in one
    sweep artefact.
    """

    model: str
    with_restrictions: bool
    samples_per_problem: int
    max_feedback_iterations: int
    results: Dict[str, List[SampleResult]] = field(default_factory=dict)
    pack: str = "core"

    def add(self, sample: SampleResult) -> None:
        """Record one finished sample trajectory."""
        self.results.setdefault(sample.problem, []).append(sample)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def problem_counts(self, metric: str, max_feedback: int) -> List[Tuple[int, int]]:
        """Per-problem ``(n, c)`` pairs for the Pass@k estimator."""
        counts: List[Tuple[int, int]] = []
        for samples in self.results.values():
            n = len(samples)
            c = sum(1 for s in samples if s.passed_within(metric, max_feedback))
            counts.append((n, c))
        return counts

    def pass_at_k(self, k: int, *, metric: str = "syntax", max_feedback: int = 0) -> float:
        """Mean Pass@k (in percent) for ``metric`` with at most ``max_feedback`` EFs.

        When fewer than ``k`` samples were generated for a problem (e.g. in a
        reduced sweep), ``k`` is clamped to that problem's sample count so the
        estimator remains well defined.
        """
        counts = self.problem_counts(metric, max_feedback)
        try:
            return _mean_pass_percent(counts, k)
        except ValueError:
            raise ValueError("the report contains no evaluated samples") from None

    def problem_pass_at_k(
        self, problem: str, k: int, *, metric: str = "syntax", max_feedback: int = 0
    ) -> float:
        """Pass@k (in percent) of a single problem of this report.

        The single-problem restriction of :meth:`pass_at_k` (same clamping
        and percentage conventions); this is the value the evaluation
        service's regression diff compares per problem between runs.
        Raises ``KeyError`` for unknown problems and ``ValueError`` when the
        problem has no evaluated samples.
        """
        samples = self.results[problem]
        n = len(samples)
        c = sum(1 for s in samples if s.passed_within(metric, max_feedback))
        try:
            return _mean_pass_percent([(n, c)], k)
        except ValueError:
            raise ValueError(f"problem {problem!r} has no evaluated samples") from None

    def error_breakdown(self) -> Dict[ErrorCategory, int]:
        """Histogram of error categories across every failed attempt."""
        histogram: Dict[ErrorCategory, int] = {}
        for samples in self.results.values():
            for sample in samples:
                for category in sample.error_categories():
                    histogram[category] = histogram.get(category, 0) + 1
        return histogram

    @staticmethod
    def _attempt_payload(attempt: AttemptRecord) -> Dict[str, object]:
        """One attempt's serialised form.

        The guardrail flags are emitted only when set, so reports from
        healthy runs serialise to exactly the bytes they did before the
        flags existed (the store's content-dedup depends on that).
        """
        payload: Dict[str, object] = {
            "iteration": attempt.iteration,
            "syntax_ok": attempt.syntax_ok,
            "functional_ok": attempt.functional_ok,
            "error_category": (
                attempt.error_category.value if attempt.error_category else None
            ),
        }
        if attempt.degraded:
            payload["degraded"] = True
        if attempt.nonfinite:
            payload["nonfinite"] = True
        return payload

    def to_dict(self) -> Dict[str, object]:
        """Serialise the report (without response texts) to plain containers."""
        return {
            "model": self.model,
            "with_restrictions": self.with_restrictions,
            "samples_per_problem": self.samples_per_problem,
            "max_feedback_iterations": self.max_feedback_iterations,
            "pack": self.pack,
            "results": {
                problem: [
                    {
                        "sample_index": sample.sample_index,
                        "attempts": [
                            self._attempt_payload(attempt)
                            for attempt in sample.attempts
                        ],
                    }
                    for sample in samples
                ]
                for problem, samples in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EvalReport":
        """Rebuild a report previously serialised with :meth:`to_dict`."""
        report = cls(
            model=str(payload["model"]),
            with_restrictions=bool(payload["with_restrictions"]),
            samples_per_problem=int(payload["samples_per_problem"]),
            max_feedback_iterations=int(payload["max_feedback_iterations"]),
            pack=str(payload.get("pack", "core")),
        )
        results = payload.get("results", {})
        for problem, samples in dict(results).items():  # type: ignore[union-attr]
            for sample_payload in samples:
                sample = SampleResult(
                    problem=str(problem),
                    sample_index=int(sample_payload["sample_index"]),
                )
                for attempt_payload in sample_payload["attempts"]:
                    raw_category = attempt_payload.get("error_category")
                    sample.attempts.append(
                        AttemptRecord(
                            iteration=int(attempt_payload["iteration"]),
                            syntax_ok=bool(attempt_payload["syntax_ok"]),
                            functional_ok=bool(attempt_payload["functional_ok"]),
                            error_category=(
                                ErrorCategory(raw_category) if raw_category else None
                            ),
                            degraded=bool(attempt_payload.get("degraded", False)),
                            nonfinite=bool(attempt_payload.get("nonfinite", False)),
                        )
                    )
                report.add(sample)
        return report


def pass_at_k_by_pack(
    reports: Sequence[EvalReport],
    k: int,
    *,
    metric: str = "syntax",
    max_feedback: int = 0,
) -> Dict[str, float]:
    """Mean Pass@k (percent) aggregated per problem pack across ``reports``.

    Every report contributes its per-problem ``(n, c)`` counts to the bucket
    of its :attr:`EvalReport.pack`; the estimator is then averaged over all
    problems of that pack, mirroring :meth:`EvalReport.pass_at_k` but across
    models and restriction settings.
    """
    counts_by_pack: Dict[str, List[Tuple[int, int]]] = {}
    for report in reports:
        counts_by_pack.setdefault(report.pack, []).extend(
            report.problem_counts(metric, max_feedback)
        )
    aggregated: Dict[str, float] = {}
    for pack, counts in counts_by_pack.items():
        try:
            aggregated[pack] = _mean_pass_percent(counts, k)
        except ValueError:
            raise ValueError(f"no evaluated samples for pack {pack!r}") from None
    return aggregated
