"""The Pass@k estimator (Section IV-A, Eq. 1 of the paper).

For each task, ``n`` samples are generated of which ``c`` pass; the unbiased
estimator of the probability that at least one of ``k`` drawn samples passes
is ``1 - C(n - c, k) / C(n, k)``.  The benchmark score is the mean of this
estimator over all problems, reported as a percentage.
"""

from __future__ import annotations

from math import comb
from typing import Iterable, Sequence, Tuple

__all__ = ["pass_at_k", "mean_pass_at_k"]


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased estimator of Pass@k for one problem.

    Parameters
    ----------
    n:
        Number of generated samples.
    c:
        Number of samples that passed.
    k:
        Number of samples the metric hypothetically draws.

    Returns
    -------
    float
        The estimate in ``[0, 1]``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= c <= n:
        raise ValueError(f"c must be within [0, n] = [0, {n}], got {c}")
    if not 1 <= k <= n:
        raise ValueError(f"k must be within [1, n] = [1, {n}], got {k}")
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def mean_pass_at_k(counts: Iterable[Tuple[int, int]], k: int) -> float:
    """Average Pass@k over problems.

    Parameters
    ----------
    counts:
        Iterable of ``(n, c)`` pairs, one per problem.
    k:
        The ``k`` of Pass@k.

    Returns
    -------
    float
        The mean estimate in ``[0, 1]`` (multiply by 100 for the paper's
        percentage convention).  Raises ``ValueError`` when ``counts`` is
        empty.
    """
    values = [pass_at_k(n, c, k) for n, c in counts]
    if not values:
        raise ValueError("mean_pass_at_k requires at least one (n, c) pair")
    return float(sum(values) / len(values))
