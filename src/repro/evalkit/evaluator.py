"""The PICBench evaluation loop (Fig. 1 of the paper).

For every sample of every problem the evaluator:

1. builds the system prompt (optionally with restrictions, Table IV) and the
   problem's user prompt,
2. queries the LLM client,
3. parses the ``<result>`` section into a netlist and validates it,
4. simulates the netlist over the evaluation wavelength grid (syntax check),
5. compares the simulated frequency response against the golden design
   (functionality check),
6. on failure, classifies the error and feeds a correction prompt back to the
   model, iterating up to ``max_feedback_iterations`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..bench.golden import GoldenStore
from ..bench.problem import Problem
from ..bench.suite import all_problems
from ..constants import (
    DEFAULT_FUNCTIONAL_ATOL,
    DEFAULT_NUM_WAVELENGTHS,
    DEFAULT_SAMPLES_PER_PROBLEM,
)
from ..engine.engine import ExecutionEngine
from ..engine.fingerprint import sample_seed
from ..llm.base import LLMClient, assistant, system, user
from ..llm.response import split_response
from ..netlist.errors import FunctionalError, PICBenchError
from ..netlist.parser import parse_netlist_text
from ..netlist.validation import validate_netlist
from ..prompts.feedback import build_feedback
from ..prompts.system_prompt import PromptConfig, build_system_prompt, build_user_prompt
from ..sim.analysis import compare_responses
from ..sim.registry import ModelRegistry, default_registry
from .classify import as_picbench_error
from .outcome import AttemptRecord, EvalReport, SampleResult

__all__ = ["EvaluationConfig", "AttemptOutcome", "Evaluator"]


@dataclass(frozen=True)
class EvaluationConfig:
    """Knobs of the evaluation loop.

    Attributes
    ----------
    samples_per_problem:
        ``n`` of the Pass@k estimator (the paper uses 5).
    max_feedback_iterations:
        Maximum number of error-feedback rounds (the paper reports 0, 1, 3;
        running with 3 allows all three columns to be derived from one run).
    num_wavelengths:
        Number of points of the 1510-1590 nm evaluation grid.
    functional_atol:
        Tolerance on ``|S|^2`` when comparing against the golden response.
    include_restrictions:
        Whether the Table II restrictions are added to the system prompt.
    keep_responses:
        Whether raw response texts are kept in the attempt records (useful for
        debugging, memory-hungry for full sweeps).
    base_seed:
        Global seed mixed into each sample's generation seed.
    """

    samples_per_problem: int = DEFAULT_SAMPLES_PER_PROBLEM
    max_feedback_iterations: int = 3
    num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS
    functional_atol: float = DEFAULT_FUNCTIONAL_ATOL
    include_restrictions: bool = False
    keep_responses: bool = False
    base_seed: int = 0


@dataclass
class AttemptOutcome:
    """Verdict of a single response, before being folded into the records.

    ``degraded`` / ``nonfinite`` carry the solver's numerical-guardrail
    annotations (least-squares fallback fired / the S-matrix still held
    NaN or inf) alongside the verdict.
    """

    syntax_ok: bool
    functional_ok: bool
    error: Optional[PICBenchError] = None
    degraded: bool = False
    nonfinite: bool = False


def _quality_flags(smatrix) -> Tuple[bool, bool]:
    """The (degraded, nonfinite) annotations of one simulated S-matrix."""
    return bool(smatrix.degraded), not bool(np.all(np.isfinite(smatrix.data)))


class Evaluator:
    """Runs the generation / evaluation / feedback loop of Fig. 1."""

    def __init__(
        self,
        config: Optional[EvaluationConfig] = None,
        *,
        registry: Optional[ModelRegistry] = None,
        golden_store: Optional[GoldenStore] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.config = config if config is not None else EvaluationConfig()
        self.registry = registry if registry is not None else default_registry()
        if engine is None:
            # Reuse the golden store's engine so golden and candidate
            # simulations share one content-addressed cache.
            engine = (
                golden_store.engine
                if golden_store is not None
                else ExecutionEngine(registry=self.registry)
            )
        self.engine = engine
        self.golden_store = (
            golden_store
            if golden_store is not None
            else GoldenStore(
                num_wavelengths=self.config.num_wavelengths,
                registry=self.registry,
                engine=self.engine,
            )
        )
        if self.golden_store.num_wavelengths != self.config.num_wavelengths:
            raise ValueError(
                "golden_store and config disagree on the wavelength grid "
                f"({self.golden_store.num_wavelengths} vs {self.config.num_wavelengths})"
            )

    # ------------------------------------------------------------------
    # Single-response evaluation
    # ------------------------------------------------------------------
    def evaluate_response(self, problem: Problem, response_text: str) -> AttemptOutcome:
        """Check one raw LLM response for syntax and functional correctness."""
        try:
            response = split_response(response_text)
            netlist = parse_netlist_text(response.result, strict=True)
            validate_netlist(netlist, self.registry, problem.port_spec)
            smatrix = self.engine.evaluate(
                netlist, self.golden_store.wavelengths, port_spec=problem.port_spec
            )
        except Exception as error:  # noqa: BLE001 - classified below
            return AttemptOutcome(syntax_ok=False, functional_ok=False, error=as_picbench_error(error))

        degraded, nonfinite = _quality_flags(smatrix)
        comparison = compare_responses(
            smatrix,
            self.golden_store.response_for(problem),
            atol=self.config.functional_atol,
        )
        if comparison.passed:
            return AttemptOutcome(
                syntax_ok=True, functional_ok=True,
                degraded=degraded, nonfinite=nonfinite,
            )
        return AttemptOutcome(
            syntax_ok=True,
            functional_ok=False,
            error=FunctionalError(comparison.reason or "the frequency response deviates from the golden design"),
            degraded=degraded,
            nonfinite=nonfinite,
        )

    def evaluate_responses(
        self, items: Sequence[Tuple[Problem, str]]
    ) -> List[AttemptOutcome]:
        """Check many raw responses at once, batching compatible simulations.

        Semantics per item are identical to :meth:`evaluate_response`; the
        simulations of responses that parse and validate are dispatched
        through :meth:`ExecutionEngine.evaluate_many`, which fuses
        structure-sharing candidates (samples that differ only in instance
        settings -- the common case across pass@k drafts) into shared
        executor passes of at most ``engine.config.batch_size`` samples.
        """
        outcomes: List[Optional[AttemptOutcome]] = [None] * len(items)
        pending: List[int] = []
        netlists = []
        for index, (problem, response_text) in enumerate(items):
            try:
                response = split_response(response_text)
                netlist = parse_netlist_text(response.result, strict=True)
                validate_netlist(netlist, self.registry, problem.port_spec)
            except Exception as error:  # noqa: BLE001 - classified below
                outcomes[index] = AttemptOutcome(
                    syntax_ok=False, functional_ok=False, error=as_picbench_error(error)
                )
                continue
            pending.append(index)
            netlists.append(netlist)

        if pending:
            simulated = self.engine.evaluate_many(
                netlists,
                self.golden_store.wavelengths,
                port_specs=[items[index][0].port_spec for index in pending],
                return_exceptions=True,
            )
            for index, result in zip(pending, simulated):
                problem = items[index][0]
                if isinstance(result, Exception):
                    outcomes[index] = AttemptOutcome(
                        syntax_ok=False,
                        functional_ok=False,
                        error=as_picbench_error(result),
                    )
                    continue
                degraded, nonfinite = _quality_flags(result)
                comparison = compare_responses(
                    result,
                    self.golden_store.response_for(problem),
                    atol=self.config.functional_atol,
                )
                if comparison.passed:
                    outcomes[index] = AttemptOutcome(
                        syntax_ok=True, functional_ok=True,
                        degraded=degraded, nonfinite=nonfinite,
                    )
                else:
                    outcomes[index] = AttemptOutcome(
                        syntax_ok=True,
                        functional_ok=False,
                        error=FunctionalError(
                            comparison.reason
                            or "the frequency response deviates from the golden design"
                        ),
                        degraded=degraded,
                        nonfinite=nonfinite,
                    )
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Feedback loop
    # ------------------------------------------------------------------
    def run_sample(
        self,
        client: LLMClient,
        problem: Problem,
        sample_index: int,
        *,
        prompt_config: Optional[PromptConfig] = None,
    ) -> SampleResult:
        """Run the full feedback trajectory for one sample of one problem."""
        prompt_config = prompt_config or PromptConfig(
            include_restrictions=self.config.include_restrictions
        )
        messages = [
            system(build_system_prompt(self.registry, prompt_config)),
            user(build_user_prompt(problem.description)),
        ]
        sample = SampleResult(problem=problem.name, sample_index=sample_index)
        # Mixing the problem name into the seed keeps every (problem, sample)
        # trajectory statistically independent; the old derivation
        # (base_seed * 100_003 + sample_index) replayed one seed sequence
        # across all problems.
        seed = sample_seed(self.config.base_seed, problem.name, sample_index)

        for iteration in range(self.config.max_feedback_iterations + 1):
            response_text = client.complete(messages, seed=seed)
            outcome = self.evaluate_response(problem, response_text)
            sample.attempts.append(
                AttemptRecord(
                    iteration=iteration,
                    syntax_ok=outcome.syntax_ok,
                    functional_ok=outcome.functional_ok,
                    error_category=outcome.error.category if outcome.error else None,
                    error_detail=outcome.error.detail if outcome.error else None,
                    response_text=response_text if self.config.keep_responses else None,
                    degraded=outcome.degraded,
                    nonfinite=outcome.nonfinite,
                )
            )
            if outcome.functional_ok and outcome.syntax_ok:
                break
            if iteration == self.config.max_feedback_iterations:
                break
            assert outcome.error is not None
            feedback = build_feedback(problem.name, outcome.error)
            messages = list(messages) + [assistant(response_text), user(feedback)]
        return sample

    def run_samples_batched(
        self,
        units: Sequence[Tuple[LLMClient, Problem, int]],
        *,
        prompt_config: Optional[PromptConfig] = None,
    ) -> List[SampleResult]:
        """Run many ``(client, problem, sample)`` trajectories in lockstep.

        All trajectories advance one feedback iteration at a time: the
        iteration's generations run on the engine's worker pool, then every
        resulting candidate is evaluated in one :meth:`evaluate_responses`
        call -- so structurally identical drafts across samples, problems
        and clients fuse into shared batched executor passes.  Because each
        trajectory's messages and seed are a pure function of its own
        history, the returned :class:`SampleResult` list is identical to
        running :meth:`run_sample` per unit.
        """
        prompt_config = prompt_config or PromptConfig(
            include_restrictions=self.config.include_restrictions
        )
        states = []
        for client, problem, sample_index in units:
            states.append(
                {
                    "client": client,
                    "problem": problem,
                    "messages": [
                        system(build_system_prompt(self.registry, prompt_config)),
                        user(build_user_prompt(problem.description)),
                    ],
                    "seed": sample_seed(self.config.base_seed, problem.name, sample_index),
                    "sample": SampleResult(problem=problem.name, sample_index=sample_index),
                    "done": False,
                }
            )

        for iteration in range(self.config.max_feedback_iterations + 1):
            active = [state for state in states if not state["done"]]
            if not active:
                break
            responses = self.engine.map(
                lambda state: state["client"].complete(state["messages"], seed=state["seed"]),
                active,
            )
            outcomes = self.evaluate_responses(
                [(state["problem"], text) for state, text in zip(active, responses)]
            )
            for state, response_text, outcome in zip(active, responses, outcomes):
                state["sample"].attempts.append(
                    AttemptRecord(
                        iteration=iteration,
                        syntax_ok=outcome.syntax_ok,
                        functional_ok=outcome.functional_ok,
                        error_category=outcome.error.category if outcome.error else None,
                        error_detail=outcome.error.detail if outcome.error else None,
                        response_text=response_text if self.config.keep_responses else None,
                        degraded=outcome.degraded,
                        nonfinite=outcome.nonfinite,
                    )
                )
                if outcome.functional_ok and outcome.syntax_ok:
                    state["done"] = True
                    continue
                if iteration == self.config.max_feedback_iterations:
                    state["done"] = True
                    continue
                assert outcome.error is not None
                feedback = build_feedback(state["problem"].name, outcome.error)
                state["messages"] = list(state["messages"]) + [
                    assistant(response_text),
                    user(feedback),
                ]
        return [state["sample"] for state in states]

    def run_problem(
        self,
        client: LLMClient,
        problem: Problem,
        *,
        prompt_config: Optional[PromptConfig] = None,
    ) -> List[SampleResult]:
        """Run all samples of one problem (on the engine's worker pool)."""
        return self.engine.map(
            lambda sample_index: self.run_sample(
                client, problem, sample_index, prompt_config=prompt_config
            ),
            range(self.config.samples_per_problem),
        )

    def run_suite(
        self,
        client: LLMClient,
        problems: Optional[Sequence[Problem]] = None,
        *,
        prompt_config: Optional[PromptConfig] = None,
    ) -> EvalReport:
        """Evaluate a client over the full suite (or a subset of problems).

        The nested problem/sample loops are flattened into independent work
        units and executed on the engine's scheduler; results are folded back
        in ``(problem, sample)`` order, so any worker count produces the same
        report as the sequential loop.
        """
        problems = list(problems) if problems is not None else list(all_problems())
        packs = {problem.pack for problem in problems}
        report = EvalReport(
            model=getattr(client, "name", type(client).__name__),
            with_restrictions=(
                prompt_config.include_restrictions
                if prompt_config is not None
                else self.config.include_restrictions
            ),
            samples_per_problem=self.config.samples_per_problem,
            max_feedback_iterations=self.config.max_feedback_iterations,
            pack=packs.pop() if len(packs) == 1 else "mixed",
        )
        if getattr(self.engine.config, "batch_size", 1) > 1:
            # Batched dispatch: trajectories advance in lockstep so each
            # iteration's structure-sharing candidates fuse into shared
            # executor passes.  Identical results by construction.
            samples = self.run_samples_batched(
                [
                    (client, problem, sample_index)
                    for problem in problems
                    for sample_index in range(self.config.samples_per_problem)
                ],
                prompt_config=prompt_config,
            )
        else:
            units = [
                (problem, sample_index)
                for problem in problems
                for sample_index in range(self.config.samples_per_problem)
            ]
            samples = self.engine.map(
                lambda unit: self.run_sample(client, unit[0], unit[1], prompt_config=prompt_config),
                units,
            )
        for sample in samples:
            report.add(sample)
        return report
