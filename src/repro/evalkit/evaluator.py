"""The PICBench evaluation loop (Fig. 1 of the paper).

For every sample of every problem the evaluator:

1. builds the system prompt (optionally with restrictions, Table IV) and the
   problem's user prompt,
2. queries the LLM client,
3. parses the ``<result>`` section into a netlist and validates it,
4. simulates the netlist over the evaluation wavelength grid (syntax check),
5. compares the simulated frequency response against the golden design
   (functionality check),
6. on failure, classifies the error and feeds a correction prompt back to the
   model, iterating up to ``max_feedback_iterations`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..bench.golden import GoldenStore
from ..bench.problem import Problem
from ..bench.suite import all_problems
from ..constants import (
    DEFAULT_FUNCTIONAL_ATOL,
    DEFAULT_NUM_WAVELENGTHS,
    DEFAULT_SAMPLES_PER_PROBLEM,
)
from ..engine.engine import ExecutionEngine
from ..engine.fingerprint import sample_seed
from ..llm.base import LLMClient, assistant, system, user
from ..llm.response import split_response
from ..netlist.errors import FunctionalError, PICBenchError
from ..netlist.parser import parse_netlist_text
from ..netlist.validation import validate_netlist
from ..prompts.feedback import build_feedback
from ..prompts.system_prompt import PromptConfig, build_system_prompt, build_user_prompt
from ..sim.analysis import compare_responses
from ..sim.registry import ModelRegistry, default_registry
from .classify import as_picbench_error
from .outcome import AttemptRecord, EvalReport, SampleResult

__all__ = ["EvaluationConfig", "AttemptOutcome", "Evaluator"]


@dataclass(frozen=True)
class EvaluationConfig:
    """Knobs of the evaluation loop.

    Attributes
    ----------
    samples_per_problem:
        ``n`` of the Pass@k estimator (the paper uses 5).
    max_feedback_iterations:
        Maximum number of error-feedback rounds (the paper reports 0, 1, 3;
        running with 3 allows all three columns to be derived from one run).
    num_wavelengths:
        Number of points of the 1510-1590 nm evaluation grid.
    functional_atol:
        Tolerance on ``|S|^2`` when comparing against the golden response.
    include_restrictions:
        Whether the Table II restrictions are added to the system prompt.
    keep_responses:
        Whether raw response texts are kept in the attempt records (useful for
        debugging, memory-hungry for full sweeps).
    base_seed:
        Global seed mixed into each sample's generation seed.
    """

    samples_per_problem: int = DEFAULT_SAMPLES_PER_PROBLEM
    max_feedback_iterations: int = 3
    num_wavelengths: int = DEFAULT_NUM_WAVELENGTHS
    functional_atol: float = DEFAULT_FUNCTIONAL_ATOL
    include_restrictions: bool = False
    keep_responses: bool = False
    base_seed: int = 0


@dataclass
class AttemptOutcome:
    """Verdict of a single response, before being folded into the records."""

    syntax_ok: bool
    functional_ok: bool
    error: Optional[PICBenchError] = None


class Evaluator:
    """Runs the generation / evaluation / feedback loop of Fig. 1."""

    def __init__(
        self,
        config: Optional[EvaluationConfig] = None,
        *,
        registry: Optional[ModelRegistry] = None,
        golden_store: Optional[GoldenStore] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.config = config if config is not None else EvaluationConfig()
        self.registry = registry if registry is not None else default_registry()
        if engine is None:
            # Reuse the golden store's engine so golden and candidate
            # simulations share one content-addressed cache.
            engine = (
                golden_store.engine
                if golden_store is not None
                else ExecutionEngine(registry=self.registry)
            )
        self.engine = engine
        self.golden_store = (
            golden_store
            if golden_store is not None
            else GoldenStore(
                num_wavelengths=self.config.num_wavelengths,
                registry=self.registry,
                engine=self.engine,
            )
        )
        if self.golden_store.num_wavelengths != self.config.num_wavelengths:
            raise ValueError(
                "golden_store and config disagree on the wavelength grid "
                f"({self.golden_store.num_wavelengths} vs {self.config.num_wavelengths})"
            )

    # ------------------------------------------------------------------
    # Single-response evaluation
    # ------------------------------------------------------------------
    def evaluate_response(self, problem: Problem, response_text: str) -> AttemptOutcome:
        """Check one raw LLM response for syntax and functional correctness."""
        try:
            response = split_response(response_text)
            netlist = parse_netlist_text(response.result, strict=True)
            validate_netlist(netlist, self.registry, problem.port_spec)
            smatrix = self.engine.evaluate(
                netlist, self.golden_store.wavelengths, port_spec=problem.port_spec
            )
        except Exception as error:  # noqa: BLE001 - classified below
            return AttemptOutcome(syntax_ok=False, functional_ok=False, error=as_picbench_error(error))

        comparison = compare_responses(
            smatrix,
            self.golden_store.response_for(problem),
            atol=self.config.functional_atol,
        )
        if comparison.passed:
            return AttemptOutcome(syntax_ok=True, functional_ok=True)
        return AttemptOutcome(
            syntax_ok=True,
            functional_ok=False,
            error=FunctionalError(comparison.reason or "the frequency response deviates from the golden design"),
        )

    # ------------------------------------------------------------------
    # Feedback loop
    # ------------------------------------------------------------------
    def run_sample(
        self,
        client: LLMClient,
        problem: Problem,
        sample_index: int,
        *,
        prompt_config: Optional[PromptConfig] = None,
    ) -> SampleResult:
        """Run the full feedback trajectory for one sample of one problem."""
        prompt_config = prompt_config or PromptConfig(
            include_restrictions=self.config.include_restrictions
        )
        messages = [
            system(build_system_prompt(self.registry, prompt_config)),
            user(build_user_prompt(problem.description)),
        ]
        sample = SampleResult(problem=problem.name, sample_index=sample_index)
        # Mixing the problem name into the seed keeps every (problem, sample)
        # trajectory statistically independent; the old derivation
        # (base_seed * 100_003 + sample_index) replayed one seed sequence
        # across all problems.
        seed = sample_seed(self.config.base_seed, problem.name, sample_index)

        for iteration in range(self.config.max_feedback_iterations + 1):
            response_text = client.complete(messages, seed=seed)
            outcome = self.evaluate_response(problem, response_text)
            sample.attempts.append(
                AttemptRecord(
                    iteration=iteration,
                    syntax_ok=outcome.syntax_ok,
                    functional_ok=outcome.functional_ok,
                    error_category=outcome.error.category if outcome.error else None,
                    error_detail=outcome.error.detail if outcome.error else None,
                    response_text=response_text if self.config.keep_responses else None,
                )
            )
            if outcome.functional_ok and outcome.syntax_ok:
                break
            if iteration == self.config.max_feedback_iterations:
                break
            assert outcome.error is not None
            feedback = build_feedback(problem.name, outcome.error)
            messages = list(messages) + [assistant(response_text), user(feedback)]
        return sample

    def run_problem(
        self,
        client: LLMClient,
        problem: Problem,
        *,
        prompt_config: Optional[PromptConfig] = None,
    ) -> List[SampleResult]:
        """Run all samples of one problem (on the engine's worker pool)."""
        return self.engine.map(
            lambda sample_index: self.run_sample(
                client, problem, sample_index, prompt_config=prompt_config
            ),
            range(self.config.samples_per_problem),
        )

    def run_suite(
        self,
        client: LLMClient,
        problems: Optional[Sequence[Problem]] = None,
        *,
        prompt_config: Optional[PromptConfig] = None,
    ) -> EvalReport:
        """Evaluate a client over the full suite (or a subset of problems).

        The nested problem/sample loops are flattened into independent work
        units and executed on the engine's scheduler; results are folded back
        in ``(problem, sample)`` order, so any worker count produces the same
        report as the sequential loop.
        """
        problems = list(problems) if problems is not None else list(all_problems())
        packs = {problem.pack for problem in problems}
        report = EvalReport(
            model=getattr(client, "name", type(client).__name__),
            with_restrictions=(
                prompt_config.include_restrictions
                if prompt_config is not None
                else self.config.include_restrictions
            ),
            samples_per_problem=self.config.samples_per_problem,
            max_feedback_iterations=self.config.max_feedback_iterations,
            pack=packs.pop() if len(packs) == 1 else "mixed",
        )
        units = [
            (problem, sample_index)
            for problem in problems
            for sample_index in range(self.config.samples_per_problem)
        ]
        samples = self.engine.map(
            lambda unit: self.run_sample(client, unit[0], unit[1], prompt_config=prompt_config),
            units,
        )
        for sample in samples:
            report.add(sample)
        return report
