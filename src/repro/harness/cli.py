"""Command-line interface of the experiment harness.

Examples
--------
Regenerate the static tables and figures::

    python -m repro.harness table1
    python -m repro.harness table2
    python -m repro.harness fig2
    python -m repro.harness fig3
    python -m repro.harness fig4

Run the evaluation sweeps (Tables III and IV)::

    python -m repro.harness table3 --samples 5 --wavelengths 41
    python -m repro.harness table4 --samples 5 --wavelengths 41
    python -m repro.harness sweep --output results.json

Work with problem packs::

    python -m repro.harness --list-packs
    python -m repro.harness table1 --pack wdm-links
    python -m repro.harness sweep --pack wdm-links --pack-param "channels=[2, 4]"

Run the evaluation service (forwarded to :mod:`repro.service.cli`)::

    python -m repro.harness serve --db results.db --port 7341
    python -m repro.harness jobs --port 7341 submit --pack core --wait
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from ..engine.engine import EXECUTION_MODES
from ..sim.circuit import SOLVER_BACKENDS
from .ablation import restriction_ablation_text, run_restriction_ablation
from .figures import figure2_text, figure3_text, figure4_text
from .runner import SweepConfig, run_sweep
from .tables import (
    error_breakdown_text,
    packs_text,
    table1_text,
    table2_text,
    table3_text,
    table4_text,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the harness argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the PICBench paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        choices=[
            "table1",
            "table2",
            "table3",
            "table4",
            "sweep",
            "errors",
            "ablate",
            "fig2",
            "fig3",
            "fig4",
        ],
        help="which artefact to regenerate (optional with --list-packs)",
    )
    parser.add_argument(
        "--model",
        type=str,
        default="GPT-4o",
        help="designer profile used by the 'ablate' target",
    )
    parser.add_argument("--samples", type=int, default=5, help="samples per problem (n of Pass@k)")
    parser.add_argument(
        "--feedback", type=int, default=3, help="maximum number of error-feedback iterations"
    )
    parser.add_argument(
        "--wavelengths", type=int, default=41, help="number of evaluation wavelength points"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed of the sweep")
    parser.add_argument(
        "--problems",
        nargs="*",
        default=None,
        help="restrict the sweep to these problem names (default: the whole pack)",
    )
    parser.add_argument("--output", type=str, default=None, help="write sweep results to this JSON file")
    parser.add_argument(
        "--pack",
        type=str,
        default="core",
        help="problem pack to enumerate (see --list-packs; default: the paper's 24-problem core suite)",
    )
    parser.add_argument(
        "--pack-param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="override one generation parameter of a parametric pack "
        "(repeatable; VALUE is parsed as JSON, e.g. channels='[2, 4]')",
    )
    parser.add_argument(
        "--list-packs",
        action="store_true",
        help="list the registered problem packs and exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads of the execution engine (1 = sequential, 0 = one per core); "
        "reports are identical for any worker count",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="directory for persistent simulation-cache artefacts (.npz); "
        "reused across runs to skip repeated simulations",
    )
    parser.add_argument(
        "--solver-backend",
        type=str,
        default="auto",
        choices=list(SOLVER_BACKENDS),
        help="circuit-solver backend: 'cascade' evaluates the connectivity "
        "graph's condensation in topological order (feed-forward circuits "
        "never pay for a global dense solve), 'dense' is the classic "
        "all-ports solve, 'auto' picks per circuit; all backends produce "
        "identical results",
    )
    parser.add_argument(
        "--plan-cache-entries",
        type=int,
        default=128,
        help="capacity of the solver's topology-keyed compiled-plan cache; "
        "structurally identical netlists (samples that only mutate settings) "
        "pay for assembly and condensation once; 0 recompiles every call",
    )
    parser.add_argument(
        "--wavelength-chunk",
        type=int,
        default=None,
        metavar="POINTS",
        help="solve at most this many wavelength points per batch, bounding "
        "the solver's peak workspace on large grids (default: whole grid at "
        "once); results are identical for any chunk size",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="SAMPLES",
        help="fuse up to this many structure-sharing candidate netlists into "
        "one solver executor pass (trajectories then advance in lockstep "
        "per feedback iteration); 1 (default) evaluates sweep work per "
        "sample; reports are identical for any batch size",
    )
    parser.add_argument(
        "--execution-mode",
        type=str,
        default="thread",
        choices=list(EXECUTION_MODES),
        help="parallel tier of the sweep: 'thread' runs work units on the "
        "engine's thread pool, 'process' shards them across worker "
        "processes (sidestepping the GIL for the pure-Python evaluation "
        "loop) that share the on-disk caches under --cache-dir; reports "
        "are byte-identical in both modes",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help="worker-process count for --execution-mode process "
        "(default 0 = one per core)",
    )
    parser.add_argument(
        "--retry-attempts",
        type=int,
        default=2,
        metavar="N",
        help="total tries per transiently failing work unit before it is "
        "recorded as crashed (1 = no retries)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="base seconds of the exponential (deterministically jittered) "
        "backoff between unit retries",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit watchdog budget in --execution-mode process: hung "
        "worker processes are killed and their units retried singly "
        "(default: no timeout)",
    )
    parser.add_argument(
        "--journal-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="checkpoint every completed trajectory to a line-JSON journal "
        "in this directory, keyed by the sweep's semantic fingerprint",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --journal-dir: skip trajectories already journaled by an "
        "earlier (possibly killed) run of the same sweep; the finished "
        "report is byte-identical to an uninterrupted run",
    )
    return parser


def _parse_pack_params(raw: Optional[Sequence[str]]) -> Optional[Dict[str, object]]:
    """Parse repeated ``--pack-param KEY=VALUE`` flags into a mapping.

    Values are parsed as JSON when possible (``channels=[2, 4]``,
    ``spacing=0.1``) and fall back to the raw string otherwise.
    """
    if not raw:
        return None
    params: Dict[str, object] = {}
    for item in raw:
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise SystemExit(f"--pack-param must look like KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _sweep_config(args: argparse.Namespace) -> SweepConfig:
    """Translate parsed CLI arguments into a :class:`SweepConfig`."""
    return SweepConfig(
        samples_per_problem=args.samples,
        max_feedback_iterations=args.feedback,
        num_wavelengths=args.wavelengths,
        base_seed=args.seed,
        problems=tuple(args.problems) if args.problems else None,
        workers=args.workers,
        cache_dir=args.cache_dir,
        pack=args.pack,
        pack_params=_parse_pack_params(args.pack_param),
        solver_backend=args.solver_backend,
        plan_cache_entries=args.plan_cache_entries,
        wavelength_chunk=args.wavelength_chunk,
        batch_size=args.batch_size,
        execution_mode=args.execution_mode,
        processes=args.processes,
        retry_attempts=args.retry_attempts,
        retry_backoff=args.retry_backoff,
        unit_timeout=args.unit_timeout,
        journal_dir=args.journal_dir,
        resume=args.resume,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.harness``."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] in ("serve", "jobs"):
        # Service verbs forward to the evaluation-service CLI, so the
        # harness front door covers both one-shot sweeps and the daemon:
        # ``python -m repro.harness serve ...`` / ``... jobs submit ...``.
        from ..service.cli import main as service_main

        return service_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_packs:
        print(packs_text())
        return 0
    if args.target is None:
        parser.error("a target is required (or pass --list-packs)")

    if args.target == "table1":
        print(table1_text(args.pack, _parse_pack_params(args.pack_param)))
        return 0
    if args.target == "table2":
        print(table2_text())
        return 0
    if args.target == "fig2":
        print(figure2_text())
        return 0
    if args.target == "fig3":
        print(figure3_text())
        return 0
    if args.target == "fig4":
        print(figure4_text(num_wavelengths=args.wavelengths))
        return 0

    config = _sweep_config(args)
    if args.target == "ablate":
        from ..llm.simulated import SimulatedDesigner

        result = run_restriction_ablation(SimulatedDesigner(args.model), config=config)
        print(restriction_ablation_text(result))
        return 0
    if args.target == "table3":
        sweep = run_sweep(config, restriction_settings=(False,))
        print(table3_text(sweep))
    elif args.target == "table4":
        sweep = run_sweep(config, restriction_settings=(True,))
        print(table4_text(sweep))
    elif args.target == "errors":
        sweep = run_sweep(config)
        print(error_breakdown_text(sweep))
    else:  # sweep
        sweep = run_sweep(config)
        print(table3_text(sweep))
        print()
        print(table4_text(sweep))
        print()
        print(error_breakdown_text(sweep))
    if args.output:
        sweep.save(args.output)
        print(f"\nsweep results written to {args.output}", file=sys.stderr)
    return 0
