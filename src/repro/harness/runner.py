"""Experiment sweeps reproducing the paper's evaluation (Tables III and IV).

The paper evaluates five LLMs with and without the Table II restrictions and
with 0, 1 and 3 error-feedback iterations, reporting syntax and functionality
Pass@1 and Pass@5.  One run with ``max_feedback_iterations = 3`` contains all
the information needed to derive the 0/1/3-feedback columns, so the sweep runs
each (model, restrictions) pair exactly once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.golden import GoldenStore
from ..bench.problem import Problem
from ..bench.suite import all_problems
from ..evalkit.evaluator import EvaluationConfig, Evaluator
from ..evalkit.outcome import EvalReport
from ..llm.base import LLMClient
from ..llm.profiles import DEFAULT_PROFILES, DesignerProfile
from ..llm.simulated import SimulatedDesigner
from ..prompts.system_prompt import PromptConfig

__all__ = ["SweepConfig", "SweepResult", "run_model", "run_sweep"]

#: Feedback-iteration counts reported by the paper's tables.
FEEDBACK_COLUMNS: Tuple[int, ...] = (0, 1, 3)

#: Pass@k values reported by the paper's tables.
PASS_AT: Tuple[int, ...] = (1, 5)


@dataclass(frozen=True)
class SweepConfig:
    """Configuration of a full table sweep."""

    samples_per_problem: int = 5
    max_feedback_iterations: int = 3
    num_wavelengths: int = 41
    base_seed: int = 0
    problems: Optional[Tuple[str, ...]] = None

    def evaluation_config(self, *, include_restrictions: bool) -> EvaluationConfig:
        """Build the corresponding :class:`EvaluationConfig`."""
        return EvaluationConfig(
            samples_per_problem=self.samples_per_problem,
            max_feedback_iterations=self.max_feedback_iterations,
            num_wavelengths=self.num_wavelengths,
            include_restrictions=include_restrictions,
            base_seed=self.base_seed,
        )

    def select_problems(self) -> List[Problem]:
        """Resolve the problem subset (default: the full 24-problem suite)."""
        problems = list(all_problems())
        if self.problems is None:
            return problems
        wanted = set(self.problems)
        selected = [p for p in problems if p.name in wanted]
        missing = wanted - {p.name for p in selected}
        if missing:
            raise KeyError(f"unknown problems requested: {sorted(missing)}")
        return selected


@dataclass
class SweepResult:
    """Reports of a sweep, keyed by (model name, with_restrictions)."""

    config: SweepConfig
    reports: Dict[Tuple[str, bool], EvalReport] = field(default_factory=dict)

    def report(self, model: str, *, with_restrictions: bool) -> EvalReport:
        """Look up one report."""
        return self.reports[(model, with_restrictions)]

    def models(self) -> List[str]:
        """Model names present in the sweep, in insertion order."""
        seen: List[str] = []
        for model, _ in self.reports:
            if model not in seen:
                seen.append(model)
        return seen

    def to_dict(self) -> Dict[str, object]:
        """Serialise every report (used for persistence)."""
        return {
            f"{model}|{'with' if restrictions else 'without'}_restrictions": report.to_dict()
            for (model, restrictions), report in self.reports.items()
        }

    def save(self, path: Path | str) -> None:
        """Write the sweep results to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: Path | str, config: Optional[SweepConfig] = None) -> "SweepResult":
        """Reload a sweep previously written by :meth:`save`.

        The reloaded result supports every aggregation (Pass@k tables, error
        breakdowns) without re-running the evaluation.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        result = cls(config=config if config is not None else SweepConfig())
        for key, report_payload in payload.items():
            model, _, suffix = key.rpartition("|")
            with_restrictions = suffix == "with_restrictions"
            report = EvalReport.from_dict(report_payload)
            result.reports[(model or report.model, with_restrictions)] = report
        return result


def run_model(
    client: LLMClient,
    *,
    include_restrictions: bool,
    config: Optional[SweepConfig] = None,
    golden_store: Optional[GoldenStore] = None,
) -> EvalReport:
    """Evaluate one client over the suite under one prompt configuration."""
    config = config if config is not None else SweepConfig()
    evaluation_config = config.evaluation_config(include_restrictions=include_restrictions)
    evaluator = Evaluator(evaluation_config, golden_store=golden_store)
    prompt_config = PromptConfig(include_restrictions=include_restrictions)
    return evaluator.run_suite(client, config.select_problems(), prompt_config=prompt_config)


def run_sweep(
    config: Optional[SweepConfig] = None,
    *,
    profiles: Optional[Sequence[DesignerProfile]] = None,
    restriction_settings: Sequence[bool] = (False, True),
    clients: Optional[Sequence[LLMClient]] = None,
) -> SweepResult:
    """Run the full Tables III / IV sweep.

    By default the five simulated designer profiles are used; pass ``clients``
    to evaluate real LLM API clients instead.
    """
    config = config if config is not None else SweepConfig()
    if clients is None:
        profiles = list(profiles) if profiles is not None else list(DEFAULT_PROFILES)
        clients = [SimulatedDesigner(profile, base_seed=config.base_seed) for profile in profiles]
    golden_store = GoldenStore(num_wavelengths=config.num_wavelengths)
    result = SweepResult(config=config)
    for include_restrictions in restriction_settings:
        for client in clients:
            report = run_model(
                client,
                include_restrictions=include_restrictions,
                config=config,
                golden_store=golden_store,
            )
            result.reports[(report.model, include_restrictions)] = report
    return result
