"""Experiment sweeps reproducing the paper's evaluation (Tables III and IV).

The paper evaluates five LLMs with and without the Table II restrictions and
with 0, 1 and 3 error-feedback iterations, reporting syntax and functionality
Pass@1 and Pass@5.  One run with ``max_feedback_iterations = 3`` contains all
the information needed to derive the 0/1/3-feedback columns, so the sweep runs
each (model, restrictions) pair exactly once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.golden import GoldenStore
from ..bench.packs import CORE_PACK_NAME, PackParams, get_pack
from ..bench.problem import Problem
from ..bench.suite import all_problems
from ..engine.engine import EXECUTION_MODES, EngineConfig, ExecutionEngine
from ..engine.procpool import ProcessScheduler, UnitFailure, WorkerSpec, aggregate_engine_stats
from ..evalkit.evaluator import EvaluationConfig, Evaluator
from ..evalkit.outcome import AttemptRecord, EvalReport, SampleResult
from ..faults import RetryPolicy, fault_point, fault_stats
from .journal import SweepJournal, sweep_fingerprint, unit_key
from ..llm.base import LLMClient
from ..llm.profiles import DEFAULT_PROFILES, DesignerProfile
from ..llm.simulated import SimulatedDesigner
from ..netlist.errors import ErrorCategory
from ..prompts.system_prompt import PromptConfig

__all__ = ["SweepConfig", "SweepResult", "run_model", "run_sweep"]

#: Feedback-iteration counts reported by the paper's tables.
FEEDBACK_COLUMNS: Tuple[int, ...] = (0, 1, 3)

#: Pass@k values reported by the paper's tables.
PASS_AT: Tuple[int, ...] = (1, 5)


@dataclass(frozen=True)
class SweepConfig:
    """Configuration of a full table sweep.

    ``pack`` selects the problem pack the sweep enumerates (default: the
    paper's ``core`` suite) and ``pack_params`` overrides the pack's
    generation parameters (parametric packs such as ``wdm-links``).

    ``workers`` and ``cache_dir`` configure the execution engine: the sweep's
    nested loops are flattened into independent ``(client, restrictions,
    problem, sample)`` work units and run on a thread pool of ``workers``
    threads (``1`` = sequential, ``0`` = one per core), with simulations
    served from a content-addressed cache optionally persisted under
    ``cache_dir``.  Reports are byte-identical for any worker count.

    ``solver_backend`` selects the circuit-solver backend
    (``auto``/``dense``/``cascade``); backends are numerically equivalent,
    so it changes sweep runtime but never the reported numbers.  The same
    holds for ``plan_cache_entries`` (capacity of the solver's
    topology-keyed compiled-plan cache -- structurally identical candidate
    netlists across samples and workers compile once),
    ``wavelength_chunk`` (bounds the solver's peak per-evaluation workspace
    on large grids) and ``batch_size`` (when > 1, trajectories advance in
    lockstep and each feedback iteration's structure-sharing candidate
    netlists -- samples that differ only in instance settings -- are fused
    into shared batched executor passes of at most ``batch_size`` samples;
    reports are identical to the per-sample path).

    ``execution_mode`` selects the parallel tier: ``"thread"`` (default)
    runs work units on the engine's thread pool; ``"process"`` shards them
    across ``processes`` worker processes (``0`` = one per core), each of
    which rebuilds its engine and clients from a picklable spec and shares
    the on-disk simulation cache and compiled-plan spill through
    ``cache_dir``.  Results merge in unit order, so process-sharded sweeps
    are byte-identical to sequential ones.  Process mode requires
    spec-constructible clients (the bundled :class:`SimulatedDesigner`);
    live API clients hold sockets that cannot cross a process boundary.

    Robustness knobs: ``retry_attempts`` / ``retry_backoff`` budget the
    process tier's per-unit crash/hang recovery (isolated re-runs on fresh
    pools with exponential backoff), ``unit_timeout`` arms the hung-worker
    watchdog, and ``journal_dir`` enables incremental checkpointing -- every
    completed trajectory is appended to a line-JSON journal keyed by the
    sweep's semantic fingerprint, so a killed run restarted with ``resume``
    recomputes only the missing samples and reports byte-identically (see
    :mod:`repro.harness.journal`).  None of these knobs changes reported
    numbers.
    """

    samples_per_problem: int = 5
    max_feedback_iterations: int = 3
    num_wavelengths: int = 41
    base_seed: int = 0
    problems: Optional[Tuple[str, ...]] = None
    workers: int = 1
    cache_dir: Optional[str] = None
    pack: str = CORE_PACK_NAME
    pack_params: Optional[PackParams] = None
    solver_backend: str = "auto"
    plan_cache_entries: int = 128
    wavelength_chunk: Optional[int] = None
    batch_size: int = 1
    execution_mode: str = "thread"
    processes: int = 0
    retry_attempts: int = 2
    retry_backoff: float = 0.1
    unit_timeout: Optional[float] = None
    journal_dir: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution_mode {self.execution_mode!r}; "
                f"choose one of {list(EXECUTION_MODES)}"
            )
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")

    def unit_retry_policy(self) -> RetryPolicy:
        """The process tier's per-unit retry budget these knobs describe."""
        return RetryPolicy(attempts=self.retry_attempts, base_delay=self.retry_backoff)

    def engine_config(self) -> EngineConfig:
        """Build the corresponding :class:`EngineConfig`."""
        return EngineConfig(
            workers=self.workers,
            cache_dir=self.cache_dir,
            solver_backend=self.solver_backend,
            plan_cache_entries=self.plan_cache_entries,
            wavelength_chunk=self.wavelength_chunk,
            batch_size=self.batch_size,
            execution_mode=self.execution_mode,
            processes=self.processes,
        )

    def evaluation_config(self, *, include_restrictions: bool) -> EvaluationConfig:
        """Build the corresponding :class:`EvaluationConfig`."""
        return EvaluationConfig(
            samples_per_problem=self.samples_per_problem,
            max_feedback_iterations=self.max_feedback_iterations,
            num_wavelengths=self.num_wavelengths,
            include_restrictions=include_restrictions,
            base_seed=self.base_seed,
        )

    def select_problems(self) -> List[Problem]:
        """Resolve the problem subset of the configured pack.

        Defaults to every problem of ``pack`` (for ``core``, the full
        24-problem suite); ``problems`` narrows the selection by name.
        """
        problems = list(all_problems(self.pack, self.pack_params))
        if self.problems is None:
            return problems
        wanted = set(self.problems)
        selected = [p for p in problems if p.name in wanted]
        missing = wanted - {p.name for p in selected}
        if missing:
            raise KeyError(f"unknown problems requested: {sorted(missing)}")
        return selected

    def prompt_config(self, *, include_restrictions: bool) -> PromptConfig:
        """Build the prompt configuration, with the pack note for non-core packs."""
        pack = get_pack(self.pack)
        return PromptConfig(
            include_restrictions=include_restrictions,
            pack_note=pack.prompt_note() if pack.name != CORE_PACK_NAME else None,
        )


@dataclass
class SweepResult:
    """Reports of a sweep, keyed by (model name, with_restrictions).

    ``engine_stats`` is populated by process-mode sweeps: the per-worker
    ``ExecutionEngine.stats()`` snapshots merged with
    :func:`repro.engine.procpool.aggregate_engine_stats` (counters summed,
    rates recomputed).  Thread-mode sweeps leave it ``None`` -- the caller
    holds the live engine and can ask it directly.
    """

    config: SweepConfig
    reports: Dict[Tuple[str, bool], EvalReport] = field(default_factory=dict)
    engine_stats: Optional[Dict[str, object]] = None

    def report(self, model: str, *, with_restrictions: bool) -> EvalReport:
        """Look up one report."""
        return self.reports[(model, with_restrictions)]

    def models(self) -> List[str]:
        """Model names present in the sweep, in insertion order."""
        seen: List[str] = []
        for model, _ in self.reports:
            if model not in seen:
                seen.append(model)
        return seen

    def packs(self) -> List[str]:
        """Problem packs present in the sweep's reports, in insertion order."""
        seen: List[str] = []
        for report in self.reports.values():
            if report.pack not in seen:
                seen.append(report.pack)
        return seen

    def to_dict(self) -> Dict[str, object]:
        """Serialise every report (used for persistence)."""
        return {
            f"{model}|{'with' if restrictions else 'without'}_restrictions": report.to_dict()
            for (model, restrictions), report in self.reports.items()
        }

    def save(self, path: Path | str) -> None:
        """Write the sweep results to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: Path | str, config: Optional[SweepConfig] = None) -> "SweepResult":
        """Reload a sweep previously written by :meth:`save`.

        The reloaded result supports every aggregation (Pass@k tables, error
        breakdowns) without re-running the evaluation.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        result = cls(config=config if config is not None else SweepConfig())
        for key, report_payload in payload.items():
            model, _, suffix = key.rpartition("|")
            with_restrictions = suffix == "with_restrictions"
            report = EvalReport.from_dict(report_payload)
            result.reports[(model or report.model, with_restrictions)] = report
        return result


# ----------------------------------------------------------------------
# Process-sharded execution
#
# The parent never ships live objects to workers: each worker receives a
# picklable payload (the SweepConfig, designer profiles, seeds) and rebuilds
# its own engine, golden store, evaluators and clients once per process.
# Work units are index tuples into the worker-rebuilt structures, and the
# scheduler merges results back in unit order, so process-sharded sweeps are
# byte-identical to sequential ones.
# ----------------------------------------------------------------------
def _client_specs(clients: Sequence[LLMClient]) -> List[Tuple[DesignerProfile, int]]:
    """Picklable rebuild specs of the sweep's clients (process mode only)."""
    specs: List[Tuple[DesignerProfile, int]] = []
    for client in clients:
        if not isinstance(client, SimulatedDesigner):
            raise ValueError(
                "execution_mode='process' requires spec-constructible clients "
                f"(the bundled SimulatedDesigner); got {type(client).__name__}. "
                "Run live API clients in thread mode."
            )
        specs.append((client.profile, client.base_seed))
    return specs


def _build_sweep_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker initializer: rebuild one process's full evaluation context.

    Runs once per worker process (resolved by dotted reference from
    :class:`~repro.engine.procpool.WorkerSpec`).  The worker's engine is
    single-threaded thread-mode -- parallelism lives at the process tier --
    but shares the parent's ``cache_dir`` (simulation ``.npz`` entries and
    the compiled-plan spill), so workers warm each other across the sweep.
    """
    config: SweepConfig = payload["config"]  # type: ignore[assignment]
    engine = ExecutionEngine(
        replace(config.engine_config(), execution_mode="thread", workers=1, processes=0)
    )
    golden_store = GoldenStore(
        num_wavelengths=config.num_wavelengths,
        engine=engine,
        pack=config.pack,
        pack_params=config.pack_params,
    )
    restriction_settings: Tuple[bool, ...] = tuple(payload["restrictions"])  # type: ignore[arg-type]
    return {
        "config": config,
        "engine": engine,
        "problems": config.select_problems(),
        "clients": [
            SimulatedDesigner(profile, base_seed=seed)
            for profile, seed in payload["clients"]  # type: ignore[union-attr]
        ],
        "evaluators": {
            include_restrictions: Evaluator(
                config.evaluation_config(include_restrictions=include_restrictions),
                golden_store=golden_store,
                engine=engine,
            )
            for include_restrictions in restriction_settings
        },
        "prompt_configs": {
            include_restrictions: config.prompt_config(
                include_restrictions=include_restrictions
            )
            for include_restrictions in restriction_settings
        },
    }


def _run_sweep_unit(context: Dict[str, object], unit: Tuple[bool, int, int, int]):
    """Worker runner: one (restrictions, client, problem, sample) trajectory."""
    include_restrictions, client_index, problem_index, sample_index = unit
    return context["evaluators"][include_restrictions].run_sample(  # type: ignore[index]
        context["clients"][client_index],  # type: ignore[index]
        context["problems"][problem_index],  # type: ignore[index]
        sample_index,
        prompt_config=context["prompt_configs"][include_restrictions],  # type: ignore[index]
    )


def _run_sweep_shard(context: Dict[str, object], units: List[Tuple[bool, int, int, int]]):
    """Worker shard runner for ``batch_size > 1``: fuse the shard's units.

    Contiguous runs of the shard sharing one restriction setting advance in
    lockstep through ``run_samples_batched``, preserving the batch-fusion
    wins of PR 5 inside each shard.  Each trajectory is a pure function of
    its own history, so any sharding yields the same per-unit results.
    """
    results = []
    lo = 0
    while lo < len(units):
        include_restrictions = units[lo][0]
        hi = lo
        while hi < len(units) and units[hi][0] == include_restrictions:
            hi += 1
        results.extend(
            context["evaluators"][include_restrictions].run_samples_batched(  # type: ignore[index]
                [
                    (
                        context["clients"][client_index],  # type: ignore[index]
                        context["problems"][problem_index],  # type: ignore[index]
                        sample_index,
                    )
                    for _, client_index, problem_index, sample_index in units[lo:hi]
                ],
                prompt_config=context["prompt_configs"][include_restrictions],  # type: ignore[index]
            )
        )
        lo = hi
    return results


def _sweep_worker_stats(context: Dict[str, object]) -> Dict[str, object]:
    """Worker stats snapshot, merged in the parent across all workers."""
    return context["engine"].stats()  # type: ignore[union-attr]


def _crashed_sample(problem_name: str, sample_index: int, failure: UnitFailure) -> SampleResult:
    """Synthesize the failure record of a unit whose worker died or raised."""
    detail = (
        "worker process crashed while evaluating this unit"
        if failure.crashed
        else f"worker failed to evaluate this unit: {failure.message}"
    )
    sample = SampleResult(problem=problem_name, sample_index=sample_index)
    sample.attempts.append(
        AttemptRecord(
            iteration=0,
            syntax_ok=False,
            functional_ok=False,
            error_category=ErrorCategory.OTHER_SYNTAX,
            error_detail=detail,
        )
    )
    return sample


def _open_journal(
    config: SweepConfig,
    model_names: Sequence[str],
    restriction_settings: Sequence[bool],
) -> Tuple[Optional[SweepJournal], Dict[Tuple[bool, str, str, int], SampleResult]]:
    """The sweep's journal and its already-completed trajectories.

    ``(None, {})`` when journalling is off.  Without ``resume`` an existing
    journal file for the same fingerprint is discarded first, so the fresh
    run's checkpoint history starts clean.
    """
    if config.journal_dir is None:
        return None, {}
    fingerprint = sweep_fingerprint(config, tuple(model_names), tuple(restriction_settings))
    journal = SweepJournal(config.journal_dir, fingerprint)
    if config.resume:
        return journal, journal.load()
    journal.discard()
    return journal, {}


def _map_units_process(
    config: SweepConfig,
    client_specs: List[Tuple[DesignerProfile, int]],
    restriction_settings: Tuple[bool, ...],
    units: List[Tuple[bool, int, int, int]],
    problems: List[Problem],
    model_names: Optional[Sequence[str]] = None,
    journal: Optional[SweepJournal] = None,
    completed: Optional[Dict[Tuple[bool, str, str, int], SampleResult]] = None,
) -> Tuple[List[SampleResult], Dict[str, object]]:
    """Run unit specs on a process pool; returns ordered samples and stats.

    With a journal, units already completed by a prior run are served from
    ``completed`` without touching the pool, and each freshly finished unit
    is checkpointed the moment its shard result lands in the parent.
    """
    spec = WorkerSpec(
        builder_ref="repro.harness.runner:_build_sweep_worker",
        payload={
            "config": config,
            "clients": client_specs,
            "restrictions": restriction_settings,
        },
    )
    scheduler = ProcessScheduler(
        spec,
        processes=config.processes,
        retry_policy=config.unit_retry_policy(),
        unit_timeout=config.unit_timeout,
    )
    completed = completed or {}
    keys = [
        unit_key(
            unit[0],
            model_names[unit[1]] if model_names is not None else str(unit[1]),
            problems[unit[2]].name,
            unit[3],
        )
        for unit in units
    ]
    pending = [index for index, key in enumerate(keys) if key not in completed]

    def on_result(position: int, outcome: object) -> None:
        key = keys[pending[position]]
        fault_point("sweep.unit", key="|".join(map(str, key)))
        if journal is not None and isinstance(outcome, SampleResult):
            journal.record(key, outcome)

    per_task = config.batch_size <= 1
    raw, stats_list = scheduler.map(
        "repro.harness.runner:_run_sweep_unit"
        if per_task
        else "repro.harness.runner:_run_sweep_shard",
        [units[index] for index in pending],
        per_task=per_task,
        stats_ref="repro.harness.runner:_sweep_worker_stats",
        on_result=on_result if journal is not None else None,
    )
    samples: List[Optional[SampleResult]] = [completed.get(key) for key in keys]
    for index, outcome in zip(pending, raw):
        if isinstance(outcome, UnitFailure):
            samples[index] = _crashed_sample(problems[units[index][2]].name, units[index][3], outcome)
        else:
            samples[index] = outcome
    engine_stats = aggregate_engine_stats(stats_list)
    engine_stats["procpool"] = dict(scheduler.counters)
    parent_faults = fault_stats()
    if parent_faults:
        engine_stats["parent_faults"] = parent_faults
    assert all(sample is not None for sample in samples)
    return samples, engine_stats  # type: ignore[return-value]


def run_model(
    client: LLMClient,
    *,
    include_restrictions: bool,
    config: Optional[SweepConfig] = None,
    golden_store: Optional[GoldenStore] = None,
    engine: Optional[ExecutionEngine] = None,
) -> EvalReport:
    """Evaluate one client over the suite under one prompt configuration.

    With ``config.execution_mode == "process"`` (and no live ``engine`` /
    ``golden_store``, which cannot cross process boundaries) the problem x
    sample units are sharded across worker processes; the report is
    byte-identical to the thread-mode run.
    """
    config = config if config is not None else SweepConfig()
    model = getattr(client, "name", type(client).__name__)
    if config.execution_mode == "process" and engine is None and golden_store is None:
        client_specs = _client_specs([client])
        problems = config.select_problems()
        journal, completed = _open_journal(config, (model,), (include_restrictions,))
        units = [
            (include_restrictions, 0, problem_index, sample_index)
            for problem_index in range(len(problems))
            for sample_index in range(config.samples_per_problem)
        ]
        samples, _ = _map_units_process(
            config,
            client_specs,
            (include_restrictions,),
            units,
            problems,
            model_names=(model,),
            journal=journal,
            completed=completed,
        )
        if journal is not None:
            journal.close()
        packs = {problem.pack for problem in problems}
        report = EvalReport(
            model=model,
            with_restrictions=include_restrictions,
            samples_per_problem=config.samples_per_problem,
            max_feedback_iterations=config.max_feedback_iterations,
            pack=packs.pop() if len(packs) == 1 else "mixed",
        )
        for sample in samples:
            report.add(sample)
        return report
    if engine is None and golden_store is None:
        engine = ExecutionEngine(config.engine_config())
    if golden_store is None:
        golden_store = GoldenStore(
            num_wavelengths=config.num_wavelengths,
            engine=engine,
            pack=config.pack,
            pack_params=config.pack_params,
        )
    evaluation_config = config.evaluation_config(include_restrictions=include_restrictions)
    evaluator = Evaluator(evaluation_config, golden_store=golden_store, engine=engine)
    prompt_config = config.prompt_config(include_restrictions=include_restrictions)
    if config.journal_dir is None:
        return evaluator.run_suite(client, config.select_problems(), prompt_config=prompt_config)
    return _run_model_journaled(
        config, client, model, include_restrictions, evaluator, prompt_config
    )


def _run_model_journaled(
    config: SweepConfig,
    client: LLMClient,
    model: str,
    include_restrictions: bool,
    evaluator: Evaluator,
    prompt_config: PromptConfig,
) -> EvalReport:
    """The thread-tier twin of :meth:`Evaluator.run_suite`, checkpointed.

    Replicates ``run_suite``'s unit enumeration and fold order exactly --
    per-sample units on the engine's pool, or lockstep batched dispatch when
    ``batch_size > 1`` -- but serves journaled trajectories without
    recomputing them and records each fresh one as it completes, so the
    report is byte-identical to an uncheckpointed (or uninterrupted) run.
    """
    problems = config.select_problems()
    journal, completed = _open_journal(config, (model,), (include_restrictions,))
    assert journal is not None
    units = [
        (problem, sample_index)
        for problem in problems
        for sample_index in range(config.samples_per_problem)
    ]
    keys = [
        unit_key(include_restrictions, model, problem.name, sample_index)
        for problem, sample_index in units
    ]
    try:
        if getattr(evaluator.engine.config, "batch_size", 1) > 1:
            pending = [index for index, key in enumerate(keys) if key not in completed]
            for index in pending:
                fault_point("sweep.unit", key="|".join(map(str, keys[index])))
            fresh = evaluator.run_samples_batched(
                [(client, units[index][0], units[index][1]) for index in pending],
                prompt_config=prompt_config,
            )
            samples: List[Optional[SampleResult]] = [completed.get(key) for key in keys]
            for index, sample in zip(pending, fresh):
                journal.record(keys[index], sample)
                samples[index] = sample
        else:

            def run_unit(indexed: Tuple[int, Tuple[Problem, int]]) -> SampleResult:
                index, (problem, sample_index) = indexed
                done = completed.get(keys[index])
                if done is not None:
                    return done
                fault_point("sweep.unit", key="|".join(map(str, keys[index])))
                sample = evaluator.run_sample(
                    client, problem, sample_index, prompt_config=prompt_config
                )
                journal.record(keys[index], sample)
                return sample

            samples = evaluator.engine.map(run_unit, list(enumerate(units)))
    finally:
        journal.close()
    packs = {problem.pack for problem in problems}
    report = EvalReport(
        model=model,
        with_restrictions=include_restrictions,
        samples_per_problem=config.samples_per_problem,
        max_feedback_iterations=config.max_feedback_iterations,
        pack=packs.pop() if len(packs) == 1 else "mixed",
    )
    for sample in samples:
        assert sample is not None
        report.add(sample)
    return report


def run_sweep(
    config: Optional[SweepConfig] = None,
    *,
    profiles: Optional[Sequence[DesignerProfile]] = None,
    restriction_settings: Sequence[bool] = (False, True),
    clients: Optional[Sequence[LLMClient]] = None,
    engine: Optional[ExecutionEngine] = None,
) -> SweepResult:
    """Run the full Tables III / IV sweep.

    By default the five simulated designer profiles are used; pass ``clients``
    to evaluate real LLM API clients instead (clients must be thread-safe
    when ``config.workers > 1``; the bundled simulated designers are).

    The four nested loops of the paper's evaluation -- model, restriction
    setting, problem, sample -- are flattened into independent work units and
    executed on the engine's worker pool.  Each unit's generation seed is
    derived from ``(base_seed, problem, sample)`` alone, and results are
    folded back in loop order, so the returned reports are byte-identical for
    any worker count.
    """
    config = config if config is not None else SweepConfig()
    if clients is None:
        profiles = list(profiles) if profiles is not None else list(DEFAULT_PROFILES)
        clients = [SimulatedDesigner(profile, base_seed=config.base_seed) for profile in profiles]
    clients = list(clients)
    model_names = [getattr(client, "name", type(client).__name__) for client in clients]
    if config.execution_mode == "process":
        # Process tier: ship picklable specs, rebuild everything worker-side.
        # A caller-provided engine cannot cross the process boundary and is
        # ignored here; workers share its on-disk tiers via cache_dir.
        client_specs = _client_specs(clients)
        problems = config.select_problems()
        restriction_settings = tuple(restriction_settings)
        journal, completed = _open_journal(config, model_names, restriction_settings)
        unit_specs = [
            (include_restrictions, client_index, problem_index, sample_index)
            for include_restrictions in restriction_settings
            for client_index in range(len(clients))
            for problem_index in range(len(problems))
            for sample_index in range(config.samples_per_problem)
        ]
        samples, engine_stats = _map_units_process(
            config,
            client_specs,
            restriction_settings,
            unit_specs,
            problems,
            model_names=model_names,
            journal=journal,
            completed=completed,
        )
        if journal is not None:
            journal.close()
        result = SweepResult(config=config, engine_stats=engine_stats)
        for (include_restrictions, client_index, _, _), sample in zip(unit_specs, samples):
            client = clients[client_index]
            model = getattr(client, "name", type(client).__name__)
            report = result.reports.get((model, include_restrictions))
            if report is None:
                report = EvalReport(
                    model=model,
                    with_restrictions=include_restrictions,
                    samples_per_problem=config.samples_per_problem,
                    max_feedback_iterations=config.max_feedback_iterations,
                    pack=config.pack,
                )
                result.reports[(model, include_restrictions)] = report
            report.add(sample)
        return result
    if engine is None:
        engine = ExecutionEngine(config.engine_config())
    golden_store = GoldenStore(
        num_wavelengths=config.num_wavelengths,
        engine=engine,
        pack=config.pack,
        pack_params=config.pack_params,
    )
    problems = config.select_problems()
    restriction_settings = tuple(restriction_settings)

    evaluators = {
        include_restrictions: Evaluator(
            config.evaluation_config(include_restrictions=include_restrictions),
            golden_store=golden_store,
            engine=engine,
        )
        for include_restrictions in restriction_settings
    }
    prompt_configs = {
        include_restrictions: config.prompt_config(include_restrictions=include_restrictions)
        for include_restrictions in restriction_settings
    }

    # One work unit per (restrictions, client, problem, sample) trajectory,
    # in the exact order the sequential loops would visit them.
    units = [
        (include_restrictions, client, problem, sample_index)
        for include_restrictions in restriction_settings
        for client in clients
        for problem in problems
        for sample_index in range(config.samples_per_problem)
    ]
    journal, completed = _open_journal(config, model_names, restriction_settings)

    def key_of(unit) -> Tuple[bool, str, str, int]:
        include_restrictions, client, problem, sample_index = unit
        model = getattr(client, "name", type(client).__name__)
        return unit_key(include_restrictions, model, problem.name, sample_index)

    try:
        if config.batch_size > 1:
            # Batched dispatch: per restriction setting, all trajectories
            # advance in lockstep and every iteration's structure-sharing
            # candidates (samples that mutate settings, not topology) fuse
            # into shared executor passes.  Unit order -- and therefore the
            # folded reports -- are identical to the per-sample path.
            samples = []
            for include_restrictions in restriction_settings:
                group = [unit for unit in units if unit[0] == include_restrictions]
                pending = [unit for unit in group if key_of(unit) not in completed]
                for unit in pending:
                    fault_point("sweep.unit", key="|".join(map(str, key_of(unit))))
                fresh = iter(
                    evaluators[include_restrictions].run_samples_batched(
                        [(client, problem, s) for _, client, problem, s in pending],
                        prompt_config=prompt_configs[include_restrictions],
                    )
                )
                for unit in group:
                    key = key_of(unit)
                    done = completed.get(key)
                    if done is None:
                        done = next(fresh)
                        if journal is not None:
                            journal.record(key, done)
                    samples.append(done)
        else:

            def run_unit(unit):
                """Run one (restrictions, client, problem, sample) trajectory."""
                include_restrictions, client, problem, sample_index = unit
                key = key_of(unit)
                done = completed.get(key)
                if done is not None:
                    return done
                fault_point("sweep.unit", key="|".join(map(str, key)))
                sample = evaluators[include_restrictions].run_sample(
                    client,
                    problem,
                    sample_index,
                    prompt_config=prompt_configs[include_restrictions],
                )
                if journal is not None:
                    journal.record(key, sample)
                return sample

            samples = engine.map(run_unit, units)
    finally:
        if journal is not None:
            journal.close()

    result = SweepResult(config=config)
    for (include_restrictions, client, _, _), sample in zip(units, samples):
        model = getattr(client, "name", type(client).__name__)
        report = result.reports.get((model, include_restrictions))
        if report is None:
            report = EvalReport(
                model=model,
                with_restrictions=include_restrictions,
                samples_per_problem=config.samples_per_problem,
                max_feedback_iterations=config.max_feedback_iterations,
                pack=config.pack,
            )
            result.reports[(model, include_restrictions)] = report
        report.add(sample)
    return result
