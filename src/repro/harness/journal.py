"""Incremental sweep checkpointing: the journal behind ``--resume``.

A sweep killed halfway (OOM, pre-emption, a chaos ``kill`` injection) loses
every completed trajectory unless someone wrote them down.  The
:class:`SweepJournal` is that record: a line-JSON file, one line per
completed ``(restrictions, model, problem, sample)`` trajectory, appended
and flushed the moment the trajectory finishes.  Resubmitting the same
sweep with ``resume`` enabled replays the journal, computes only the
missing samples, and folds journaled and fresh results back in unit order
-- so the final report is byte-identical to an uninterrupted run (report
serialisation excludes response texts, which the journal therefore drops).

The journal file is keyed by a *semantic* fingerprint of the sweep: only
the fields that determine results (problems, seeds, sample counts,
feedback budget, models, restriction settings) participate, so a run
killed in process mode can resume in thread mode -- or with a different
worker count -- and still verify as the same sweep.  Performance and
robustness knobs never invalidate a journal.

Crash tolerance: appends are ``flush`` + best-effort ``fsync`` per line,
and :meth:`SweepJournal.load` ignores a truncated trailing line, so a
process killed mid-write costs at most the final in-flight trajectory.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..engine.fingerprint import stable_hash
from ..evalkit.outcome import AttemptRecord, SampleResult
from ..netlist.errors import ErrorCategory

__all__ = ["SweepJournal", "sweep_fingerprint", "unit_key"]

#: A journal entry's identity: (with_restrictions, model, problem, sample).
UnitKey = Tuple[bool, str, str, int]


def sweep_fingerprint(
    config,
    models: Tuple[str, ...],
    restriction_settings: Tuple[bool, ...],
) -> str:
    """Content address of a sweep's *semantic* identity.

    Derived only from the fields that determine the reported numbers;
    performance knobs (workers, batch size, execution mode, process count,
    backends, caches) and robustness knobs (retries, timeouts) are
    deliberately excluded so a resumed run may use different ones.
    """
    payload = {
        "samples_per_problem": config.samples_per_problem,
        "max_feedback_iterations": config.max_feedback_iterations,
        "num_wavelengths": config.num_wavelengths,
        "base_seed": config.base_seed,
        "problems": list(config.problems) if config.problems is not None else None,
        "pack": config.pack,
        "pack_params": dict(config.pack_params) if config.pack_params else None,
        "models": list(models),
        "restrictions": [bool(r) for r in restriction_settings],
    }
    return stable_hash("sweep-journal", json.dumps(payload, sort_keys=True, default=str))


def unit_key(with_restrictions: bool, model: str, problem: str, sample_index: int) -> UnitKey:
    """Canonical identity of one trajectory inside a sweep."""
    return (bool(with_restrictions), str(model), str(problem), int(sample_index))


def _sample_to_payload(sample: SampleResult) -> List[Dict[str, object]]:
    """Journal form of a trajectory: everything the report serialises, plus
    ``error_detail`` (crash diagnostics survive a resume); response texts are
    dropped, exactly as :meth:`EvalReport.to_dict` drops them."""
    payloads: List[Dict[str, object]] = []
    for attempt in sample.attempts:
        payload: Dict[str, object] = {
            "iteration": attempt.iteration,
            "syntax_ok": attempt.syntax_ok,
            "functional_ok": attempt.functional_ok,
            "error_category": attempt.error_category.value if attempt.error_category else None,
            "error_detail": attempt.error_detail,
        }
        # Guardrail flags only when set, mirroring EvalReport.to_dict: clean
        # trajectories journal to exactly their pre-flag bytes.
        if attempt.degraded:
            payload["degraded"] = True
        if attempt.nonfinite:
            payload["nonfinite"] = True
        payloads.append(payload)
    return payloads


def _sample_from_payload(
    problem: str, sample_index: int, attempts: List[Dict[str, object]]
) -> SampleResult:
    sample = SampleResult(problem=problem, sample_index=sample_index)
    for attempt in attempts:
        raw_category = attempt.get("error_category")
        sample.attempts.append(
            AttemptRecord(
                iteration=int(attempt["iteration"]),  # type: ignore[arg-type]
                syntax_ok=bool(attempt["syntax_ok"]),
                functional_ok=bool(attempt["functional_ok"]),
                error_category=ErrorCategory(raw_category) if raw_category else None,
                error_detail=(
                    str(attempt["error_detail"])
                    if attempt.get("error_detail") is not None
                    else None
                ),
                degraded=bool(attempt.get("degraded", False)),
                nonfinite=bool(attempt.get("nonfinite", False)),
            )
        )
    return sample


class SweepJournal:
    """Append-only checkpoint log of one sweep's completed trajectories.

    Parameters
    ----------
    directory:
        Where journal files live; one file per sweep fingerprint
        (``sweep-<fingerprint>.jsonl``).
    fingerprint:
        The sweep's semantic fingerprint (see :func:`sweep_fingerprint`).

    Thread-safe: trajectory completions from scheduler threads (thread
    mode) or the shard-merge callback (process mode) append under one lock,
    each line flushed -- and fsynced best-effort -- before the lock drops.
    """

    def __init__(self, directory: Path | str, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.path = self.directory / f"sweep-{fingerprint}.jsonl"
        self._lock = threading.Lock()
        self._handle = None

    # ------------------------------------------------------------------
    def load(self) -> Dict[UnitKey, SampleResult]:
        """Completed trajectories of prior runs (corrupt trailing line skipped).

        A line that fails to parse is tolerated only in the final position
        -- that is the SIGKILL-mid-write shape; corruption anywhere else
        means the file is not trustworthy and raises ``ValueError``.
        """
        completed: Dict[UnitKey, SampleResult] = {}
        if not self.path.exists():
            return completed
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = unit_key(
                    entry["with_restrictions"],
                    entry["model"],
                    entry["problem"],
                    entry["sample_index"],
                )
                sample = _sample_from_payload(key[2], key[3], entry["attempts"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if number == len(lines) - 1:
                    break  # torn trailing write: the journal up to here is good
                raise ValueError(
                    f"journal {self.path} is corrupt at line {number + 1}: {exc}"
                ) from exc
            completed[key] = sample
        return completed

    def record(self, key: UnitKey, sample: SampleResult) -> None:
        """Append one completed trajectory (durable before returning)."""
        entry = {
            "with_restrictions": key[0],
            "model": key[1],
            "problem": key[2],
            "sample_index": key[3],
            "attempts": _sample_to_payload(sample),
        }
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass  # durability is best-effort on exotic filesystems

    def close(self) -> None:
        """Close the append handle (reopened transparently by ``record``)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def discard(self) -> None:
        """Delete the journal file (after its sweep completed)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
