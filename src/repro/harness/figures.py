"""Regeneration of the paper's figures (as text artefacts).

* Fig. 2 -- the example problem description (MZI ps),
* Fig. 3 -- the system prompt template,
* Fig. 4 -- a feedback-correction trace for the MZI ps problem: the initial
  response contains a "Wrong ports" error, the classified feedback is sent
  back, and the corrected response passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bench.suite import get_problem
from ..evalkit.evaluator import EvaluationConfig, Evaluator
from ..llm.base import assistant, system, user
from ..llm.mutations import apply_syntax_mutation
from ..llm.response import format_response
from ..llm.simulated import EchoDesigner, SimulatedDesigner
from ..netlist.errors import ErrorCategory
from ..prompts.feedback import build_feedback
from ..prompts.system_prompt import PromptConfig, build_system_prompt, build_user_prompt

__all__ = ["figure2_text", "figure3_text", "FeedbackTraceStep", "figure4_trace", "figure4_text"]

import numpy as np


def figure2_text(problem: str = "mzi_ps", pack: str = "core") -> str:
    """The example problem description of Fig. 2 (default: the MZI ps problem).

    Pass a different ``problem`` / ``pack`` pair to render the task statement
    of any registered problem the same way.
    """
    problem_obj = get_problem(problem, pack)
    return f"Problem Description\n{problem_obj.description}"


def figure3_text(*, include_restrictions: bool = True) -> str:
    """The system prompt template of Fig. 3."""
    return build_system_prompt(config=PromptConfig(include_restrictions=include_restrictions))


@dataclass
class FeedbackTraceStep:
    """One iteration of the Fig. 4 correction trace."""

    iteration: int
    response_excerpt: str
    verdict: str
    feedback: Optional[str] = None


def figure4_trace(num_wavelengths: int = 41) -> List[FeedbackTraceStep]:
    """Reproduce the Fig. 4 walk-through on the MZI ps problem.

    The first response deliberately contains a "Wrong ports" error (a
    connection to a port the MMI does not have); the classified feedback is
    generated exactly as the evaluator would, and the corrected second
    response passes both checks.
    """
    problem = get_problem("mzi_ps")
    evaluator = Evaluator(EvaluationConfig(num_wavelengths=num_wavelengths))
    rng = np.random.default_rng(4)

    golden = problem.golden_netlist()
    broken = apply_syntax_mutation(golden, ErrorCategory.WRONG_PORT, rng).netlist
    first_response = format_response(
        "Splitting the input with mmi1, routing the arms and recombining with mmi2.",
        broken.to_json(),
    )
    steps: List[FeedbackTraceStep] = []

    outcome = evaluator.evaluate_response(problem, first_response)
    assert outcome.error is not None
    feedback = build_feedback(problem.name, outcome.error)
    steps.append(
        FeedbackTraceStep(
            iteration=0,
            response_excerpt=_connections_excerpt(first_response),
            verdict=f"Evaluation: Syntax Error ({outcome.error.category.display_name})",
            feedback=feedback,
        )
    )

    second_response = format_response(
        "Fixed the invalid port reference reported by the evaluator.",
        golden.to_json(),
    )
    outcome2 = evaluator.evaluate_response(problem, second_response)
    steps.append(
        FeedbackTraceStep(
            iteration=1,
            response_excerpt=_connections_excerpt(second_response),
            verdict="Evaluation: PASS" if outcome2.syntax_ok and outcome2.functional_ok else "Evaluation: FAIL",
        )
    )
    return steps


def _connections_excerpt(response_text: str) -> str:
    """Extract the connections section of a response for compact display."""
    lines = response_text.splitlines()
    start = next((i for i, line in enumerate(lines) if '"connections"' in line), None)
    if start is None:
        return "\n".join(lines[:6])
    end = next(
        (i for i in range(start + 1, len(lines)) if lines[i].strip().startswith("}")),
        min(start + 8, len(lines) - 1),
    )
    return "\n".join(lines[start : end + 1])


def figure4_text(num_wavelengths: int = 41) -> str:
    """Render the Fig. 4 trace as text."""
    parts: List[str] = ["Fig. 4: solving MZI ps with error feedback", ""]
    for step in figure4_trace(num_wavelengths=num_wavelengths):
        parts.append(f"Iter {step.iteration}: LLM response (connections section)")
        parts.append(step.response_excerpt)
        parts.append(step.verdict)
        if step.feedback:
            parts.append("")
            parts.append("Feedback prompt:")
            parts.append(step.feedback)
        parts.append("")
    return "\n".join(parts)
