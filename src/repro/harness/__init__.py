"""Experiment harness: sweeps, table and figure regeneration, ablations, CLI."""

from .ablation import (
    RestrictionAblationResult,
    restriction_ablation_text,
    run_restriction_ablation,
)
from .figures import FeedbackTraceStep, figure2_text, figure3_text, figure4_text, figure4_trace
from .formatting import format_percent, render_table
from .runner import FEEDBACK_COLUMNS, PASS_AT, SweepConfig, SweepResult, run_model, run_sweep
from .tables import (
    error_breakdown_rows,
    error_breakdown_text,
    packs_rows,
    packs_text,
    table1_rows,
    table1_text,
    table2_rows,
    table2_text,
    table3_rows,
    table3_text,
    table4_rows,
    table4_text,
)

__all__ = [
    "render_table",
    "format_percent",
    "RestrictionAblationResult",
    "run_restriction_ablation",
    "restriction_ablation_text",
    "SweepConfig",
    "SweepResult",
    "run_model",
    "run_sweep",
    "FEEDBACK_COLUMNS",
    "PASS_AT",
    "table1_rows",
    "table1_text",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "table4_rows",
    "table4_text",
    "error_breakdown_rows",
    "error_breakdown_text",
    "packs_rows",
    "packs_text",
    "figure2_text",
    "figure3_text",
    "figure4_text",
    "figure4_trace",
    "FeedbackTraceStep",
]
