"""Restriction ablation: which Table II restriction pays off the most?

Section III-D of the paper accumulates the restrictions from observed
failures and Table IV shows their combined effect.  This extension quantifies
the marginal contribution of individual restrictions: each setting evaluates
one model with only a subset of the restriction sentences present in the
system prompt, so the gain attributable to each restriction class is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.golden import GoldenStore
from ..engine.engine import ExecutionEngine
from ..evalkit.evaluator import Evaluator
from ..evalkit.outcome import EvalReport
from ..llm.base import LLMClient
from ..llm.simulated import SimulatedDesigner
from ..netlist.errors import ErrorCategory
from ..prompts.restrictions import RESTRICTIONS
from ..prompts.system_prompt import PromptConfig
from .formatting import format_percent, render_table
from .runner import SweepConfig

__all__ = ["RestrictionAblationResult", "run_restriction_ablation", "restriction_ablation_text"]


@dataclass
class RestrictionAblationResult:
    """Pass@1 syntax/functionality scores per restriction setting."""

    model: str
    config: SweepConfig
    reports: Dict[str, EvalReport] = field(default_factory=dict)

    def settings(self) -> List[str]:
        """Setting labels in evaluation order."""
        return list(self.reports)

    def rows(self, *, max_feedback: int = 0) -> List[List[str]]:
        """Table rows: setting, syntax Pass@1, functionality Pass@1."""
        return [
            [
                setting,
                format_percent(report.pass_at_k(1, metric="syntax", max_feedback=max_feedback)),
                format_percent(
                    report.pass_at_k(1, metric="functional", max_feedback=max_feedback)
                ),
            ]
            for setting, report in self.reports.items()
        ]


def run_restriction_ablation(
    client: Optional[LLMClient] = None,
    *,
    config: Optional[SweepConfig] = None,
    categories: Optional[Sequence[ErrorCategory]] = None,
    include_none_and_all: bool = True,
) -> RestrictionAblationResult:
    """Evaluate one model with individual restriction subsets.

    Parameters
    ----------
    client:
        The designer to evaluate; defaults to the GPT-4o-like simulated
        designer (the profile with the strongest restriction response).
    config:
        Sweep settings (problem subset, samples, wavelength grid).
    categories:
        Restriction categories to ablate individually; defaults to every
        restriction of Table II.
    include_none_and_all:
        Also evaluate the two reference settings with no restrictions and with
        all restrictions.
    """
    config = config if config is not None else SweepConfig()
    client = client if client is not None else SimulatedDesigner("GPT-4o")
    categories = (
        list(categories)
        if categories is not None
        else [restriction.category for restriction in RESTRICTIONS]
    )
    engine = ExecutionEngine(config.engine_config())
    golden_store = GoldenStore(
        num_wavelengths=config.num_wavelengths,
        engine=engine,
        pack=config.pack,
        pack_params=config.pack_params,
    )
    problems = config.select_problems()
    result = RestrictionAblationResult(model=getattr(client, "name", "client"), config=config)

    settings: List[Tuple[str, Optional[PromptConfig]]] = []
    if include_none_and_all:
        settings.append(("no restrictions", PromptConfig(include_restrictions=False)))
    for category in categories:
        settings.append(
            (
                f"only: {category.display_name}",
                PromptConfig(include_restrictions=True, restriction_categories=[category]),
            )
        )
    if include_none_and_all:
        settings.append(("all restrictions", PromptConfig(include_restrictions=True)))

    for label, prompt_config in settings:
        evaluator = Evaluator(
            config.evaluation_config(
                include_restrictions=bool(prompt_config and prompt_config.include_restrictions)
            ),
            golden_store=golden_store,
        )
        result.reports[label] = evaluator.run_suite(client, problems, prompt_config=prompt_config)
    return result


def restriction_ablation_text(result: RestrictionAblationResult, *, max_feedback: int = 0) -> str:
    """Render the restriction ablation as a plain-text table."""
    return render_table(
        ["Restriction setting", "Syntax P@1", "Func. P@1"],
        result.rows(max_feedback=max_feedback),
        title=f"Restriction ablation for {result.model} ({max_feedback} error-feedback rounds)",
    )
