"""Regeneration of the paper's tables.

* Table I  -- the benchmark description (problem list by category),
* Table II -- the failure types and restrictions,
* Table III -- syntax / functionality Pass@1 and Pass@5 without restrictions,
* Table IV  -- the same with restrictions,
* an additional error-class breakdown ablation not in the paper but useful to
  understand which restrictions pay off.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bench.packs import CORE_PACK_NAME, PackParams, pack_summaries
from ..bench.suite import problems_by_category, suite_summary
from ..netlist.errors import ErrorCategory
from ..prompts.restrictions import RESTRICTIONS
from .formatting import format_percent, render_table
from .runner import FEEDBACK_COLUMNS, PASS_AT, SweepResult

__all__ = [
    "table1_rows",
    "table1_text",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "table4_rows",
    "table4_text",
    "error_breakdown_rows",
    "error_breakdown_text",
    "packs_rows",
    "packs_text",
]


# ----------------------------------------------------------------------
# Table I -- benchmark description (per pack)
# ----------------------------------------------------------------------
def table1_rows(
    pack: str = CORE_PACK_NAME, params: Optional[PackParams] = None
) -> List[Tuple[str, str, str, int]]:
    """Rows of Table I for one pack: (category, design, description, golden instances)."""
    rows: List[Tuple[str, str, str, int]] = []
    summary_by_name = {entry["name"]: entry for entry in suite_summary(pack, params)}
    for category, problems in problems_by_category(pack, params).items():
        for problem in problems:
            entry = summary_by_name[problem.name]
            rows.append(
                (category, problem.title, problem.summary, int(entry["golden_instances"]))
            )
    return rows


def table1_text(pack: str = CORE_PACK_NAME, params: Optional[PackParams] = None) -> str:
    """Render Table I (benchmark description) for one problem pack."""
    title = "TABLE I: Benchmark Description"
    if pack != CORE_PACK_NAME:
        title += f" (pack: {pack})"
    return render_table(
        ["Category", "Design", "Description", "Golden instances"],
        table1_rows(pack, params),
        title=title,
    )


# ----------------------------------------------------------------------
# Problem-pack listing (the --list-packs CLI)
# ----------------------------------------------------------------------
def packs_rows() -> List[List[str]]:
    """Rows of the pack listing: name, title, problem count, categories, parametric."""
    return [
        [
            str(entry["name"]),
            str(entry["title"]),
            str(entry["num_problems"]),
            ", ".join(entry["categories"]),  # type: ignore[arg-type]
            "yes" if entry["parametric"] else "no",
        ]
        for entry in pack_summaries()
    ]


def packs_text() -> str:
    """Render the registered problem packs as a table."""
    return render_table(
        ["Pack", "Title", "Problems", "Categories", "Parametric"],
        packs_rows(),
        title="Registered problem packs",
    )


# ----------------------------------------------------------------------
# Table II -- restrictions
# ----------------------------------------------------------------------
def table2_rows() -> List[Tuple[str, str]]:
    """Rows of Table II: (failure type, restriction)."""
    rows = [(restriction.failure_type, restriction.text) for restriction in RESTRICTIONS]
    rows.append(("Other syntax error", "-"))
    return rows


def table2_text() -> str:
    """Render Table II (failure types and restrictions)."""
    return render_table(
        ["Failure Types", "Restrictions"],
        table2_rows(),
        title="TABLE II: Restrictions for the PIC design task",
    )


# ----------------------------------------------------------------------
# Tables III / IV -- Pass@k with and without restrictions
# ----------------------------------------------------------------------
def _passk_rows(
    sweep: SweepResult, *, with_restrictions: bool
) -> List[List[str]]:
    """One table row per model: Pass@k percentages over the feedback columns."""
    rows: List[List[str]] = []
    for model in sweep.models():
        key = (model, with_restrictions)
        if key not in sweep.reports:
            continue
        report = sweep.reports[key]
        label = f"{model} + restrictions" if with_restrictions else model
        if report.pack != CORE_PACK_NAME:
            label = f"{label} [{report.pack}]"
        row: List[str] = [label]
        for k in PASS_AT:
            for max_feedback in FEEDBACK_COLUMNS:
                row.append(
                    format_percent(report.pass_at_k(k, metric="syntax", max_feedback=max_feedback))
                )
                row.append(
                    format_percent(
                        report.pass_at_k(k, metric="functional", max_feedback=max_feedback)
                    )
                )
        rows.append(row)
    return rows


def _passk_headers() -> List[str]:
    """Header row of the Pass@k tables (Tables III / IV)."""
    headers = ["LLM"]
    for k in PASS_AT:
        for max_feedback in FEEDBACK_COLUMNS:
            headers.append(f"P@{k} {max_feedback}EF Syntax")
            headers.append(f"P@{k} {max_feedback}EF Func.")
    return headers


def _pack_suffix(sweep: SweepResult) -> str:
    """Title suffix naming the sweep's pack(s) when any is not the core pack."""
    packs = sweep.packs()
    if packs and set(packs) != {CORE_PACK_NAME}:
        return f" (pack: {', '.join(packs)})"
    return ""


def table3_rows(sweep: SweepResult) -> List[List[str]]:
    """Rows of Table III (no restrictions)."""
    return _passk_rows(sweep, with_restrictions=False)


def table3_text(sweep: SweepResult) -> str:
    """Render Table III: syntax / functionality evaluation without restrictions."""
    return render_table(
        _passk_headers(),
        table3_rows(sweep),
        title="TABLE III: Syntax and Functionality evaluation (without restrictions)"
        + _pack_suffix(sweep),
    )


def table4_rows(sweep: SweepResult) -> List[List[str]]:
    """Rows of Table IV (with the Table II restrictions in the system prompt)."""
    return _passk_rows(sweep, with_restrictions=True)


def table4_text(sweep: SweepResult) -> str:
    """Render Table IV: syntax / functionality evaluation with restrictions."""
    return render_table(
        _passk_headers(),
        table4_rows(sweep),
        title="TABLE IV: Syntax and Functionality evaluation (with restrictions)"
        + _pack_suffix(sweep),
    )


# ----------------------------------------------------------------------
# Ablation -- error-class breakdown
# ----------------------------------------------------------------------
def error_breakdown_rows(sweep: SweepResult) -> List[List[str]]:
    """Error counts per Table II category, per model and restriction setting."""
    categories = [c for c in ErrorCategory if c is not ErrorCategory.FUNCTIONAL]
    rows: List[List[str]] = []
    for (model, with_restrictions), report in sweep.reports.items():
        histogram = report.error_breakdown()
        label = f"{model} ({'with' if with_restrictions else 'without'} restrictions)"
        row = [label]
        for category in categories:
            row.append(str(histogram.get(category, 0)))
        row.append(str(histogram.get(ErrorCategory.FUNCTIONAL, 0)))
        rows.append(row)
    return rows


def error_breakdown_text(sweep: SweepResult) -> str:
    """Render the per-category error breakdown ablation."""
    categories = [c for c in ErrorCategory if c is not ErrorCategory.FUNCTIONAL]
    headers = ["LLM"] + [c.value for c in categories] + ["functional"]
    return render_table(
        headers,
        error_breakdown_rows(sweep),
        title="Ablation: error-class breakdown across all failed attempts",
    )
