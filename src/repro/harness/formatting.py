"""Plain-text table rendering used by the harness reports.

No third-party table library is available offline, so the harness renders its
tables with a small fixed-width formatter.  The output is intentionally close
to the layout of the paper's tables so results can be compared side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_percent"]


def format_percent(value: float, width: int = 6) -> str:
    """Format a percentage the way the paper's tables do (two decimals)."""
    return f"{value:{width}.2f}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    str_headers = [str(h) for h in headers]
    num_columns = len(str_headers)
    for row in str_rows:
        if len(row) != num_columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {num_columns}"
            )
    widths = [
        max(len(str_headers[col]), *(len(row[col]) for row in str_rows)) if str_rows else len(str_headers[col])
        for col in range(num_columns)
    ]
    separator = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(str_headers, widths)))
    lines.append(separator)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
