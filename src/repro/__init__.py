"""PICBench reproduction: benchmarking LLMs for photonic integrated circuit design.

The package is organised as:

* :mod:`repro.sim` -- the S-parameter circuit simulator substrate,
* :mod:`repro.netlist` -- the JSON netlist schema, parser and validator,
* :mod:`repro.meshes` -- Reck / Clements unitary mesh construction,
* :mod:`repro.switching` -- optical switch fabric topologies and routing,
* :mod:`repro.bench` -- the 24 PICBench design problems with golden solutions,
* :mod:`repro.prompts` -- system / feedback prompt construction,
* :mod:`repro.llm` -- LLM client protocol and simulated designer models,
* :mod:`repro.evalkit` -- syntax/functional evaluation, Pass@k, feedback loop,
* :mod:`repro.engine` -- parallel, cache-backed execution engine for the
  evaluation pipeline (content-addressed simulation cache, task scheduler),
* :mod:`repro.harness` -- experiment sweeps reproducing the paper's tables.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
