"""Prompt construction: system prompt (Fig. 3), restrictions (Table II), feedback (Fig. 4)."""

from .feedback import (
    CORRECTION_REQUEST,
    FUNCTIONAL_FEEDBACK,
    build_feedback,
    build_functional_feedback,
    build_syntax_feedback,
)
from .restrictions import RESTRICTIONS, Restriction, restriction_for, restrictions_text
from .system_prompt import (
    BASE_NOTES,
    JSON_FORMAT_SPEC,
    PromptConfig,
    build_system_prompt,
    build_user_prompt,
)

__all__ = [
    "Restriction",
    "RESTRICTIONS",
    "restrictions_text",
    "restriction_for",
    "PromptConfig",
    "JSON_FORMAT_SPEC",
    "BASE_NOTES",
    "build_system_prompt",
    "build_user_prompt",
    "CORRECTION_REQUEST",
    "FUNCTIONAL_FEEDBACK",
    "build_feedback",
    "build_syntax_feedback",
    "build_functional_feedback",
]
