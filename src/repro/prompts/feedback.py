"""Feedback prompts of the error-feedback loop (Section III-E, Fig. 4).

When the simulator rejects a generated netlist, the error is classified
(Table II) and the category, the detailed error report and a fixed correction
request are sent back to the LLM.  When the design simulates but its response
differs from the golden one, the paper's concise functional-feedback sentence
is used instead.
"""

from __future__ import annotations

from ..netlist.errors import ErrorCategory, PICBenchError
from .restrictions import restriction_for

__all__ = [
    "CORRECTION_REQUEST",
    "FUNCTIONAL_FEEDBACK",
    "build_syntax_feedback",
    "build_functional_feedback",
    "build_feedback",
]

CORRECTION_REQUEST = """\
Here are the errors in previously generated code.
Please follow the restrictions and write entire code by fixing the errors in previous code.
Please only give me the code in the <result> part, for anything beside the code, please properly comment it out in <analysis> part."""

FUNCTIONAL_FEEDBACK = (
    "The syntax is correct, but a functional error has occurred. "
    "Please review the problem description carefully."
)


def build_syntax_feedback(problem_name: str, error: PICBenchError) -> str:
    """Render the feedback prompt for a classified syntax error (Fig. 4)."""
    lines = [
        f"eval_{problem_name}: {error.category.display_name},",
        error.detail,
    ]
    restriction = restriction_for(error.category)
    if restriction is not None:
        lines.append(f"Relevant restriction: {restriction.text}")
    lines.append("")
    lines.append(CORRECTION_REQUEST)
    return "\n".join(lines)


def build_functional_feedback(problem_name: str, detail: str | None = None) -> str:
    """Render the concise functional-error feedback prompt."""
    lines = [f"eval_{problem_name}: {FUNCTIONAL_FEEDBACK}"]
    if detail:
        lines.append(detail)
    return "\n".join(lines)


def build_feedback(problem_name: str, error: PICBenchError) -> str:
    """Dispatch to the syntax or functional feedback prompt based on category."""
    if error.category is ErrorCategory.FUNCTIONAL:
        return build_functional_feedback(problem_name, error.detail)
    return build_syntax_feedback(problem_name, error)
