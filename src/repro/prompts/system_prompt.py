"""The system prompt template of Fig. 3.

The prompt has three parts (Section III-C of the paper): the required JSON
netlist format, the API document describing the built-in devices (generated
from the model registry), and -- optionally -- the accumulated restrictions of
Table II.  Table III is produced without the restrictions section, Table IV
with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..netlist.errors import ErrorCategory
from ..sim.registry import ModelRegistry, default_registry
from .restrictions import restrictions_text

__all__ = ["PromptConfig", "JSON_FORMAT_SPEC", "BASE_NOTES", "build_system_prompt", "build_user_prompt"]

JSON_FORMAT_SPEC = """\
{
  "netlist": {
    "instances": {
      "<component_name1>": "<component>",
      "<component_name2>": {"component": "<component>", "settings": {"<parameter>": <value>}}
    },
    "connections": {
      "<component_name>,<port>": "<component_name>,<port>"
    },
    "ports": {
      "<port_name>": "<component_name>,<port>"
    }
  },
  "models": {
    "<component>": "<ref>"
  }
}"""

BASE_NOTES = """\
Note that:
1. Your answers should be professional and logical.
2. The analyses should be as detailed as possible. For example, you can think it step by step.
3. The response must consist of two sections:
   - analysis: A detailed explanation of how the netlist was generated. Start by <analysis>.
   - result: The generated netlist JSON content. Start by <result>. Only the JSON content is required in the result.
4. Never specify extra parameters unless explicitly stated in the instructions; always use default values. If a difference between two parameters is specified, use the default value for one and adjust the other by the specified difference.
5. The default unit is micron.
6. Unless otherwise specified, use built-in components to implement whenever possible."""


@dataclass(frozen=True)
class PromptConfig:
    """Configuration of the system prompt.

    Attributes
    ----------
    include_restrictions:
        Whether the Table II restrictions are appended (Table IV setting).
    restriction_categories:
        Optional subset of restriction categories to include (used by the
        restriction ablation); ``None`` means all.
    pack_note:
        Optional problem-pack context sentence appended after the base notes
        (derived from :meth:`repro.bench.ProblemPack.prompt_note`).  ``None``
        -- the default, and what the core pack uses -- reproduces the paper's
        prompt byte for byte.
    """

    include_restrictions: bool = False
    restriction_categories: Optional[Sequence[ErrorCategory]] = None
    pack_note: Optional[str] = None


def build_system_prompt(
    registry: Optional[ModelRegistry] = None,
    config: Optional[PromptConfig] = None,
) -> str:
    """Render the full system prompt of Fig. 3."""
    registry = registry if registry is not None else default_registry()
    config = config if config is not None else PromptConfig()
    sections = [
        "You are a professional Photonic Integrated Circuit (PIC) designer. "
        "Your task is to generate a JSON netlist based on the user's design "
        "requirements. This netlist should specify input/output ports, the "
        "necessary components, their configurations, and detailed connections "
        "between them. You only complete chats with syntax correct JSON code "
        "and the format is as follows:",
        "<<<JSON format>>>",
        JSON_FORMAT_SPEC,
        "",
        "You have access to the following built-in devices, only these devices "
        "are permitted unless otherwise specified:",
        "<<<API document>>>",
        registry.api_document(),
        "",
        BASE_NOTES,
    ]
    if config.pack_note:
        sections.extend(["", "<<<Benchmark pack>>>", config.pack_note])
    if config.include_restrictions:
        sections.extend(
            [
                "",
                "In addition, strictly follow these restrictions:",
                restrictions_text(config.restriction_categories),
            ]
        )
    return "\n".join(sections)


def build_user_prompt(description: str) -> str:
    """Render the user prompt for one problem description (Fig. 2)."""
    return (
        "Problem Description\n"
        f"{description.strip()}\n\n"
        "Generate the JSON netlist for this design."
    )
