"""The Table II restrictions: failure types and the prompt text preventing them.

The error-classification loop of the paper (Section III-D) accumulates these
restrictions from observed failures; they are then prepended to the system
prompt.  Each restriction is tied to one :class:`ErrorCategory`, so the
framework can also report which restriction addresses which failure class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.errors import ErrorCategory

__all__ = ["Restriction", "RESTRICTIONS", "restrictions_text", "restriction_for"]


@dataclass(frozen=True)
class Restriction:
    """One row of Table II."""

    category: ErrorCategory
    failure_type: str
    text: str


RESTRICTIONS: Tuple[Restriction, ...] = (
    Restriction(
        category=ErrorCategory.UNDEFINED_MODEL,
        failure_type="Use undefined models",
        text=(
            "Only built-in devices are permitted unless otherwise specified; "
            "never use undefined models."
        ),
    ),
    Restriction(
        category=ErrorCategory.BOUND_IO_PORT,
        failure_type="Bind the I/O ports",
        text=(
            "Input or output ports in the ports section represent only the "
            "system's start or end points; they must not appear in any internal "
            "connections."
        ),
    ),
    Restriction(
        category=ErrorCategory.INSTANCES_MODELS_CONFUSED,
        failure_type="Mess up 'Instances' and 'models' part",
        text=(
            "When specifying built-in components, the model reference must appear "
            "in the models section like '\"<component>\": \"<ref>\"' rather than "
            "'\"<ref>\": ...'. The instances section only instantiates these "
            "components."
        ),
    ),
    Restriction(
        category=ErrorCategory.EXTRA_CONTENT,
        failure_type="Extra contents found in JSON",
        text=(
            "Only the required JSON netlist elements should appear in the output. "
            "Do not include comments, advice, or code block markings."
        ),
    ),
    Restriction(
        category=ErrorCategory.DUPLICATE_CONNECTION,
        failure_type="Duplicate connections to the same port",
        text=(
            "Each port can only be connected once; duplicate connections to the "
            "same port are prohibited."
        ),
    ),
    Restriction(
        category=ErrorCategory.DANGLING_PORT,
        failure_type="Wrong connections for dangling ports",
        text=(
            "If a specific port mapping is not explicitly required, omit it rather "
            "than introducing arbitrary or unused port names."
        ),
    ),
    Restriction(
        category=ErrorCategory.WRONG_PORT_COUNT,
        failure_type="Wrong ports number",
        text=(
            "The total number of input and output ports must align with the design "
            "specification. Each input port typically starts with I, and each "
            "output port with O."
        ),
    ),
    Restriction(
        category=ErrorCategory.WRONG_PORT,
        failure_type="Wrong ports",
        text=(
            "Ensure all connections and ports are valid and consistent with the "
            "defined instances and models. Do not generate invalid or undefined "
            "mappings."
        ),
    ),
    Restriction(
        category=ErrorCategory.BAD_COMPONENT_NAME,
        failure_type="Wrong component name",
        text="Underscores are prohibited in component names.",
    ),
)


def restriction_for(category: ErrorCategory) -> Optional[Restriction]:
    """Return the restriction addressing ``category``, if one exists."""
    for restriction in RESTRICTIONS:
        if restriction.category is category:
            return restriction
    return None


def restrictions_text(categories: Optional[Sequence[ErrorCategory]] = None) -> str:
    """Render the restriction list as numbered prompt text.

    Parameters
    ----------
    categories:
        Restrict the list to these categories; by default all of Table II is
        included (the fully-accumulated restriction set the paper evaluates in
        Table IV).
    """
    selected: List[Restriction] = [
        restriction
        for restriction in RESTRICTIONS
        if categories is None or restriction.category in set(categories)
    ]
    lines = [
        f"{index}. {restriction.text}"
        for index, restriction in enumerate(selected, start=1)
    ]
    return "\n".join(lines)
