"""Deterministic fault injection and retry policies (the chaos seam).

Production code threads :func:`fault_point` hooks through its failure-prone
seams -- disk cache I/O, process-pool units, store writes, daemon request
handling, lock acquisition, solver evaluation.  With no plan installed the
hook is a single global load and compare (measurably zero overhead); with a
plan installed, each named point consults its rules and injects the
configured failure:

``raise``
    Raise :class:`FaultInjected` (an ``OSError`` subclass, so every caller
    that classifies I/O trouble as *transient* retries it).
``delay``
    Sleep ``rule.delay`` seconds -- exercises timeout/watchdog paths.
``kill``
    ``os._exit(rule.exit_code)`` -- a hard process death (SIGKILL-shaped):
    worker-crash containment and checkpoint/resume paths.
``corrupt``
    Deterministically overwrite the head of the file passed to the hook --
    torn-write simulation for quarantine paths.

Determinism: every decision is a pure function of the plan ``seed``, the
point name, and either the caller-supplied content ``key`` or the point's
invocation counter -- so a chaos run under a fixed ``REPRO_FAULTS`` value
replays exactly.

Plans install programmatically (:func:`install_plan`, the :func:`inject`
context manager) or from the ``REPRO_FAULTS`` environment variable, which
propagates into worker processes so process-sharded sweeps inject
worker-side too.  ``REPRO_FAULTS`` accepts either a JSON document::

    {"seed": 7, "rules": [{"point": "procpool.unit", "kind": "kill",
                           "probability": 0.5, "max_triggers": 2}]}

or the compact form ``seed=7;procpool.unit=kill@0.5x2`` where each rule is
``point=kind`` with optional ``@probability``, ``x<max_triggers>``,
``+<after>`` (skip the first N evaluations) and ``~<delay seconds>``.

:class:`RetryPolicy` is the shared resilience primitive layered on top:
bounded attempts, exponential backoff with deterministic jitter, and a
transient-vs-permanent error classification.  :func:`retry_call` applies it.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "INJECTION_POINTS",
    "RetryPolicy",
    "active_plan",
    "clear_plan",
    "fault_point",
    "fault_stats",
    "inject",
    "install_plan",
    "parse_plan",
    "retry_call",
]

T = TypeVar("T")

#: Recognised failure kinds of a :class:`FaultRule`.
FAULT_KINDS: Tuple[str, ...] = ("raise", "delay", "kill", "corrupt")

#: Injection points threaded through production code.  The registry is
#: documentation and a typo guard for plans built against this codebase;
#: tests may install rules for ad-hoc points of their own.
INJECTION_POINTS: Tuple[str, ...] = (
    "cache.disk_read",
    "cache.disk_write",
    "client.connect",
    "procpool.unit",
    "service.journal",
    "store.write",
    "daemon.request",
    "lock.acquire",
    "solver.evaluate",
    "sweep.unit",
)

#: Environment variable holding the process-wide injection plan.
FAULTS_ENV_VAR = "REPRO_FAULTS"


class FaultInjected(OSError):
    """The error a ``raise``-kind injection throws.

    Subclasses ``OSError`` on purpose: the production seams classify
    ``OSError`` as *transient* I/O trouble, so injected raises exercise the
    very retry/degrade paths real I/O failures would.
    """


def _unit_fraction(*parts: object) -> float:
    """Deterministic pseudo-random fraction in ``[0, 1)`` from ``parts``."""
    payload = "||".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, how often.

    Attributes
    ----------
    point:
        Injection-point name the rule fires at (see :data:`INJECTION_POINTS`).
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Firing probability per eligible evaluation; decisions are derived
        from the plan seed (and the call's content key when one is given),
        never from global randomness.
    after:
        Skip the first ``after`` evaluations of the point -- "crash after N
        units" scenarios.
    max_triggers:
        Stop firing after this many injections (``None`` = unbounded).
    delay:
        Sleep length of ``delay``-kind rules, seconds.
    exit_code:
        Process exit code of ``kill``-kind rules.
    """

    point: str
    kind: str = "raise"
    probability: float = 1.0
    after: int = 0
    max_triggers: Optional[int] = None
    delay: float = 0.05
    exit_code: int = 73

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose one of {list(FAULT_KINDS)}"
            )
        if not self.point:
            raise ValueError("a fault rule needs a non-empty point name")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")


class FaultPlan:
    """A set of :class:`FaultRule`\\ s plus the seed their decisions derive from.

    Thread-safe: per-point evaluation and trigger counters are guarded by
    one lock, and the decision for each evaluation is a pure function of
    ``(seed, point, key-or-counter)`` so concurrent runs with stable keys
    stay reproducible.
    """

    def __init__(self, rules: Sequence[FaultRule], *, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: Dict[str, List[FaultRule]] = {}
        for rule in rules:
            self.rules.setdefault(rule.point, []).append(rule)
        self._lock = threading.Lock()
        self._evaluations: Dict[str, int] = {}
        self._triggers: Dict[str, int] = {}
        self._rule_triggers: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def points(self) -> List[str]:
        """Point names this plan has rules for."""
        return sorted(self.rules)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{"evaluations": n, "triggers": n}`` counters."""
        with self._lock:
            return {
                point: {
                    "evaluations": self._evaluations.get(point, 0),
                    "triggers": self._triggers.get(point, 0),
                }
                for point in self.rules
            }

    # ------------------------------------------------------------------
    def _decide(self, name: str, key: Optional[str]) -> List[FaultRule]:
        """The rules firing at this evaluation of ``name`` (counters updated)."""
        rules = self.rules.get(name)
        if not rules:
            return []
        fired: List[FaultRule] = []
        with self._lock:
            count = self._evaluations.get(name, 0)
            self._evaluations[name] = count + 1
            for index, rule in enumerate(rules):
                if count < rule.after:
                    continue
                rule_id = id(rule) ^ index
                triggered = self._rule_triggers.get(rule_id, 0)
                if rule.max_triggers is not None and triggered >= rule.max_triggers:
                    continue
                if rule.probability < 1.0:
                    basis = key if key is not None else count
                    if _unit_fraction(self.seed, name, index, basis) >= rule.probability:
                        continue
                self._rule_triggers[rule_id] = triggered + 1
                self._triggers[name] = self._triggers.get(name, 0) + 1
                fired.append(rule)
        return fired

    def visit(self, name: str, *, key: Optional[str] = None, path: Optional[Path] = None) -> None:
        """Evaluate the point: inject whatever rules fire (may not return)."""
        for rule in self._decide(name, key):
            if rule.kind == "delay":
                time.sleep(rule.delay)
            elif rule.kind == "kill":
                os._exit(rule.exit_code)
            elif rule.kind == "corrupt":
                if path is not None:
                    _corrupt_file(Path(path), self.seed, name)
            else:  # raise
                raise FaultInjected(f"injected fault at {name}")


def _corrupt_file(path: Path, seed: int, name: str) -> None:
    """Deterministically overwrite the head of ``path`` (torn-write shape)."""
    junk = hashlib.sha256(f"{seed}||{name}||corrupt".encode("utf-8")).digest()
    try:
        with open(path, "r+b") as handle:
            handle.write(junk * 2)
    except OSError:
        pass  # the file vanished: nothing to corrupt


# ----------------------------------------------------------------------
# Process-wide plan management
# ----------------------------------------------------------------------
_ACTIVE_PLAN: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active plan (replacing any prior one)."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def clear_plan() -> None:
    """Disable fault injection process-wide."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _ACTIVE_PLAN


@contextmanager
def inject(*rules: FaultRule, seed: int = 0) -> Iterator[FaultPlan]:
    """Scope a plan to a ``with`` block (restores the prior plan on exit)."""
    previous = _ACTIVE_PLAN
    plan = FaultPlan(rules, seed=seed)
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous) if previous is not None else clear_plan()


def fault_point(name: str, *, key: Optional[str] = None, path: Optional[Path] = None) -> None:
    """Declare one named injection point in production code.

    With no plan installed this is one global load and a compare -- cheap
    enough for hot paths.  ``key`` makes probabilistic decisions
    content-derived (same key, same verdict across runs and processes);
    ``path`` gives ``corrupt``-kind rules a target file.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    plan.visit(name, key=key, path=path)


def fault_stats() -> Dict[str, Dict[str, int]]:
    """Counters of the active plan (empty when injection is off)."""
    plan = _ACTIVE_PLAN
    return plan.stats() if plan is not None else {}


# ----------------------------------------------------------------------
# REPRO_FAULTS parsing
# ----------------------------------------------------------------------
def parse_plan(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` value (JSON document or compact form)."""
    text = text.strip()
    if not text:
        raise ValueError("empty fault plan")
    if text.startswith("{"):
        payload = json.loads(text)
        rules = [FaultRule(**rule) for rule in payload.get("rules", [])]
        return FaultPlan(rules, seed=int(payload.get("seed", 0)))
    seed = 0
    rules = []
    for item in text.split(";"):
        item = item.strip()
        if not item:
            continue
        key, separator, value = item.partition("=")
        if not separator:
            raise ValueError(f"fault rule {item!r} is not of the form point=kind[...]")
        if key == "seed":
            seed = int(value)
            continue
        rules.append(_parse_compact_rule(key, value))
    return FaultPlan(rules, seed=seed)


#: Compact-form rule grammar (modifiers in this fixed order, all optional):
#: ``kind[@probability][x<max_triggers>][+<after>][~<delay seconds>]``.
_COMPACT_RULE = re.compile(
    r"^(?P<kind>[a-z]+)"
    r"(?:@(?P<probability>[0-9.]+))?"
    r"(?:x(?P<max_triggers>\d+))?"
    r"(?:\+(?P<after>\d+))?"
    r"(?:~(?P<delay>[0-9.]+))?$"
)


def _parse_compact_rule(point: str, spec: str) -> FaultRule:
    """One compact rule: ``kind[@prob][x<max>][+<after>][~<delay>]``."""
    match = _COMPACT_RULE.match(spec)
    if match is None:
        raise ValueError(
            f"cannot parse fault rule {point}={spec!r} "
            "(expected kind[@prob][xN][+N][~seconds])"
        )
    fields: Dict[str, object] = {"point": point, "kind": match.group("kind")}
    for name, cast in (
        ("probability", float),
        ("max_triggers", int),
        ("after", int),
        ("delay", float),
    ):
        value = match.group(name)
        if value is not None:
            fields[name] = cast(value)
    return FaultRule(**fields)  # type: ignore[arg-type]


def _install_from_env() -> None:
    """Install the ``REPRO_FAULTS`` plan at import (workers inherit the var)."""
    value = os.environ.get(FAULTS_ENV_VAR)
    if not value:
        return
    try:
        install_plan(parse_plan(value))
    except (ValueError, TypeError, json.JSONDecodeError) as exc:
        raise ValueError(f"invalid {FAULTS_ENV_VAR} value {value!r}: {exc}") from exc


_install_from_env()


# ----------------------------------------------------------------------
# Retry policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``attempts`` counts *total* tries (1 = no retry).  Backoff for attempt
    ``i`` (0-based) is ``min(max_delay, base_delay * multiplier**i)``
    stretched by up to ``jitter`` fraction -- the stretch is derived from
    the caller's ``seed`` string, so two runs of the same workload back off
    identically.  ``transient`` lists the exception types worth retrying;
    anything else propagates immediately (permanent failure).
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    transient: Tuple[type, ...] = (OSError, TimeoutError, ConnectionError)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    def is_transient(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt."""
        return isinstance(error, self.transient)

    def delay(self, attempt: int, seed: str = "") -> float:
        """Backoff before retry number ``attempt + 1`` (deterministic)."""
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return base * (1.0 + self.jitter * _unit_fraction("retry", seed, attempt))


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    seed: str = "",
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` under ``policy``; the last failure propagates unchanged.

    ``on_retry(attempt, error)`` runs before each backoff (retry counters);
    ``seed`` keys the deterministic jitter.  Permanent (non-transient)
    errors are never retried.
    """
    for attempt in range(policy.attempts):
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - classified right below
            if attempt + 1 >= policy.attempts or not policy.is_transient(error):
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(policy.delay(attempt, seed))
    raise AssertionError("unreachable: retry_call returns or raises")  # pragma: no cover
