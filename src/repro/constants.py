"""Physical constants and default simulation settings shared across the library.

All lengths in this library are expressed in **microns** (the paper's system
prompt states "The default unit is micron"), wavelengths in microns, and
frequencies in THz.  The benchmark evaluates frequency responses over the
1510-1590 nm band, matching Section IV-A of the paper.
"""

from __future__ import annotations

import numpy as np

#: Speed of light in vacuum, expressed in micron * THz (i.e. um / ps).
SPEED_OF_LIGHT_UM_THZ = 299.792458

#: Default centre wavelength (microns) used by every dispersive device model.
DEFAULT_CENTER_WAVELENGTH_UM = 1.55

#: Lower edge of the evaluation band (microns) -- 1510 nm per the paper.
DEFAULT_WL_MIN_UM = 1.510

#: Upper edge of the evaluation band (microns) -- 1590 nm per the paper.
DEFAULT_WL_MAX_UM = 1.590

#: Number of wavelength samples used when computing golden / candidate
#: frequency responses.  161 points gives a 0.5 nm grid over the band.
DEFAULT_NUM_WAVELENGTHS = 161

#: Default effective index of the strip waveguide model.
DEFAULT_NEFF = 2.34

#: Default group index of the strip waveguide model.
DEFAULT_NG = 3.40

#: Default propagation loss of waveguide-like devices, in dB / cm.
DEFAULT_LOSS_DB_PER_CM = 0.0

#: Absolute tolerance on |S|^2 used when comparing a candidate frequency
#: response against the golden one (functional evaluation).
DEFAULT_FUNCTIONAL_ATOL = 1e-3

#: Default number of samples generated per problem (``n`` in the Pass@k
#: estimator, Section IV-A of the paper).
DEFAULT_SAMPLES_PER_PROBLEM = 5


def default_wavelength_grid(num: int = DEFAULT_NUM_WAVELENGTHS) -> np.ndarray:
    """Return the canonical evaluation wavelength grid in microns.

    Parameters
    ----------
    num:
        Number of points; the default matches the grid used for the golden
        responses shipped with the benchmark.
    """
    return np.linspace(DEFAULT_WL_MIN_UM, DEFAULT_WL_MAX_UM, num)


def normalize_wavelengths(wavelengths: np.ndarray | float | None = None) -> np.ndarray:
    """Canonicalise a wavelength-grid argument.

    ``None`` resolves to :func:`default_wavelength_grid`; anything else is
    coerced to a 1-D float64 array.  Every public entry point that accepts an
    optional grid (solver, compiled plans, engine) shares this one definition
    so the cache tiers all key on the same canonical representation.
    """
    if wavelengths is None:
        return default_wavelength_grid()
    return np.atleast_1d(np.asarray(wavelengths, dtype=float))


def wavelength_to_frequency_thz(wavelength_um: np.ndarray | float) -> np.ndarray | float:
    """Convert a wavelength in microns to an optical frequency in THz."""
    return SPEED_OF_LIGHT_UM_THZ / np.asarray(wavelength_um, dtype=float)


def db_per_cm_to_neper_per_um(loss_db_per_cm: float) -> float:
    """Convert a propagation loss in dB/cm to field-amplitude nepers per micron.

    The returned value ``alpha`` is used as ``exp(-alpha * length_um)`` on the
    *field* amplitude, i.e. it already includes the factor of two between
    power loss and amplitude loss.
    """
    db_per_um = loss_db_per_cm / 1e4
    power_neper_per_um = db_per_um * np.log(10.0) / 10.0
    return power_neper_per_um / 2.0
