"""The execution engine: cache-backed simulation plus parallel scheduling.

:class:`ExecutionEngine` is the single seam the evaluation stack runs
through.  It owns

* one :class:`~repro.sim.circuit.CircuitSolver` (and therefore one model
  registry),
* one content-addressed :class:`~repro.engine.cache.SimulationCache`, and
* one :class:`~repro.engine.scheduler.TaskScheduler`.

``GoldenStore`` routes golden-design simulations through
:meth:`ExecutionEngine.evaluate`, ``Evaluator`` routes every candidate-draft
simulation through it, and ``run_sweep`` flattens its nested loops onto
:meth:`ExecutionEngine.map` -- so one engine instance deduplicates structurally
identical simulations across problems, samples, models and restriction
settings, sequential or parallel alike.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from ..constants import normalize_wavelengths
from ..faults import RetryPolicy, fault_point, fault_stats
from ..netlist.schema import Netlist
from ..netlist.validation import PortSpec
from ..sim.batch import SettingsBatch, apply_settings, structural_key
from ..sim.circuit import CircuitSolver
from ..sim.registry import ModelRegistry
from ..sim.sparams import SMatrix
from .cache import SimulationCache
from .fingerprint import grid_fingerprint, netlist_fingerprint, registry_fingerprint, stable_hash
from .scheduler import TaskScheduler

__all__ = [
    "EXECUTION_MODES",
    "EngineBatchStats",
    "EngineConfig",
    "ExecutionEngine",
    "default_engine",
    "stats_delta",
]

#: Recognised parallel execution tiers (see :attr:`EngineConfig.execution_mode`).
EXECUTION_MODES: Tuple[str, ...] = ("thread", "process")


@dataclass
class EngineBatchStats:
    """Counters of the engine's batched-evaluation entry points.

    ``cache_hits`` counts samples served straight from the content-addressed
    simulation cache -- batch-aware keys are computed per *derived sample
    netlist*, so batched and per-sample evaluations share one entry space
    and hit each other's results.
    """

    calls: int = 0
    samples: int = 0
    cache_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of batched samples served from the simulation cache."""
        return self.cache_hits / self.samples if self.samples else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict snapshot (for logs and benchmark tables)."""
        return {
            "calls": self.calls,
            "samples": self.samples,
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
        }

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of an :class:`ExecutionEngine`.

    Attributes
    ----------
    workers:
        Size of the scheduler's thread pool; ``1`` (the default) runs every
        task inline, ``0`` or negative means one worker per CPU core.
    cache_entries:
        Capacity of the in-memory simulation cache; ``0`` disables it.
    cache_dir:
        Optional directory for persistent ``.npz`` simulation artefacts.
    solver_backend:
        Circuit-solver backend (``auto``/``dense``/``cascade``, see
        :data:`repro.sim.circuit.SOLVER_BACKENDS`).  A pure performance knob:
        every backend computes the same S-matrices, so simulation cache keys
        deliberately exclude it and cached artefacts are shared across
        backends.
    plan_cache_entries:
        Capacity of the solver's compiled-plan cache (topology-keyed; see
        :class:`repro.sim.plan.CompiledCircuit`).  ``0`` recompiles the
        structure work on every evaluation.  Like the backend, plans are
        invisible to simulation cache keys.
    wavelength_chunk:
        Optional bound on how many wavelength points the solver executes at
        once, capping the peak ``(W, P, E)`` workspace on large grids;
        ``None`` solves the whole grid in one batch.  Results are identical
        for any chunk size.
    batch_size:
        Batched *pipeline* dispatch: when > 1, :meth:`ExecutionEngine.evaluate_many`
        (and therefore sweeps and the evaluator's lockstep mode) fuses up to
        this many structure-sharing samples per solver call; ``1`` (the
        default) evaluates pipeline work per sample.  Explicit
        :meth:`ExecutionEngine.evaluate_batch` calls are a request to batch
        and fuse their whole miss set by default regardless (the solver
        splits fused passes internally for cache residency); the knob then
        only caps their chunk size when > 1.  Purely a performance knob:
        results -- and simulation cache keys -- are identical for any batch
        size.
    execution_mode:
        Parallel execution tier of sweep-shaped work: ``"thread"`` (the
        default) runs work units on this engine's thread pool; ``"process"``
        shards them across worker *processes* (see
        :mod:`repro.engine.procpool`), each rebuilding its engine from a
        picklable spec and sharing the on-disk caches through ``cache_dir``.
        The engine itself always evaluates in-process -- the tier is
        consumed by the sweep layer (``run_sweep``/``run_model``), which is
        where work units are spec-shaped.  Results are byte-identical
        across tiers.
    processes:
        Worker-process count of the ``"process"`` tier; ``0`` or negative
        means one per CPU core.  Ignored under ``"thread"``.
    plan_dir:
        Optional directory for the solver's disk-backed compiled-plan spill
        (see :class:`repro.sim.circuit.CircuitSolver`).  Defaults to
        ``<cache_dir>/plans`` when ``cache_dir`` is set -- warm structure
        work is then shared across processes and runs exactly like ``.npz``
        simulation artefacts.  Pass an explicit path to relocate it; the
        spill is off when both are ``None``.
    io_retry_attempts:
        Total attempts (first try included) for transient disk-cache I/O
        errors on the ``.npz`` read and write paths.  ``1`` disables
        retrying.  Purely a robustness knob: results are identical, failed
        reads degrade to recomputation either way.
    io_retry_backoff:
        Base delay in seconds between disk-I/O retry attempts (exponential
        with deterministic jitter; see :class:`repro.faults.RetryPolicy`).
    """

    workers: int = 1
    cache_entries: int = 2048
    cache_dir: Optional[Path | str] = None
    solver_backend: str = "auto"
    plan_cache_entries: int = 128
    wavelength_chunk: Optional[int] = None
    batch_size: int = 1
    execution_mode: str = "thread"
    processes: int = 0
    plan_dir: Optional[Path | str] = None
    io_retry_attempts: int = 2
    io_retry_backoff: float = 0.02

    def __post_init__(self) -> None:
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.execution_mode!r}; "
                f"choose one of {list(EXECUTION_MODES)}"
            )
        if self.io_retry_attempts < 1:
            raise ValueError("io_retry_attempts must be >= 1")

    def io_retry_policy(self) -> RetryPolicy:
        """The disk-I/O retry policy these knobs describe."""
        return RetryPolicy(
            attempts=self.io_retry_attempts, base_delay=self.io_retry_backoff
        )

    def resolved_plan_dir(self) -> Optional[Path]:
        """The effective plan-spill directory (``cache_dir/plans`` default)."""
        if self.plan_dir is not None:
            return Path(self.plan_dir)
        if self.cache_dir is not None:
            return Path(self.cache_dir) / "plans"
        return None


class ExecutionEngine:
    """Deterministic, parallel, cache-backed execution of simulations."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        registry: Optional[ModelRegistry] = None,
        solver: Optional[CircuitSolver] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.solver = (
            solver
            if solver is not None
            else CircuitSolver(
                registry=registry,
                backend=self.config.solver_backend,
                plan_cache_entries=self.config.plan_cache_entries,
                max_wavelength_chunk=self.config.wavelength_chunk,
                plan_dir=self.config.resolved_plan_dir(),
            )
        )
        self.cache = SimulationCache(
            max_entries=self.config.cache_entries,
            cache_dir=self.config.cache_dir,
            retry_policy=self.config.io_retry_policy(),
        )
        self.scheduler = TaskScheduler(workers=self.config.workers)
        self._registry_fp = registry_fingerprint(self.solver.registry)
        self._registry_fp_version = self.solver.registry.version
        self._batch_stats = EngineBatchStats()
        self._batch_stats_lock = threading.Lock()

    def _registry_fingerprint(self) -> str:
        """The registry fingerprint, memoised on the registry's mutation counter.

        Re-registering a model under an existing name changes the fingerprint,
        so cached results computed with the old model are never served.
        """
        version = self.solver.registry.version
        if version != self._registry_fp_version:
            self._registry_fp = registry_fingerprint(self.solver.registry)
            self._registry_fp_version = version
        return self._registry_fp

    @property
    def registry(self) -> ModelRegistry:
        """The model registry every simulation of this engine resolves against."""
        return self.solver.registry

    @property
    def workers(self) -> int:
        """Effective worker count of the scheduler."""
        return self.scheduler.workers

    # ------------------------------------------------------------------
    # Cache-backed simulation
    # ------------------------------------------------------------------
    def simulation_key(
        self,
        netlist: Netlist,
        wavelengths: np.ndarray,
        port_spec: Optional[PortSpec] = None,
    ) -> str:
        """Content address of one simulation under this engine's registry.

        The solver backend is deliberately NOT part of the key: backends are
        numerically equivalent, so engines configured with different backends
        must share cache entries (and golden artefacts stay backend-invariant).
        """
        spec_part = (
            "none" if port_spec is None else f"{port_spec.num_inputs}x{port_spec.num_outputs}"
        )
        return stable_hash(
            netlist_fingerprint(netlist),
            grid_fingerprint(wavelengths),
            self._registry_fingerprint(),
            spec_part,
        )

    def evaluate(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> SMatrix:
        """Simulate ``netlist``, serving repeats from the content cache.

        Semantics match :meth:`CircuitSolver.evaluate` exactly: only
        successful results are cached, so validation and model errors raise
        the same classified :class:`~repro.netlist.errors.PICBenchError`
        every time.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        if not self.cache.enabled:
            fault_point("solver.evaluate")
            return self.solver.evaluate(netlist, wavelengths, port_spec=port_spec)
        key = self.simulation_key(netlist, wavelengths, port_spec)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        fault_point("solver.evaluate", key=key)
        smatrix = self.solver.evaluate(netlist, wavelengths, port_spec=port_spec)
        self.cache.put(key, smatrix)
        return smatrix

    # ------------------------------------------------------------------
    # Batched simulation
    # ------------------------------------------------------------------
    def evaluate_batch(
        self,
        netlist: Netlist,
        settings_batch: Sequence[SettingsBatch],
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
        merge: bool = True,
    ) -> List[SMatrix]:
        """Evaluate ``S`` settings samples of one netlist, batching the misses.

        Cache keys are **batch-aware but per-sample**: each sample's key is
        the content address of its *derived* netlist (base plus overrides),
        exactly the key :meth:`evaluate` would compute for that netlist --
        so batched results hit (and seed) per-sample cache entries.  Samples
        already cached are served directly; the misses run through
        :meth:`CircuitSolver.evaluate_batch`.  Calling this method is an
        explicit request to batch, so the whole miss set fuses into one
        solver call by default (the solver splits fused passes internally
        for cache residency); ``config.batch_size`` > 1 additionally caps
        the samples per solver call.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        num_samples = len(settings_batch)
        results: List[Optional[SMatrix]] = [None] * num_samples
        keys: List[Optional[str]] = [None] * num_samples
        hits = 0
        if self.cache.enabled:
            for index, overrides in enumerate(settings_batch):
                derived = apply_settings(netlist, overrides, merge)
                key = self.simulation_key(derived, wavelengths, port_spec)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    hits += 1
        misses = [index for index in range(num_samples) if results[index] is None]

        # Deduplicate identical samples within the batch (same derived key).
        representative: Dict[Optional[str], int] = {}
        unique: List[int] = []
        for index in misses:
            key = keys[index]
            if key is None:  # cache disabled: no key to deduplicate on
                unique.append(index)
            elif key not in representative:
                representative[key] = index
                unique.append(index)

        chunk_size = max(1, int(self.config.batch_size)) if self.config.batch_size > 1 else len(unique)
        for start in range(0, len(unique), max(1, chunk_size)):
            chunk = unique[start : start + max(1, chunk_size)]
            solved = self.solver.evaluate_batch(
                netlist,
                [settings_batch[index] for index in chunk],
                wavelengths,
                port_spec=port_spec,
                merge=merge,
            )
            for index, smatrix in zip(chunk, solved):
                results[index] = smatrix
                if keys[index] is not None:
                    self.cache.put(keys[index], smatrix)
        for index in misses:
            if results[index] is None:  # duplicate of a representative sample
                results[index] = results[representative[keys[index]]]

        with self._batch_stats_lock:
            self._batch_stats.calls += 1
            self._batch_stats.samples += num_samples
            self._batch_stats.cache_hits += hits
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def evaluate_many(
        self,
        netlists: Sequence[Netlist],
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_specs: Optional[Sequence[Optional[PortSpec]]] = None,
        batch_size: Optional[int] = None,
        return_exceptions: bool = False,
    ) -> List[Union[SMatrix, Exception]]:
        """Evaluate many (possibly unrelated) netlists, batching where possible.

        Netlists are grouped by settings-stripped structure (same instances,
        connections, ports and models -- see
        :func:`repro.sim.batch.structural_key`) and port spec; each group is
        re-expressed as one base netlist plus per-sample settings and
        dispatched through the fused batch path in chunks of ``batch_size``
        (default: ``config.batch_size``; values <= 1 fall back to per-item
        :meth:`evaluate` calls).  Per-item cache keys are unchanged, so
        results interoperate with individually evaluated netlists.

        With ``return_exceptions=True`` a failing item contributes its
        exception (the same classified error :meth:`evaluate` would raise)
        instead of aborting the whole call; a group whose fused evaluation
        fails is retried item by item so one bad sample never poisons its
        group.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        specs: List[Optional[PortSpec]] = (
            list(port_specs) if port_specs is not None else [None] * len(netlists)
        )
        if len(specs) != len(netlists):
            raise ValueError(
                f"port_specs length {len(specs)} does not match {len(netlists)} netlists"
            )
        chunk_size = int(batch_size) if batch_size is not None else int(self.config.batch_size)
        results: List[Optional[Union[SMatrix, Exception]]] = [None] * len(netlists)

        def solve_item(index: int, key: Optional[str]) -> None:
            """Per-item fallback replicating :meth:`evaluate` semantics."""
            try:
                smatrix = self.solver.evaluate(
                    netlists[index], wavelengths, port_spec=specs[index]
                )
            except Exception as error:  # noqa: BLE001 - classified by the caller
                if not return_exceptions:
                    raise
                results[index] = error
                return
            if key is not None:
                self.cache.put(key, smatrix)
            results[index] = smatrix

        # Per-item cache probe (batched and per-sample keys are identical).
        keys: List[Optional[str]] = [None] * len(netlists)
        hits = 0
        for index, netlist in enumerate(netlists):
            if self.cache.enabled:
                key = self.simulation_key(netlist, wavelengths, specs[index])
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    hits += 1

        misses = [index for index in range(len(netlists)) if results[index] is None]
        if chunk_size <= 1:
            for index in misses:
                solve_item(index, keys[index])
        else:
            groups: Dict[Tuple[str, Optional[Tuple[int, int]]], List[int]] = {}
            for index in misses:
                spec = specs[index]
                spec_key = (spec.num_inputs, spec.num_outputs) if spec is not None else None
                groups.setdefault(
                    (structural_key(netlists[index]), spec_key), []
                ).append(index)
            for (_, _), members in groups.items():
                for start in range(0, len(members), chunk_size):
                    chunk = members[start : start + chunk_size]
                    base = netlists[chunk[0]]
                    # Settings dicts are passed by reference (the batch path
                    # treats overrides as read-only): their stable object
                    # ids let the solver's fingerprint memos hit across
                    # repeated evaluations of the same netlists.
                    overrides = [
                        {
                            name: inst.settings
                            for name, inst in netlists[index].instances.items()
                        }
                        for index in chunk
                    ]
                    try:
                        solved = self.solver.evaluate_batch(
                            base,
                            overrides,
                            wavelengths,
                            port_spec=specs[chunk[0]],
                            merge=False,
                        )
                    except Exception:  # noqa: BLE001 - isolate the failing item
                        for index in chunk:
                            solve_item(index, keys[index])
                        continue
                    for index, smatrix in zip(chunk, solved):
                        results[index] = smatrix
                        if keys[index] is not None:
                            self.cache.put(keys[index], smatrix)

        with self._batch_stats_lock:
            self._batch_stats.calls += 1
            self._batch_stats.samples += len(netlists)
            self._batch_stats.cache_hits += hits
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Run independent work units on the engine's pool, preserving order."""
        return self.scheduler.map(fn, items)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def batch_stats(self) -> EngineBatchStats:
        """Counters of the engine's batched entry points."""
        return self._batch_stats

    def stats(self) -> Dict[str, object]:
        """Snapshot of the engine's cache behaviour (for logs and benchmarks)."""
        solver_stats = self.solver.instance_cache_stats()
        plan_stats = self.solver.plan_cache_stats()
        solver_batch = self.solver.batch_stats()
        return {
            "workers": self.workers,
            "execution_mode": self.config.execution_mode,
            "batch_size": self.config.batch_size,
            "simulation_cache": self.cache.stats.as_dict(),
            "simulation_hit_rate": self.cache.stats.hit_rate,
            "instance_cache": solver_stats.as_dict(),
            "instance_hit_rate": solver_stats.hit_rate,
            "plan_cache": plan_stats.as_dict(),
            "plan_hit_rate": plan_stats.hit_rate,
            "batch": self._batch_stats.as_dict(),
            "batch_hit_rate": self._batch_stats.hit_rate,
            "solver_batch": solver_batch.as_dict(),
            "batch_fusion_rate": solver_batch.fusion_rate,
            "solver_degradations": self.solver.degradation_stats(),
            "cache_nonfinite_rejected": self.cache.nonfinite_rejected,
            "faults": fault_stats(),
        }


def stats_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """What one slice of work added to an engine's :meth:`~ExecutionEngine.stats`.

    Long-running services share one engine across many jobs, so absolute
    counters conflate every job that ever ran; the delta of two snapshots
    isolates a single job's cache behaviour (e.g. "did job 2 get warm
    plan-cache hits?").  Numeric leaves are subtracted recursively; rate
    leaves (``*rate*`` keys) are recomputed from the sibling hit/miss
    deltas where possible and dropped otherwise (a rate of deltas is not
    the delta of rates); non-numeric leaves keep their ``after`` value.
    """
    delta: Dict[str, object] = {}
    for key, after_value in after.items():
        before_value = before.get(key)
        if isinstance(after_value, dict):
            delta[key] = stats_delta(
                before_value if isinstance(before_value, dict) else {}, after_value
            )
        elif (
            isinstance(after_value, bool)
            or not isinstance(after_value, (int, float))
            or key in ("workers", "batch_size", "processes")
        ):
            # Configuration leaves are not counters: keep the current value.
            delta[key] = after_value
        elif "rate" in key:
            continue  # recomputed below when the numerators are present
        else:
            base = before_value if isinstance(before_value, (int, float)) else 0
            delta[key] = after_value - base
    for key, value in delta.items():
        if isinstance(value, dict) and "hits" in value and "misses" in value:
            hits, misses = value["hits"], value["misses"]
            total = (hits or 0) + (misses or 0)  # type: ignore[operator]
            value["hit_rate"] = (hits or 0) / total if total else 0.0  # type: ignore[operator]
    return delta


def default_engine(
    *,
    workers: int = 1,
    cache_dir: Optional[Path | str] = None,
    registry: Optional[ModelRegistry] = None,
    solver_backend: str = "auto",
    plan_cache_entries: int = 128,
    wavelength_chunk: Optional[int] = None,
    batch_size: int = 1,
    execution_mode: str = "thread",
    processes: int = 0,
) -> ExecutionEngine:
    """Convenience constructor mirroring the CLI's engine flags."""
    return ExecutionEngine(
        EngineConfig(
            workers=workers,
            cache_dir=cache_dir,
            solver_backend=solver_backend,
            plan_cache_entries=plan_cache_entries,
            wavelength_chunk=wavelength_chunk,
            batch_size=batch_size,
            execution_mode=execution_mode,
            processes=processes,
        ),
        registry=registry,
    )
