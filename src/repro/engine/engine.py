"""The execution engine: cache-backed simulation plus parallel scheduling.

:class:`ExecutionEngine` is the single seam the evaluation stack runs
through.  It owns

* one :class:`~repro.sim.circuit.CircuitSolver` (and therefore one model
  registry),
* one content-addressed :class:`~repro.engine.cache.SimulationCache`, and
* one :class:`~repro.engine.scheduler.TaskScheduler`.

``GoldenStore`` routes golden-design simulations through
:meth:`ExecutionEngine.evaluate`, ``Evaluator`` routes every candidate-draft
simulation through it, and ``run_sweep`` flattens its nested loops onto
:meth:`ExecutionEngine.map` -- so one engine instance deduplicates structurally
identical simulations across problems, samples, models and restriction
settings, sequential or parallel alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, TypeVar

import numpy as np

from ..constants import normalize_wavelengths
from ..netlist.schema import Netlist
from ..netlist.validation import PortSpec
from ..sim.circuit import CircuitSolver
from ..sim.registry import ModelRegistry
from ..sim.sparams import SMatrix
from .cache import SimulationCache
from .fingerprint import grid_fingerprint, netlist_fingerprint, registry_fingerprint, stable_hash
from .scheduler import TaskScheduler

__all__ = ["EngineConfig", "ExecutionEngine", "default_engine"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of an :class:`ExecutionEngine`.

    Attributes
    ----------
    workers:
        Size of the scheduler's thread pool; ``1`` (the default) runs every
        task inline, ``0`` or negative means one worker per CPU core.
    cache_entries:
        Capacity of the in-memory simulation cache; ``0`` disables it.
    cache_dir:
        Optional directory for persistent ``.npz`` simulation artefacts.
    solver_backend:
        Circuit-solver backend (``auto``/``dense``/``cascade``, see
        :data:`repro.sim.circuit.SOLVER_BACKENDS`).  A pure performance knob:
        every backend computes the same S-matrices, so simulation cache keys
        deliberately exclude it and cached artefacts are shared across
        backends.
    plan_cache_entries:
        Capacity of the solver's compiled-plan cache (topology-keyed; see
        :class:`repro.sim.plan.CompiledCircuit`).  ``0`` recompiles the
        structure work on every evaluation.  Like the backend, plans are
        invisible to simulation cache keys.
    wavelength_chunk:
        Optional bound on how many wavelength points the solver executes at
        once, capping the peak ``(W, P, E)`` workspace on large grids;
        ``None`` solves the whole grid in one batch.  Results are identical
        for any chunk size.
    """

    workers: int = 1
    cache_entries: int = 2048
    cache_dir: Optional[Path | str] = None
    solver_backend: str = "auto"
    plan_cache_entries: int = 128
    wavelength_chunk: Optional[int] = None


class ExecutionEngine:
    """Deterministic, parallel, cache-backed execution of simulations."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        registry: Optional[ModelRegistry] = None,
        solver: Optional[CircuitSolver] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.solver = (
            solver
            if solver is not None
            else CircuitSolver(
                registry=registry,
                backend=self.config.solver_backend,
                plan_cache_entries=self.config.plan_cache_entries,
                max_wavelength_chunk=self.config.wavelength_chunk,
            )
        )
        self.cache = SimulationCache(
            max_entries=self.config.cache_entries, cache_dir=self.config.cache_dir
        )
        self.scheduler = TaskScheduler(workers=self.config.workers)
        self._registry_fp = registry_fingerprint(self.solver.registry)
        self._registry_fp_version = self.solver.registry.version

    def _registry_fingerprint(self) -> str:
        """The registry fingerprint, memoised on the registry's mutation counter.

        Re-registering a model under an existing name changes the fingerprint,
        so cached results computed with the old model are never served.
        """
        version = self.solver.registry.version
        if version != self._registry_fp_version:
            self._registry_fp = registry_fingerprint(self.solver.registry)
            self._registry_fp_version = version
        return self._registry_fp

    @property
    def registry(self) -> ModelRegistry:
        """The model registry every simulation of this engine resolves against."""
        return self.solver.registry

    @property
    def workers(self) -> int:
        """Effective worker count of the scheduler."""
        return self.scheduler.workers

    # ------------------------------------------------------------------
    # Cache-backed simulation
    # ------------------------------------------------------------------
    def simulation_key(
        self,
        netlist: Netlist,
        wavelengths: np.ndarray,
        port_spec: Optional[PortSpec] = None,
    ) -> str:
        """Content address of one simulation under this engine's registry.

        The solver backend is deliberately NOT part of the key: backends are
        numerically equivalent, so engines configured with different backends
        must share cache entries (and golden artefacts stay backend-invariant).
        """
        spec_part = (
            "none" if port_spec is None else f"{port_spec.num_inputs}x{port_spec.num_outputs}"
        )
        return stable_hash(
            netlist_fingerprint(netlist),
            grid_fingerprint(wavelengths),
            self._registry_fingerprint(),
            spec_part,
        )

    def evaluate(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> SMatrix:
        """Simulate ``netlist``, serving repeats from the content cache.

        Semantics match :meth:`CircuitSolver.evaluate` exactly: only
        successful results are cached, so validation and model errors raise
        the same classified :class:`~repro.netlist.errors.PICBenchError`
        every time.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        if not self.cache.enabled:
            return self.solver.evaluate(netlist, wavelengths, port_spec=port_spec)
        key = self.simulation_key(netlist, wavelengths, port_spec)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        smatrix = self.solver.evaluate(netlist, wavelengths, port_spec=port_spec)
        self.cache.put(key, smatrix)
        return smatrix

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Run independent work units on the engine's pool, preserving order."""
        return self.scheduler.map(fn, items)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Snapshot of the engine's cache behaviour (for logs and benchmarks)."""
        solver_stats = self.solver.instance_cache_stats()
        plan_stats = self.solver.plan_cache_stats()
        return {
            "workers": self.workers,
            "simulation_cache": self.cache.stats.as_dict(),
            "simulation_hit_rate": self.cache.stats.hit_rate,
            "instance_cache": solver_stats.as_dict(),
            "instance_hit_rate": solver_stats.hit_rate,
            "plan_cache": plan_stats.as_dict(),
            "plan_hit_rate": plan_stats.hit_rate,
        }


def default_engine(
    *,
    workers: int = 1,
    cache_dir: Optional[Path | str] = None,
    registry: Optional[ModelRegistry] = None,
    solver_backend: str = "auto",
    plan_cache_entries: int = 128,
    wavelength_chunk: Optional[int] = None,
) -> ExecutionEngine:
    """Convenience constructor mirroring the CLI's engine flags."""
    return ExecutionEngine(
        EngineConfig(
            workers=workers,
            cache_dir=cache_dir,
            solver_backend=solver_backend,
            plan_cache_entries=plan_cache_entries,
            wavelength_chunk=wavelength_chunk,
        ),
        registry=registry,
    )
