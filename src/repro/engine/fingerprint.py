"""Stable content fingerprints for the execution engine.

The simulation cache is *content addressed*: a result is reusable exactly when
the canonical netlist, the wavelength grid and the model registry that
produced it are identical.  Every helper here therefore hashes the canonical
serialised form of its input (sorted-key JSON, raw float64 bytes) rather than
object identities, so fingerprints are stable across processes and runs and
can be used as on-disk cache file names.  Execution details that do not
change the mathematics -- the solver backend (``dense``/``cascade``), worker
count, cache configuration -- are deliberately excluded, so results and
golden artefacts are shared across engine configurations.

The same SHA-256 mixing also derives the per-sample generation seeds: a seed
is a pure function of ``(base_seed, problem name, sample index)``, which makes
every ``(client, restrictions, problem, sample)`` work unit independent of
execution order -- the property the parallel scheduler relies on for
byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Optional

import numpy as np

from .._fingerprint import func_identity, settings_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.schema import Netlist
    from ..netlist.validation import PortSpec
    from ..sim.registry import ModelRegistry

__all__ = [
    "stable_hash",
    "netlist_fingerprint",
    "grid_fingerprint",
    "registry_fingerprint",
    "settings_fingerprint",
    "simulation_key",
    "sample_seed",
]


def stable_hash(*parts: object) -> str:
    """SHA-256 hex digest of the ``||``-joined string form of ``parts``."""
    payload = "||".join(str(p) for p in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def netlist_fingerprint(netlist: "Netlist") -> str:
    """Hash of the canonical (sorted-key JSON) form of a netlist.

    Two netlists that serialise to the same document -- regardless of the
    insertion order of their instances, connections or ports -- share a
    fingerprint, so structurally identical drafts from different samples hit
    the same cache entry.
    """
    canonical = json.dumps(netlist.to_dict(), sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def grid_fingerprint(wavelengths: np.ndarray) -> str:
    """Hash of the raw float64 bytes of a wavelength grid."""
    grid = np.ascontiguousarray(np.atleast_1d(np.asarray(wavelengths, dtype=float)))
    return hashlib.sha256(grid.tobytes()).hexdigest()


def registry_fingerprint(registry: "ModelRegistry") -> str:
    """Hash of a registry's model surface (names, code identity, ports, defaults).

    The function identity (``module.qualname``) is part of the fingerprint, so
    swapping a model implementation under the same name invalidates every
    cached result computed with the old registry.
    """
    entries = []
    for name in registry.names():
        info = registry.get(name)
        entries.append(
            (
                info.name,
                func_identity(info.func),
                tuple(info.input_ports),
                tuple(info.output_ports),
                tuple(sorted((str(k), repr(v)) for k, v in info.parameters.items())),
            )
        )
    return stable_hash(*entries)


def simulation_key(
    netlist: "Netlist",
    wavelengths: np.ndarray,
    registry: "ModelRegistry",
    port_spec: Optional["PortSpec"] = None,
) -> str:
    """Content address of one ``CircuitSolver.evaluate`` call."""
    spec_part = (
        "none" if port_spec is None else f"{port_spec.num_inputs}x{port_spec.num_outputs}"
    )
    return stable_hash(
        netlist_fingerprint(netlist),
        grid_fingerprint(wavelengths),
        registry_fingerprint(registry),
        spec_part,
    )


def sample_seed(base_seed: int, problem_name: str, sample_index: int) -> int:
    """Derive the generation seed of one ``(problem, sample)`` work unit.

    Mixing a stable hash of the problem name fixes the seed-collision bug of
    the original ``base_seed * 100_003 + sample_index`` derivation, where
    every problem replayed the same seed sequence.
    """
    digest = hashlib.sha256(
        f"{int(base_seed)}||{problem_name}||{int(sample_index)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little")
