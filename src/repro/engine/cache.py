"""The content-addressed simulation cache backing the execution engine.

:class:`SimulationCache` is a store of simulated
:class:`~repro.sim.sparams.SMatrix` results keyed on ``(canonical netlist
hash, wavelength-grid hash, registry fingerprint, port spec)``.  The memory
tier is a thread-safe :class:`~repro._cache.LRUCache`; optionally every entry
is also persisted as an ``.npz`` file under ``cache_dir`` so later processes
(and parallel workers of the same sweep) start warm.

Only *successful* simulations are cached: a classified
:class:`~repro.netlist.errors.PICBenchError` always propagates to the caller
uncached, so error semantics are identical with and without the cache.

Disk-tier resilience: reads and writes run under a small
:class:`~repro.faults.RetryPolicy` (transient ``OSError`` trouble is retried
with backoff, counted in ``CacheStats.disk_retries``), and an entry whose
*content* cannot be parsed is quarantined -- renamed to ``<entry>.corrupt``
and counted in ``CacheStats.disk_corrupt`` -- instead of being silently
re-read and re-failed forever.  The ``cache.disk_read`` / ``cache.disk_write``
fault points make both paths testable deterministically.
"""

from __future__ import annotations

import logging
import os
import tempfile
import threading
import zipfile
from pathlib import Path
from typing import Optional

import numpy as np

from .._cache import CacheStats, LRUCache
from .._locks import FileLock
from ..faults import RetryPolicy, fault_point, retry_call
from ..sim.sparams import SMatrix

__all__ = ["CacheStats", "LRUCache", "SimulationCache"]

logger = logging.getLogger(__name__)

#: Seconds a disk-cache writer waits for another process's in-flight write of
#: the same key before falling back to its own (atomic, redundant) write.
_WRITE_LOCK_TIMEOUT = 5.0

#: Default disk-I/O retry: one quick retry, tiny backoff.  Real disk faults
#: are either transient (NFS hiccup, AV scanner) or permanent; more attempts
#: only slow the degrade-to-recompute path down.
_DEFAULT_IO_RETRY = RetryPolicy(attempts=2, base_delay=0.02, max_delay=0.2)

#: Errors meaning "the entry's content is corrupt" (quarantine + recompute),
#: as opposed to transient OSError I/O trouble (retry, then recompute).
_CORRUPT_ERRORS = (KeyError, ValueError, zipfile.BadZipFile)


class SimulationCache:
    """Content-addressed memoisation of circuit simulations.

    Parameters
    ----------
    max_entries:
        Capacity of the in-memory LRU tier; ``<= 0`` disables caching.
    cache_dir:
        Optional directory for ``.npz`` persistence.  Entries are written
        atomically (temp file + rename) so concurrent sweep workers sharing a
        directory never observe partial files.
    retry_policy:
        Retry behaviour for transient disk I/O errors on both the read and
        the write path.  Defaults to one quick retry with a short backoff.
    """

    _DISK_PREFIX = "sim-"

    def __init__(
        self,
        max_entries: int = 2048,
        cache_dir: Optional[Path | str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._memory: LRUCache[str, SMatrix] = LRUCache(max_entries=max_entries)
        self._stats_lock = threading.Lock()
        self._retry_policy = retry_policy or _DEFAULT_IO_RETRY
        self._quarantined: set = set()
        self._nonfinite_rejected = 0
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            # Fail fast with a clear error: a bad cache_dir discovered during
            # a sweep would be classified as a per-sample evaluation failure.
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            except (FileExistsError, NotADirectoryError) as exc:
                raise ValueError(
                    f"cache_dir {str(self.cache_dir)!r} exists and is not a directory"
                ) from exc

    @property
    def stats(self) -> CacheStats:
        """Counters of the memory tier (disk hits are tracked separately)."""
        return self._memory.stats

    @property
    def enabled(self) -> bool:
        """Whether the cache can store anything at all."""
        return self._memory.max_entries > 0 or self.cache_dir is not None

    @property
    def nonfinite_rejected(self) -> int:
        """How many puts were refused because their data was not finite."""
        with self._stats_lock:
            return self._nonfinite_rejected

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{self._DISK_PREFIX}{key}.npz"

    def _load_entry(self, key: str, path: Path) -> SMatrix:
        """One disk-read attempt (fault-injectable, raises on failure)."""
        fault_point("cache.disk_read", key=key, path=path)
        with np.load(path) as payload:
            return SMatrix(
                wavelengths=payload["wavelengths"],
                ports=tuple(str(p) for p in payload["ports"]),
                data=payload["data"],
                # Entries written before the flag existed load as pristine.
                degraded=bool(payload["degraded"]) if "degraded" in payload else False,
            )

    def _quarantine(self, key: str, path: Path, error: Exception) -> None:
        """Move a corrupt entry aside so it is never re-read (and re-failed).

        The rename is atomic, so concurrent readers either still see the
        corrupt entry (and race us to quarantine it -- one rename wins) or
        see a plain miss.  Logged once per key per cache instance.
        """
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            return  # already quarantined (or removed) by a concurrent reader
        with self._stats_lock:
            self.stats.disk_corrupt += 1
            first = key not in self._quarantined
            self._quarantined.add(key)
        if first:
            logger.warning(
                "quarantined corrupt cache entry %s (%s: %s)",
                path.name,
                type(error).__name__,
                error,
            )

    def get(self, key: str) -> Optional[SMatrix]:
        """Look ``key`` up in memory first, then on disk (promoting to memory).

        Transient I/O errors are retried per the cache's retry policy;
        unparseable entries are quarantined (renamed to ``*.corrupt``).
        Either way a failed disk read degrades to a miss -- the caller
        recomputes and overwrites.
        """
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            smatrix = retry_call(
                lambda: self._load_entry(key, path),
                policy=self._retry_policy,
                seed=f"cache.disk_read:{key}",
                on_retry=self._count_disk_retry,
            )
        except FileNotFoundError:
            return None  # evicted/quarantined between the exists() probe and the read
        except OSError:
            return None  # persistent I/O trouble: recompute without quarantining
        except _CORRUPT_ERRORS as exc:
            self._quarantine(key, path, exc)
            return None
        with self._stats_lock:
            self.stats.disk_hits += 1
        self._memory.put(key, smatrix)
        return smatrix

    def _count_disk_retry(self, attempt: int, error: Exception) -> None:
        with self._stats_lock:
            self.stats.disk_retries += 1

    def put(self, key: str, smatrix: SMatrix) -> None:
        """Store one simulated result in every configured tier.

        Disk writes are coordinated across processes by an advisory
        ``<entry>.lock`` file: concurrent sweep workers computing the same
        content-addressed key serialise on it, and whoever arrives second
        finds the entry already on disk and skips the redundant write.  The
        lock is best-effort -- an unacquirable lock degrades to the plain
        atomic temp-file + rename write, which is safe (just redundant)
        because equal keys always carry equal content.
        """
        if not np.all(np.isfinite(smatrix.data)):
            # A NaN/inf result must never be served from cache as if it were
            # a valid simulation: refuse every tier and count the refusal.
            with self._stats_lock:
                self._nonfinite_rejected += 1
            logger.warning("refusing to cache non-finite simulation result %s", key)
            return
        self._memory.put(key, smatrix)
        path = self._disk_path(key)
        if path is None:
            return
        # Mid-run disk trouble (directory removed, disk full) must not fail
        # the simulation itself: degrade to memory-only caching.
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        lock = FileLock(path.with_suffix(".lock"), timeout=_WRITE_LOCK_TIMEOUT)
        locked = lock.acquire()
        try:
            if locked and path.exists():
                # Another worker finished this key while we waited: the
                # content-addressed entry is already valid.
                return
            try:
                retry_call(
                    lambda: self._write_entry(path, smatrix),
                    policy=self._retry_policy,
                    seed=f"cache.disk_write:{key}",
                    on_retry=self._count_disk_retry,
                )
            except OSError:
                pass  # persistent disk trouble: degrade to memory-only caching
        finally:
            if locked:
                lock.release()

    @staticmethod
    def _write_entry(path: Path, smatrix: SMatrix) -> None:
        """Atomically persist one entry (temp file + rename); raises OSError."""
        tmp_name = None
        try:
            handle, tmp_name = tempfile.mkstemp(
                prefix=path.stem, suffix=".tmp", dir=str(path.parent)
            )
            with os.fdopen(handle, "wb") as tmp:
                np.savez(
                    tmp,
                    wavelengths=np.asarray(smatrix.wavelengths, dtype=float),
                    ports=np.asarray(smatrix.ports, dtype=str),
                    data=np.asarray(smatrix.data, dtype=complex),
                    degraded=np.asarray(smatrix.degraded, dtype=bool),
                )
            # The fault point sits between write and rename: a "corrupt" rule
            # truncates the temp file that is about to become the live entry,
            # reproducing a torn write that the read side must quarantine.
            fault_point("cache.disk_write", key=path.name, path=Path(tmp_name))
            os.replace(tmp_name, path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            raise

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries, if any, remain valid)."""
        self._memory.clear()
