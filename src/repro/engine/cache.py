"""The content-addressed simulation cache backing the execution engine.

:class:`SimulationCache` is a store of simulated
:class:`~repro.sim.sparams.SMatrix` results keyed on ``(canonical netlist
hash, wavelength-grid hash, registry fingerprint, port spec)``.  The memory
tier is a thread-safe :class:`~repro._cache.LRUCache`; optionally every entry
is also persisted as an ``.npz`` file under ``cache_dir`` so later processes
(and parallel workers of the same sweep) start warm.

Only *successful* simulations are cached: a classified
:class:`~repro.netlist.errors.PICBenchError` always propagates to the caller
uncached, so error semantics are identical with and without the cache.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

from .._cache import CacheStats, LRUCache
from .._locks import FileLock
from ..sim.sparams import SMatrix

__all__ = ["CacheStats", "LRUCache", "SimulationCache"]

#: Seconds a disk-cache writer waits for another process's in-flight write of
#: the same key before falling back to its own (atomic, redundant) write.
_WRITE_LOCK_TIMEOUT = 5.0


class SimulationCache:
    """Content-addressed memoisation of circuit simulations.

    Parameters
    ----------
    max_entries:
        Capacity of the in-memory LRU tier; ``<= 0`` disables caching.
    cache_dir:
        Optional directory for ``.npz`` persistence.  Entries are written
        atomically (temp file + rename) so concurrent sweep workers sharing a
        directory never observe partial files.
    """

    _DISK_PREFIX = "sim-"

    def __init__(
        self,
        max_entries: int = 2048,
        cache_dir: Optional[Path | str] = None,
    ) -> None:
        self._memory: LRUCache[str, SMatrix] = LRUCache(max_entries=max_entries)
        self._stats_lock = threading.Lock()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            # Fail fast with a clear error: a bad cache_dir discovered during
            # a sweep would be classified as a per-sample evaluation failure.
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            except (FileExistsError, NotADirectoryError) as exc:
                raise ValueError(
                    f"cache_dir {str(self.cache_dir)!r} exists and is not a directory"
                ) from exc

    @property
    def stats(self) -> CacheStats:
        """Counters of the memory tier (disk hits are tracked separately)."""
        return self._memory.stats

    @property
    def enabled(self) -> bool:
        """Whether the cache can store anything at all."""
        return self._memory.max_entries > 0 or self.cache_dir is not None

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{self._DISK_PREFIX}{key}.npz"

    def get(self, key: str) -> Optional[SMatrix]:
        """Look ``key`` up in memory first, then on disk (promoting to memory)."""
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path) as payload:
                smatrix = SMatrix(
                    wavelengths=payload["wavelengths"],
                    ports=tuple(str(p) for p in payload["ports"]),
                    data=payload["data"],
                )
        except (OSError, KeyError, ValueError):
            return None  # corrupt / truncated entry: recompute and overwrite
        with self._stats_lock:
            self.stats.disk_hits += 1
        self._memory.put(key, smatrix)
        return smatrix

    def put(self, key: str, smatrix: SMatrix) -> None:
        """Store one simulated result in every configured tier.

        Disk writes are coordinated across processes by an advisory
        ``<entry>.lock`` file: concurrent sweep workers computing the same
        content-addressed key serialise on it, and whoever arrives second
        finds the entry already on disk and skips the redundant write.  The
        lock is best-effort -- an unacquirable lock degrades to the plain
        atomic temp-file + rename write, which is safe (just redundant)
        because equal keys always carry equal content.
        """
        self._memory.put(key, smatrix)
        path = self._disk_path(key)
        if path is None:
            return
        # Mid-run disk trouble (directory removed, disk full) must not fail
        # the simulation itself: degrade to memory-only caching.
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        lock = FileLock(path.with_suffix(".lock"), timeout=_WRITE_LOCK_TIMEOUT)
        locked = lock.acquire()
        try:
            if locked and path.exists():
                # Another worker finished this key while we waited: the
                # content-addressed entry is already valid.
                return
            self._write_entry(path, smatrix)
        finally:
            if locked:
                lock.release()

    @staticmethod
    def _write_entry(path: Path, smatrix: SMatrix) -> None:
        """Atomically persist one entry (temp file + rename)."""
        tmp_name = None
        try:
            handle, tmp_name = tempfile.mkstemp(
                prefix=path.stem, suffix=".tmp", dir=str(path.parent)
            )
            with os.fdopen(handle, "wb") as tmp:
                np.savez(
                    tmp,
                    wavelengths=np.asarray(smatrix.wavelengths, dtype=float),
                    ports=np.asarray(smatrix.ports, dtype=str),
                    data=np.asarray(smatrix.data, dtype=complex),
                )
            os.replace(tmp_name, path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries, if any, remain valid)."""
        self._memory.clear()
