"""Process-sharded work-unit execution (the sweep's multi-core tier).

The thread scheduler (:mod:`repro.engine.scheduler`) parallelises I/O and
releases-the-GIL numpy sections, but a sweep dominated by pure-Python
evaluation code gains nothing from more threads.  This module adds the
process tier: work units are sharded across ``multiprocessing`` workers,
each of which rebuilds its execution context from a small picklable *spec*
-- never from live objects -- and the parent merges shard results back in
submission order, so process-sharded runs are byte-identical to sequential
ones whenever each unit's result is a pure function of its task spec.

Layering: this module knows nothing about the harness.  Callers describe
their worker-side code as dotted ``"module:function"`` references, which the
worker resolves by import -- the references travel as strings, so the spec
stays picklable under both ``fork`` and ``spawn`` start methods:

``builder_ref(payload) -> context``
    Runs once per worker process and builds whatever live state the units
    need (engine, caches, clients).  Workers of one sweep share the on-disk
    simulation cache and compiled-plan spill through the engine's
    ``cache_dir`` / ``plan_dir``.
``runner_ref(context, task) -> result``
    Runs one task (``per_task=True``), or ``runner_ref(context, tasks) ->
    results`` for a whole shard at once (``per_task=False`` -- used when the
    shard should be fused, e.g. the batched evaluation path).
``stats_ref(context) -> dict``
    Optional per-worker counters snapshot, collected after each shard and
    merged with :func:`aggregate_engine_stats`.

Failure isolation: an exception inside a unit is captured and returned as a
:class:`UnitFailure` for that unit only.  A worker *crash* (segfault,
``os._exit``, OOM kill) breaks the whole pool; the affected shards are
re-run one unit at a time on fresh single-worker pools under a budgeted
:class:`~repro.faults.RetryPolicy`, so exactly the units that exhaust their
retry budget come back as crashed :class:`UnitFailure` entries while every
other unit's result survives.  An optional per-unit timeout arms a watchdog:
a shard that stops making progress for ``unit_timeout`` seconds per
remaining unit is declared hung, its worker processes are terminated, and
its units go through the same single-unit retry path.  Retry / crash /
timeout counters are exposed on :attr:`ProcessScheduler.counters` and merged
into the sweep's engine stats.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import pickle
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, as_completed, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import RetryPolicy, fault_point

__all__ = [
    "ProcessScheduler",
    "UnitFailure",
    "WorkerSpec",
    "aggregate_engine_stats",
    "resolve_processes",
    "resolve_ref",
]


def resolve_processes(processes: int) -> int:
    """Concrete worker-process count: ``> 0`` passes through, else one per core."""
    if processes > 0:
        return processes
    return os.cpu_count() or 1


def resolve_ref(ref: str) -> Callable:
    """Resolve a dotted ``"module:qualname"`` reference to a callable."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"worker reference {ref!r} is not of the form 'module:function'")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"worker reference {ref!r} resolved to a non-callable")
    return obj


@dataclass(frozen=True)
class WorkerSpec:
    """Picklable description of how a worker process builds its context.

    ``payload`` must contain only picklable values (names, parameters,
    seeds, configuration dataclasses) -- never engines, caches, locks or
    open handles.  The worker resolves ``builder_ref`` and calls it once
    with ``payload``; the returned context is process-local.
    """

    builder_ref: str
    payload: Any = None


@dataclass
class UnitFailure:
    """Outcome of a unit whose worker raised (``crashed=False``) or died.

    ``exception`` carries the original exception object when it survived
    pickling back to the parent; ``traceback_text`` always carries the
    worker-side traceback for diagnostics.  ``timed_out`` marks units whose
    worker was killed by the watchdog rather than dying on its own.
    """

    message: str
    crashed: bool = False
    traceback_text: str = ""
    exception: Optional[BaseException] = None
    timed_out: bool = False


#: Default per-unit retry budget of the crash/timeout recovery path: each
#: suspect unit gets two isolated attempts (plus its original shard run)
#: with a short backoff between them.
_DEFAULT_UNIT_RETRY = RetryPolicy(attempts=2, base_delay=0.1, max_delay=1.0)


# ----------------------------------------------------------------------
# Worker-side entry points (module-level: picklable under spawn)
# ----------------------------------------------------------------------
_WORKER_CONTEXT: Any = None


def _worker_init(builder_ref: str, payload: Any) -> None:
    """Pool initializer: build this process's context from the spec."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = resolve_ref(builder_ref)(payload)


def _capture_failure(exc: BaseException) -> UnitFailure:
    """Wrap a worker-side exception so it pickles back to the parent."""
    carried: Optional[BaseException] = exc
    try:
        pickle.dumps(exc)
    except Exception:  # noqa: BLE001 - any pickling trouble drops the object
        carried = None
    return UnitFailure(
        message=f"{type(exc).__name__}: {exc}",
        traceback_text=traceback.format_exc(),
        exception=carried,
    )


def _worker_run_shard(
    runner_ref: str,
    tasks: List[Any],
    per_task: bool,
    stats_ref: Optional[str],
) -> Tuple[List[Any], Optional[Dict[str, object]]]:
    """Run one shard of tasks; each slot is a result or a UnitFailure."""
    runner = resolve_ref(runner_ref)
    results: List[Any] = []
    if per_task:
        for task in tasks:
            try:
                fault_point("procpool.unit", key=repr(task))
                results.append(runner(_WORKER_CONTEXT, task))
            except Exception as exc:  # noqa: BLE001 - isolated per unit
                results.append(_capture_failure(exc))
    else:
        try:
            fault_point("procpool.unit", key=repr(tasks[:1]))
            values = list(runner(_WORKER_CONTEXT, list(tasks)))
            if len(values) != len(tasks):
                raise RuntimeError(
                    f"shard runner returned {len(values)} results for {len(tasks)} tasks"
                )
            results = values
        except Exception as exc:  # noqa: BLE001 - isolated per shard
            failure = _capture_failure(exc)
            results = [failure] * len(tasks)
    stats: Optional[Dict[str, object]] = None
    if stats_ref is not None:
        try:
            stats = resolve_ref(stats_ref)(_WORKER_CONTEXT)
        except Exception:  # noqa: BLE001 - stats are best-effort
            stats = None
    return results, stats


# ----------------------------------------------------------------------
# Parent-side scheduler
# ----------------------------------------------------------------------
class ProcessScheduler:
    """Shards tasks over a process pool with order-preserving merge.

    Parameters
    ----------
    spec:
        How each worker builds its context (see :class:`WorkerSpec`).
    processes:
        Worker-process count; ``0`` means one per core.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default,
        ``fork`` on Linux; pass ``"spawn"`` to exercise the stricter
        pickling path).
    shards_per_worker:
        Target number of shards per worker.  More shards give better load
        balancing and finer crash blast-radius; fewer amortise per-shard
        dispatch better.
    retry_policy:
        Per-unit retry budget of the crash/timeout recovery path (attempts
        count the *isolated* re-runs, not the original shard run).  Defaults
        to two isolated attempts with a short backoff.
    unit_timeout:
        Optional seconds one unit may run before its worker is presumed
        hung.  Arms the shard watchdog (budget: ``unit_timeout`` x units
        still pending in the shard) and bounds each isolated retry; the
        watchdog terminates the hung workers and routes their units through
        the retry path.  ``None`` (the default) disables timeouts.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        processes: int = 0,
        start_method: Optional[str] = None,
        shards_per_worker: int = 4,
        retry_policy: Optional[RetryPolicy] = None,
        unit_timeout: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.processes = resolve_processes(processes)
        self.start_method = start_method
        self.shards_per_worker = max(1, int(shards_per_worker))
        self.retry_policy = retry_policy or _DEFAULT_UNIT_RETRY
        self.unit_timeout = float(unit_timeout) if unit_timeout else None
        #: Robustness counters, accumulated across this scheduler's ``map``
        #: calls and merged into sweep engine stats under ``"procpool"``.
        self.counters: Dict[str, int] = {
            "unit_retries": 0,
            "unit_crashes": 0,
            "unit_timeouts": 0,
            "shard_timeouts": 0,
        }

    # ------------------------------------------------------------------
    def _context(self):
        if self.start_method is None:
            return multiprocessing.get_context()
        return multiprocessing.get_context(self.start_method)

    def _pool(self, mp_context, max_workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=mp_context,
            initializer=_worker_init,
            initargs=(self.spec.builder_ref, self.spec.payload),
        )

    @staticmethod
    def shard_bounds(count: int, shards: int) -> List[Tuple[int, int]]:
        """Split ``range(count)`` into at most ``shards`` contiguous spans.

        Contiguity matters: the harness orders units so that one shard holds
        whole (problem x sample-group) runs, which keeps the batched
        evaluation path's fusion opportunities intact.
        """
        shards = max(1, min(shards, count))
        base, extra = divmod(count, shards)
        bounds: List[Tuple[int, int]] = []
        lo = 0
        for index in range(shards):
            hi = lo + base + (1 if index < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    # ------------------------------------------------------------------
    def map(
        self,
        runner_ref: str,
        tasks: Sequence[Any],
        *,
        per_task: bool = True,
        stats_ref: Optional[str] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> Tuple[List[Any], List[Dict[str, object]]]:
        """Run every task; slot ``i`` of the result is task ``i``'s outcome.

        Returns ``(results, stats)``: ``results[i]`` is the runner's return
        value or a :class:`UnitFailure`; ``stats`` collects one snapshot per
        completed shard when ``stats_ref`` is given.  The merge is by task
        index, so the output order never depends on worker scheduling.

        ``on_result(index, result)`` fires in the parent as each unit's
        outcome lands (shard completion order, not index order) -- the
        journalling hook: a checkpoint written there survives a parent
        kill even though ``map`` itself never returned.
        """
        tasks = list(tasks)
        results: List[Any] = [None] * len(tasks)
        stats_list: List[Dict[str, object]] = []
        if not tasks:
            return results, stats_list
        processes = min(self.processes, len(tasks))
        bounds = self.shard_bounds(len(tasks), processes * self.shards_per_worker)
        mp_context = self._context()
        retry_spans: List[Tuple[int, int]] = []
        pool = self._pool(mp_context, processes)
        try:
            future_spans = {}
            for lo, hi in bounds:
                try:
                    future = pool.submit(
                        _worker_run_shard, runner_ref, tasks[lo:hi], per_task, stats_ref
                    )
                except BrokenProcessPool:
                    retry_spans.append((lo, hi))
                    continue
                future_spans[future] = (lo, hi)

            def merge(future) -> None:
                lo, hi = future_spans[future]
                try:
                    shard_results, stats = future.result()
                except BrokenProcessPool:
                    # A worker died mid-shard; every unit of the shard is
                    # suspect and gets retried in isolation below.
                    self.counters["unit_crashes"] += 1
                    retry_spans.append((lo, hi))
                else:
                    results[lo:hi] = shard_results
                    if stats is not None:
                        stats_list.append(stats)
                    if on_result is not None:
                        for offset, value in enumerate(shard_results):
                            on_result(lo + offset, value)

            if self.unit_timeout is None:
                for future in as_completed(future_spans):
                    merge(future)
            else:
                self._watch(pool, future_spans, retry_spans, merge)
        finally:
            pool.shutdown(wait=True)
        if retry_spans:
            self._retry_units(
                retry_spans,
                runner_ref,
                tasks,
                per_task,
                stats_ref,
                results,
                stats_list,
                mp_context,
                on_result,
            )
        return results, stats_list

    def _watch(self, pool, future_spans, retry_spans, merge) -> None:
        """Progress watchdog over the in-flight shards.

        The hang budget is ``unit_timeout`` x the largest pending shard:
        as long as *some* shard completes within that window the sweep is
        making progress and the clock resets.  On expiry every worker
        process is terminated (queued shards then surface as
        ``BrokenProcessPool``) and all still-pending spans go through the
        single-unit retry path, which enforces the per-unit deadline
        exactly.
        """
        pending = set(future_spans)
        while pending:
            largest = max(hi - lo for lo, hi in (future_spans[f] for f in pending))
            budget = self.unit_timeout * largest
            done, pending = wait(pending, timeout=budget, return_when=FIRST_COMPLETED)
            for future in done:
                merge(future)
            if not done and pending:
                self.counters["shard_timeouts"] += 1
                self._terminate_workers(pool)
                for future in pending:
                    future.cancel()
                    retry_spans.append(future_spans[future])
                return

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool's worker processes (the watchdog's kill switch)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except OSError:
                pass

    def _retry_units(
        self,
        spans: List[Tuple[int, int]],
        runner_ref: str,
        tasks: List[Any],
        per_task: bool,
        stats_ref: Optional[str],
        results: List[Any],
        stats_list: List[Dict[str, object]],
        mp_context,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> None:
        """Re-run suspect shards one unit at a time under the retry budget.

        Each unit gets up to ``retry_policy.attempts`` isolated runs on
        fresh single-worker pools (with backoff between attempts and the
        per-unit timeout enforced on each), so only units that *keep*
        killing or hanging their worker are marked as crashed
        :class:`UnitFailure` entries; their shard-mates complete normally.
        """
        policy = self.retry_policy
        indices = sorted(i for lo, hi in spans for i in range(lo, hi))
        pool: Optional[ProcessPoolExecutor] = None
        try:
            for index in indices:
                failure: Optional[UnitFailure] = None
                for attempt in range(policy.attempts):
                    if attempt > 0:
                        self.counters["unit_retries"] += 1
                        time.sleep(policy.delay(attempt - 1, seed=f"procpool.unit:{index}"))
                    if pool is None:
                        pool = self._pool(mp_context, 1)
                    try:
                        future = pool.submit(
                            _worker_run_shard, runner_ref, [tasks[index]], per_task, stats_ref
                        )
                        shard_results, stats = future.result(timeout=self.unit_timeout)
                    except FuturesTimeoutError:
                        self.counters["unit_timeouts"] += 1
                        self._terminate_workers(pool)
                        pool.shutdown(wait=True)
                        pool = None
                        failure = UnitFailure(
                            message=(
                                f"unit timed out after {self.unit_timeout:g}s "
                                "and its worker was killed"
                            ),
                            crashed=True,
                            timed_out=True,
                        )
                        continue
                    except BrokenProcessPool:
                        self.counters["unit_crashes"] += 1
                        pool.shutdown(wait=True)
                        pool = None
                        failure = UnitFailure(
                            message=(
                                "worker process crashed while running this unit "
                                f"({attempt + 1} isolated attempt(s), plus the "
                                "original shard)"
                            ),
                            crashed=True,
                        )
                        continue
                    results[index] = shard_results[0]
                    if stats is not None:
                        stats_list.append(stats)
                    if on_result is not None:
                        on_result(index, shard_results[0])
                    failure = None
                    break
                if failure is not None:
                    results[index] = failure
                    if on_result is not None:
                        on_result(index, failure)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Stats aggregation
# ----------------------------------------------------------------------
#: Descriptive (non-counter) keys of ``ExecutionEngine.stats()`` snapshots:
#: identical across workers, kept as-is instead of summed.
_DESCRIPTIVE_KEYS = ("workers", "execution_mode", "batch_size")

#: Hit-rate keys and the counter sub-dict each is recomputed from.
_HIT_RATE_SOURCES = {
    "simulation_hit_rate": "simulation_cache",
    "instance_hit_rate": "instance_cache",
    "plan_hit_rate": "plan_cache",
    "batch_hit_rate": "batch",
}


def _merge_counters(dst: Dict[str, object], src: Dict[str, object]) -> None:
    for key, value in src.items():
        if isinstance(value, dict):
            node = dst.setdefault(key, {})
            if isinstance(node, dict):
                _merge_counters(node, value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            dst[key] = value
        elif key in _DESCRIPTIVE_KEYS or key.endswith("_rate"):
            dst[key] = value  # rates are recomputed from merged counters below
        else:
            dst[key] = dst.get(key, 0) + value


def aggregate_engine_stats(
    stats_list: Sequence[Dict[str, object]],
) -> Dict[str, object]:
    """Merge per-worker ``ExecutionEngine.stats()`` snapshots into one.

    Integer counters sum across workers (nested dicts recursively); the
    descriptive keys keep their per-worker value (identical everywhere);
    every derived rate is recomputed from the merged counters rather than
    averaged, so the aggregate reads exactly like a single engine that did
    all the work.
    """
    merged: Dict[str, object] = {}
    for stats in stats_list:
        if isinstance(stats, dict):
            _merge_counters(merged, stats)
    for rate_key, counters_key in _HIT_RATE_SOURCES.items():
        counters = merged.get(counters_key)
        if isinstance(counters, dict):
            hits = counters.get("hits", 0)
            lookups = hits + counters.get("misses", 0)
            merged[rate_key] = hits / lookups if lookups else 0.0
    solver_batch = merged.get("solver_batch")
    if isinstance(solver_batch, dict):
        samples = solver_batch.get("samples", 0)
        passes = solver_batch.get("executor_passes", 0)
        rate = 1.0 - passes / samples if samples else 0.0
        solver_batch["fusion_rate"] = rate
        merged["batch_fusion_rate"] = rate
    return merged
