"""Deterministic, parallel, cache-backed execution engine.

The engine is the architectural seam between the evaluation pipeline
(:mod:`repro.evalkit`, :mod:`repro.harness`) and the simulator
(:mod:`repro.sim`): all circuit simulations and all sweep work units route
through an :class:`ExecutionEngine`, which provides

* a content-addressed :class:`SimulationCache` keyed on the canonical netlist,
  the wavelength grid and the registry fingerprint (in-memory LRU plus
  optional ``.npz`` persistence under a cache directory), and
* a :class:`TaskScheduler` running flattened ``(client, restrictions,
  problem, sample)`` work units on a thread pool with content-derived seeds,
  so parallel and sequential sweeps produce byte-identical reports.

This package only depends on :mod:`repro.sim` and :mod:`repro.netlist`;
higher layers depend on it, never the other way around.
"""

from .cache import CacheStats, LRUCache, SimulationCache
from .engine import (
    EXECUTION_MODES,
    EngineBatchStats,
    EngineConfig,
    ExecutionEngine,
    default_engine,
)
from .fingerprint import (
    grid_fingerprint,
    netlist_fingerprint,
    registry_fingerprint,
    sample_seed,
    settings_fingerprint,
    simulation_key,
    stable_hash,
)
from .procpool import (
    ProcessScheduler,
    UnitFailure,
    WorkerSpec,
    aggregate_engine_stats,
    resolve_processes,
)
from .scheduler import TaskScheduler, resolve_workers

__all__ = [
    "CacheStats",
    "LRUCache",
    "SimulationCache",
    "EXECUTION_MODES",
    "EngineBatchStats",
    "EngineConfig",
    "ExecutionEngine",
    "default_engine",
    "ProcessScheduler",
    "UnitFailure",
    "WorkerSpec",
    "aggregate_engine_stats",
    "resolve_processes",
    "TaskScheduler",
    "resolve_workers",
    "stable_hash",
    "netlist_fingerprint",
    "grid_fingerprint",
    "registry_fingerprint",
    "settings_fingerprint",
    "simulation_key",
    "sample_seed",
]
