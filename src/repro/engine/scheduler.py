"""Deterministic task scheduling for the execution engine.

The evaluation pipeline is embarrassingly parallel once flattened: every
``(client, restrictions, problem, sample)`` trajectory is an independent pure
function of its inputs (seeds are content-derived, see
:func:`repro.engine.fingerprint.sample_seed`).  The scheduler exploits that by
running an order-preserving ``map`` over a thread pool: results come back in
submission order regardless of completion order, so callers fold them into
reports exactly as the sequential loops did and the output is byte-identical
for any worker count.

Threads (not processes) are the right pool here: the hot path is
``numpy.linalg.solve`` over wavelength-batched matrices, which releases the
GIL, and threads share the simulation caches for free.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

__all__ = ["TaskScheduler", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int) -> int:
    """Normalise a ``--workers`` value: ``0`` or negative means "all cores"."""
    if workers > 0:
        return int(workers)
    return max(os.cpu_count() or 1, 1)


class TaskScheduler:
    """Order-preserving parallel ``map`` over a configurable worker pool."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order.

        With one worker the items run inline on the calling thread (no pool
        overhead); exceptions propagate to the caller either way, matching
        the sequential loops the scheduler replaces.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., R], items: Iterable[Sequence[object]]) -> List[R]:
        """Like :meth:`map` but unpacking each item into ``fn``'s arguments."""
        return self.map(lambda args: fn(*args), items)
