"""Pass@k regression diffing between two evaluation runs.

The diff compares every (model, restriction setting, pack, problem, metric,
k, feedback budget) pass@k value of a *candidate* run against a *baseline*
run and classifies each entry:

``unchanged``
    |delta| <= tolerance (in percentage points; the tolerance edge itself
    counts as unchanged).
``improved`` / ``regressed``
    The candidate moved above / below the baseline by more than the
    tolerance.
``added`` / ``removed``
    The entry exists in only one of the runs (new/retired problems, models
    or restriction settings); these never trip the regression verdict on
    their own.

Entries cover both per-problem values and the pack-aggregate row (problem
``None``), so a diff pinpoints *which* problem moved as well as whether the
table-level number did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..evalkit.outcome import EvalReport
from ..harness.runner import FEEDBACK_COLUMNS, PASS_AT
from .store import ResultsStore, TRAJECTORY_METRICS

__all__ = ["DiffEntry", "RunDiff", "VERDICTS", "diff_reports", "diff_runs"]

#: Every verdict a diff entry can carry.
VERDICTS: Tuple[str, ...] = ("unchanged", "improved", "regressed", "added", "removed")

#: Key ordering of diff entries: (model, restrictions, pack, problem-or-"",
#: metric, k, max_feedback).  Aggregate rows (problem None) sort first.
DiffKey = Tuple[str, bool, str, Optional[str], str, int, int]


@dataclass(frozen=True)
class DiffEntry:
    """One compared pass@k value."""

    model: str
    with_restrictions: bool
    pack: str
    problem: Optional[str]  # None = pack aggregate
    metric: str
    k: int
    max_feedback: int
    baseline: Optional[float]
    candidate: Optional[float]
    verdict: str

    @property
    def delta(self) -> Optional[float]:
        """candidate - baseline, in percentage points (None when one-sided)."""
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    @property
    def key(self) -> DiffKey:
        """Stable sort/lookup key of the entry."""
        return (
            self.model,
            self.with_restrictions,
            self.pack,
            self.problem if self.problem is not None else "",
            self.metric,
            self.k,
            self.max_feedback,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by the JSON regression report)."""
        return {
            "model": self.model,
            "with_restrictions": self.with_restrictions,
            "pack": self.pack,
            "problem": self.problem,
            "metric": self.metric,
            "k": self.k,
            "max_feedback": self.max_feedback,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "verdict": self.verdict,
        }


@dataclass
class RunDiff:
    """The full diff between two runs (or two in-memory report sets)."""

    baseline_id: str
    candidate_id: str
    tolerance: float
    entries: List[DiffEntry] = field(default_factory=list)

    def with_verdict(self, verdict: str) -> List[DiffEntry]:
        """Entries carrying one verdict."""
        return [entry for entry in self.entries if entry.verdict == verdict]

    @property
    def regressions(self) -> List[DiffEntry]:
        """Entries whose candidate value fell below tolerance."""
        return self.with_verdict("regressed")

    @property
    def improvements(self) -> List[DiffEntry]:
        """Entries whose candidate value rose above tolerance."""
        return self.with_verdict("improved")

    @property
    def changed(self) -> List[DiffEntry]:
        """Everything that is not ``unchanged`` (incl. added/removed)."""
        return [entry for entry in self.entries if entry.verdict != "unchanged"]

    @property
    def is_empty(self) -> bool:
        """True when the two runs are indistinguishable (all unchanged)."""
        return not self.changed

    @property
    def is_regression(self) -> bool:
        """The CI gate: does the candidate regress anywhere?"""
        return bool(self.regressions)

    def verdict_counts(self) -> Dict[str, int]:
        """Histogram of entry verdicts (stable key order)."""
        return {
            verdict: len(self.with_verdict(verdict))
            for verdict in VERDICTS
        }


def _classify(baseline: float, candidate: float, tolerance: float) -> str:
    """Verdict of one two-sided comparison."""
    delta = candidate - baseline
    if abs(delta) <= tolerance:
        return "unchanged"
    return "improved" if delta > 0 else "regressed"


def _report_values(
    reports: Dict[Tuple[str, bool], EvalReport],
    metrics: Sequence[str],
    ks: Sequence[int],
    feedbacks: Sequence[int],
) -> Dict[DiffKey, Tuple[str, Optional[str], float]]:
    """Flatten report sets into {key: (pack, problem, value)} lookups."""
    values: Dict[DiffKey, Tuple[str, Optional[str], float]] = {}
    for (model, with_restrictions), report in reports.items():
        problems: List[Optional[str]] = [None, *report.results.keys()]
        for metric in metrics:
            for k in ks:
                for max_feedback in feedbacks:
                    for problem in problems:
                        if problem is None:
                            value = report.pass_at_k(
                                k, metric=metric, max_feedback=max_feedback
                            )
                        else:
                            value = report.problem_pass_at_k(
                                problem, k, metric=metric, max_feedback=max_feedback
                            )
                        key: DiffKey = (
                            model,
                            with_restrictions,
                            report.pack,
                            problem if problem is not None else "",
                            metric,
                            k,
                            max_feedback,
                        )
                        values[key] = (report.pack, problem, value)
    return values


def diff_reports(
    baseline: Dict[Tuple[str, bool], EvalReport],
    candidate: Dict[Tuple[str, bool], EvalReport],
    *,
    tolerance: float = 0.0,
    baseline_id: str = "baseline",
    candidate_id: str = "candidate",
    metrics: Sequence[str] = TRAJECTORY_METRICS,
    ks: Sequence[int] = PASS_AT,
    feedbacks: Sequence[int] = FEEDBACK_COLUMNS,
) -> RunDiff:
    """Diff two in-memory report sets (keyed by (model, with_restrictions)).

    ``tolerance`` is in percentage points of pass@k and must be >= 0; the
    edge case ``|delta| == tolerance`` is *unchanged* by definition, so a
    tolerance of 0 flags every nonzero drift.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0 percentage points")
    baseline_values = _report_values(baseline, metrics, ks, feedbacks)
    candidate_values = _report_values(candidate, metrics, ks, feedbacks)
    entries: List[DiffEntry] = []
    for key in sorted(set(baseline_values) | set(candidate_values)):
        model, with_restrictions, pack, _, metric, k, max_feedback = key
        base = baseline_values.get(key)
        cand = candidate_values.get(key)
        problem = (base or cand)[1]  # type: ignore[index]
        if base is not None and cand is not None:
            verdict = _classify(base[2], cand[2], tolerance)
        elif base is None:
            verdict = "added"
        else:
            verdict = "removed"
        entries.append(
            DiffEntry(
                model=model,
                with_restrictions=with_restrictions,
                pack=pack,
                problem=problem,
                metric=metric,
                k=k,
                max_feedback=max_feedback,
                baseline=base[2] if base is not None else None,
                candidate=cand[2] if cand is not None else None,
                verdict=verdict,
            )
        )
    return RunDiff(
        baseline_id=baseline_id,
        candidate_id=candidate_id,
        tolerance=float(tolerance),
        entries=entries,
    )


def diff_runs(
    store: ResultsStore,
    baseline_run: str,
    candidate_run: str,
    *,
    tolerance: float = 0.0,
) -> RunDiff:
    """Diff two *stored* runs by id (the `repro jobs diff` backend)."""
    baseline = store.load_run(baseline_run)
    candidate = store.load_run(candidate_run)
    return diff_reports(
        baseline.reports,
        candidate.reports,
        tolerance=tolerance,
        baseline_id=baseline_run,
        candidate_id=candidate_run,
    )
