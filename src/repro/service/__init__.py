"""Evaluation-as-a-service: job queue, results database, regression diff.

The package turns the one-shot sweep CLI into a long-running backend:

:mod:`repro.service.spec`
    :class:`JobSpec` -- the JSON-serialisable, content-fingerprinted
    description of one sweep/evaluate job.
:mod:`repro.service.queue`
    :class:`JobQueue` -- a prioritised, cancellable job queue with bounded
    worker concurrency and per-job crash containment.
:mod:`repro.service.store`
    :class:`ResultsStore` -- the SQLite results database (schema-versioned,
    migration-ready, lockfile-coordinated) persisting every
    :class:`~repro.evalkit.outcome.EvalReport`, pass@k trajectory, engine
    stats snapshot and job record.
:mod:`repro.service.diff` / :mod:`repro.service.report`
    Pass@k regression diffing between stored runs and the CI-style
    markdown/JSON regression report.
:mod:`repro.service.service`
    :class:`EvalService` -- queue + store + one shared
    :class:`~repro.engine.engine.ExecutionEngine`, so cache tiers stay warm
    across jobs.
:mod:`repro.service.daemon` / :mod:`repro.service.client` / :mod:`repro.service.cli`
    The line-delimited-JSON daemon, its client, and the
    ``python -m repro.service serve`` / ``... jobs`` front door.
"""

from .diff import DiffEntry, RunDiff, diff_reports, diff_runs
from .queue import JobCancelled, JobQueue, JobRecord, JobState, QueueFullError
from .report import json_report, markdown_report
from .service import EvalService
from .spec import JobSpec
from .store import SCHEMA_VERSION, ResultsStore, StoredRun

__all__ = [
    "DiffEntry",
    "EvalService",
    "JobCancelled",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "QueueFullError",
    "ResultsStore",
    "RunDiff",
    "SCHEMA_VERSION",
    "StoredRun",
    "diff_reports",
    "diff_runs",
    "json_report",
    "markdown_report",
]
