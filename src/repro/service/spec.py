"""Job specifications accepted by the evaluation service.

A :class:`JobSpec` is the wire format of one unit of service work: a sweep
(or single-model evaluation) over one problem pack under one parameter set.
Specs are plain-data and JSON-round-trippable -- they cross the daemon's
line-delimited-JSON protocol and are rebuilt worker-side -- and carry a
stable content :meth:`~JobSpec.fingerprint` so the results store can
deduplicate identical re-submissions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from ..bench.packs import CORE_PACK_NAME, get_pack
from ..engine.engine import EXECUTION_MODES
from ..engine.fingerprint import stable_hash
from ..harness.runner import SweepConfig
from ..llm.profiles import get_profile, profile_names

__all__ = ["JOB_KINDS", "JobSpec"]

#: Recognised job kinds: ``"sweep"`` evaluates every requested model under
#: every requested restriction setting; ``"evaluate"`` is the single-model,
#: single-restriction special case (exactly one of each is enforced).
JOB_KINDS: Tuple[str, ...] = ("sweep", "evaluate")

#: Spec fields that can never change reported numbers (retry budgets and
#: watchdog timeouts).  They ride along on the wire but are excluded from
#: the fingerprint, so re-submitting a job with different robustness knobs
#: still deduplicates against its stored run -- and fingerprints computed
#: before these fields existed remain valid.
_NON_SEMANTIC_FIELDS: Tuple[str, ...] = ("retry_attempts", "retry_backoff", "unit_timeout")


@dataclass(frozen=True)
class JobSpec:
    """One sweep/evaluate request, as submitted to the service.

    ``models`` names the simulated designer profiles to run (default: all
    five paper profiles) and ``restrictions`` the prompt configurations
    (default: both the with- and without-restrictions settings).  The
    remaining fields mirror :class:`~repro.harness.runner.SweepConfig`;
    ``cache_dir`` is deliberately absent -- cache placement belongs to the
    service, not the job, so it can never perturb the fingerprint.
    """

    kind: str = "sweep"
    models: Tuple[str, ...] = field(default_factory=profile_names)
    restrictions: Tuple[bool, ...] = (False, True)
    samples_per_problem: int = 5
    max_feedback_iterations: int = 3
    num_wavelengths: int = 41
    base_seed: int = 0
    problems: Optional[Tuple[str, ...]] = None
    pack: str = CORE_PACK_NAME
    pack_params: Optional[Dict[str, object]] = None
    solver_backend: str = "auto"
    batch_size: int = 1
    execution_mode: str = "thread"
    processes: int = 0
    retry_attempts: int = 2
    retry_backoff: float = 0.1
    unit_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; choose one of {list(JOB_KINDS)}")
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution_mode {self.execution_mode!r}; "
                f"choose one of {list(EXECUTION_MODES)}"
            )
        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(self, "restrictions", tuple(bool(r) for r in self.restrictions))
        if self.problems is not None:
            object.__setattr__(self, "problems", tuple(self.problems))
        if not self.models:
            raise ValueError("a job must request at least one model")
        if not self.restrictions:
            raise ValueError("a job must request at least one restriction setting")
        if self.kind == "evaluate" and (len(self.models) != 1 or len(self.restrictions) != 1):
            raise ValueError(
                "an 'evaluate' job runs exactly one model under one restriction "
                f"setting; got {len(self.models)} models x {len(self.restrictions)} settings"
            )
        if self.samples_per_problem < 1:
            raise ValueError("samples_per_problem must be >= 1")
        if self.num_wavelengths < 1:
            raise ValueError("num_wavelengths must be >= 1")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")

    def validate(self) -> None:
        """Resolve every referenced entity, raising on unknown names.

        Submission-time validation: unknown model profiles or packs fail the
        submit call with a clear error instead of failing the job later in a
        worker.
        """
        for model in self.models:
            get_profile(model)
        get_pack(self.pack)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-container form (tuples become lists; JSON-ready)."""
        payload = asdict(self)
        payload["models"] = list(self.models)
        payload["restrictions"] = list(self.restrictions)
        payload["problems"] = list(self.problems) if self.problems is not None else None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output (or protocol JSON)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - explicit set
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        data = dict(payload)
        for key in ("models", "restrictions", "problems"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])  # type: ignore[arg-type]
        return cls(**data)  # type: ignore[arg-type]

    def canonical_json(self) -> str:
        """Sorted-key, compact JSON form -- the fingerprint payload."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """Stable content address of the spec.

        Two submissions describing the same evaluation -- regardless of who
        submitted them or when -- share a fingerprint, which is what lets
        the store deduplicate identical re-submissions.  Robustness knobs
        (:data:`_NON_SEMANTIC_FIELDS`) are excluded: they never change the
        numbers a job reports.
        """
        payload = self.to_dict()
        for name in _NON_SEMANTIC_FIELDS:
            payload.pop(name, None)
        return stable_hash(
            "jobspec", json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def sweep_config(
        self,
        *,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        journal_dir: Optional[str] = None,
        resume: bool = False,
    ) -> SweepConfig:
        """The :class:`SweepConfig` this job runs under.

        ``cache_dir``, ``workers``, ``journal_dir`` and ``resume`` are
        service-owned placement/parallelism/checkpointing knobs layered on
        top of the spec (they never affect results, so they are not part of
        the spec or its fingerprint).
        """
        return SweepConfig(
            samples_per_problem=self.samples_per_problem,
            max_feedback_iterations=self.max_feedback_iterations,
            num_wavelengths=self.num_wavelengths,
            base_seed=self.base_seed,
            problems=self.problems,
            workers=workers,
            cache_dir=cache_dir,
            pack=self.pack,
            pack_params=self.pack_params,
            solver_backend=self.solver_backend,
            batch_size=self.batch_size,
            execution_mode=self.execution_mode,
            processes=self.processes,
            retry_attempts=self.retry_attempts,
            retry_backoff=self.retry_backoff,
            unit_timeout=self.unit_timeout,
            journal_dir=journal_dir,
            resume=resume,
        )
