"""The service daemon: a line-delimited-JSON protocol over a local socket.

One request per line, one JSON response per line; a connection may pipeline
any number of requests.  Every response carries ``"ok"``; errors come back
as ``{"ok": false, "error": "..."}`` and never kill the connection (a
malformed line is answered and the handler keeps reading).

Operations
----------
``ping``                     liveness probe (returns the protocol version).
``submit``                   ``{spec, priority?, dedupe?, idempotency_key?}``
                             -> ``{job_id}``; a full queue answers a
                             structured ``queue_full`` error with the
                             current depth and bound.
``status``                   ``{job_id}`` -> the job record snapshot.
``health``                   queue depth, worker liveness, store
                             writability, recovery summary.
``ready``                    ``{ready}`` + the health snapshot (readiness
                             gate for orchestration).
``cancel``                   ``{job_id}`` -> ``{cancelled}``.
``jobs``                     every job record, submission order.
``result``                   ``{job_id}`` -> the job's stored run (reports inline).
``runs``                     ``{spec_fingerprint?}`` -> stored run summaries.
``diff``                     ``{baseline, candidate, tolerance?}`` -> JSON report
                             (+ rendered markdown).
``stats``                    service/engine/store counters.
``shutdown``                 stop the daemon after responding.

The daemon binds ``127.0.0.1`` (an ephemeral port by default) -- it is a
*local* service front door, not an internet-facing server.  Two per-
connection guards keep one misbehaving client from tying the daemon up: a
connection silent for longer than ``idle_timeout`` seconds is answered with
a structured ``idle timeout`` error and closed, and a request line longer
than ``max_request_bytes`` is answered with a structured ``request too
large`` error (the oversized line is drained, bounded, and the connection
keeps serving).
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Dict, Optional, Tuple

from ..faults import fault_point
from .queue import JobState, QueueFullError
from .report import json_report, markdown_report
from .service import EvalService
from .spec import JobSpec

__all__ = ["PROTOCOL_VERSION", "ServiceDaemon"]

#: Version tag answered by ``ping`` (bump on incompatible protocol changes).
PROTOCOL_VERSION = 1

#: Default seconds a connection may sit idle between requests.
DEFAULT_IDLE_TIMEOUT = 300.0

#: Default cap on one request line (10 MB -- far above any legitimate spec).
DEFAULT_MAX_REQUEST_BYTES = 10_000_000


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, answer JSON lines."""

    def _respond(self, response: Dict[str, object]) -> None:
        self.wfile.write((json.dumps(response, default=repr) + "\n").encode("utf-8"))
        self.wfile.flush()

    def _read_line(self, limit: int) -> Optional[bytes]:
        """One request line of at most ``limit`` bytes, or ``None`` at EOF.

        A longer line raises ``ValueError`` after draining the remainder
        (still bounded by the limit per read) up to its terminating newline,
        so the connection can keep serving subsequent requests.
        """
        raw = self.rfile.readline(limit + 1)
        if not raw:
            return None
        if len(raw) <= limit or raw.endswith(b"\n"):
            if len(raw) > limit:
                raise ValueError(f"request exceeds {limit} bytes")
            return raw
        # Oversized line: drain to its end, then report.
        while True:
            chunk = self.rfile.readline(limit + 1)
            if not chunk or chunk.endswith(b"\n"):
                break
        raise ValueError(f"request exceeds {limit} bytes")

    def handle(self) -> None:  # noqa: D102 - socketserver plumbing
        daemon: "ServiceDaemon" = self.server.daemon  # type: ignore[attr-defined]
        if daemon.idle_timeout is not None:
            self.connection.settimeout(daemon.idle_timeout)
        while True:
            try:
                raw = self._read_line(daemon.max_request_bytes)
            except socket.timeout:
                # Structured farewell instead of a silently dropped socket.
                try:
                    self._respond(
                        {
                            "ok": False,
                            "error": (
                                "idle timeout: no request within "
                                f"{daemon.idle_timeout:g}s; closing connection"
                            ),
                        }
                    )
                except OSError:
                    pass
                return
            except ValueError as error:
                try:
                    self._respond({"ok": False, "error": str(error)})
                except OSError:
                    return
                continue
            if raw is None:
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("a request must be a JSON object")
                response = daemon.dispatch(request)
            except Exception as error:  # noqa: BLE001 - protocol error surface
                response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            stopping = bool(response.pop("_shutdown", False))
            try:
                self._respond(response)
            except OSError:
                return  # client went away mid-response
            if stopping:
                daemon.stop_async()
                return


class _Server(socketserver.ThreadingTCPServer):
    """Threading TCP server with fast restart and daemonic handlers."""

    allow_reuse_address = True
    daemon_threads = True


class ServiceDaemon:
    """Serve an :class:`EvalService` over the line-JSON protocol.

    ``start()`` binds and serves in a background thread and returns the
    bound ``(host, port)``; ``stop()`` shuts the socket down.  The daemon
    does not own the service's lifecycle -- callers close the service after
    stopping the daemon (the CLI and tests use both as context managers).
    """

    def __init__(
        self,
        service: EvalService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        self.service = service
        self.idle_timeout = float(idle_timeout) if idle_timeout else None
        self.max_request_bytes = int(max_request_bytes)
        if self.max_request_bytes < 1:
            raise ValueError("max_request_bytes must be >= 1")
        self._host = host
        self._port = port
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); raises until :meth:`start` has run."""
        if self._server is None:
            raise RuntimeError("the daemon is not running")
        return self._server.server_address[:2]  # type: ignore[return-value]

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a background thread; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("the daemon is already running")
        self._server = _Server((self._host, self._port), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-service-daemon", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._server = None
        self._thread = None

    def stop_async(self) -> None:
        """Stop from inside a handler thread (used by the ``shutdown`` op)."""
        threading.Thread(target=self.stop, daemon=True).start()

    def serve_forever(self) -> None:
        """Foreground serve (the CLI's ``serve`` loop): start, then block."""
        if self._server is None:
            self.start()
        assert self._thread is not None
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "ServiceDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Protocol dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one protocol request (exceptions become error responses)."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if not isinstance(op, str) or handler is None:
            raise ValueError(f"unknown op {op!r}")
        fault_point("daemon.request", key=op)
        return handler(request)

    def _op_ping(self, request: Dict[str, object]) -> Dict[str, object]:
        """Liveness + protocol version."""
        return {"ok": True, "protocol": PROTOCOL_VERSION}

    def _op_submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """Submit a job spec; returns its job id."""
        spec_payload = request.get("spec")
        if not isinstance(spec_payload, dict):
            raise ValueError("submit needs a 'spec' object")
        spec = JobSpec.from_dict(spec_payload)
        idempotency_key = request.get("idempotency_key")
        try:
            job_id = self.service.submit(
                spec,
                priority=int(request.get("priority", 0)),  # type: ignore[arg-type]
                dedupe=bool(request.get("dedupe", False)),
                idempotency_key=(
                    str(idempotency_key) if idempotency_key is not None else None
                ),
            )
        except QueueFullError as error:
            # Backpressure is an expected protocol outcome, not a crash:
            # reject with structured context so clients can shed or retry.
            return {
                "ok": False,
                "error": str(error),
                "error_code": "queue_full",
                "queue_depth": error.depth,
                "max_queued": error.max_queued,
            }
        return {"ok": True, "job_id": job_id, "spec_fingerprint": spec.fingerprint()}

    def _op_health(self, request: Dict[str, object]) -> Dict[str, object]:
        """Queue depth, worker liveness, store writability, recovery state."""
        return {"ok": True, "health": self.service.health()}

    def _op_ready(self, request: Dict[str, object]) -> Dict[str, object]:
        """Readiness verdict (accepting and able to run work right now)."""
        return {"ok": True, **self.service.ready()}

    def _op_status(self, request: Dict[str, object]) -> Dict[str, object]:
        """Snapshot one job record."""
        record = self.service.status(str(request["job_id"]))
        return {"ok": True, "job": record.to_dict()}

    def _op_cancel(self, request: Dict[str, object]) -> Dict[str, object]:
        """Request job cancellation."""
        cancelled = self.service.cancel(str(request["job_id"]))
        return {"ok": True, "cancelled": cancelled}

    def _op_jobs(self, request: Dict[str, object]) -> Dict[str, object]:
        """List every known job."""
        return {"ok": True, "jobs": [job.to_dict() for job in self.service.queue.jobs()]}

    def _op_result(self, request: Dict[str, object]) -> Dict[str, object]:
        """The stored run of a finished job (reports inline)."""
        record = self.service.status(str(request["job_id"]))
        if record.state is not JobState.DONE or record.run_id is None:
            raise ValueError(
                f"job {record.job_id} has no result (state: {record.state.value})"
            )
        run = self.service.store.load_run(record.run_id)
        return {
            "ok": True,
            "run_id": run.run_id,
            "spec": run.spec.to_dict(),
            "engine_stats": run.engine_stats,
            "reports": {
                f"{model}|{'with' if restrictions else 'without'}_restrictions": (
                    report.to_dict()
                )
                for (model, restrictions), report in run.reports.items()
            },
        }

    def _op_runs(self, request: Dict[str, object]) -> Dict[str, object]:
        """Stored run summaries (optionally filtered by spec fingerprint)."""
        fingerprint = request.get("spec_fingerprint")
        runs = self.service.store.find_runs(
            str(fingerprint) if fingerprint is not None else None
        )
        return {"ok": True, "runs": runs}

    def _op_diff(self, request: Dict[str, object]) -> Dict[str, object]:
        """Regression-diff two stored runs."""
        diff = self.service.diff(
            str(request["baseline"]),
            str(request["candidate"]),
            tolerance=float(request.get("tolerance", 0.0)),  # type: ignore[arg-type]
        )
        return {
            "ok": True,
            "report": json_report(diff),
            "markdown": markdown_report(diff),
        }

    def _op_stats(self, request: Dict[str, object]) -> Dict[str, object]:
        """Service/engine/store counters."""
        return {"ok": True, "stats": self.service.stats()}

    def _op_shutdown(self, request: Dict[str, object]) -> Dict[str, object]:
        """Stop the daemon (after this response is written)."""
        return {"ok": True, "stopping": True, "_shutdown": True}


def connect(host: str, port: int, timeout: float = 30.0) -> socket.socket:
    """Open one client connection to a running daemon."""
    return socket.create_connection((host, port), timeout=timeout)
