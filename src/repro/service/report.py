"""CI-style regression reports over a :class:`~repro.service.diff.RunDiff`.

Two renderers share one diff:

* :func:`markdown_report` -- the human/CI page: a verdict headline, a
  verdict histogram, and a table of every changed entry (regressions
  first).  The output is fully deterministic -- entries are sorted, values
  are fixed-precision, and no timestamps appear -- so golden-file tests can
  compare it byte for byte.
* :func:`json_report` -- the machine form consumed by the protocol's
  ``diff`` op and the ``jobs diff --format json`` CLI.
"""

from __future__ import annotations

from typing import Dict, List

from .diff import DiffEntry, RunDiff

__all__ = ["json_report", "markdown_report"]

#: Verdict -> table badge.
_BADGES = {
    "regressed": "❌ regressed",
    "improved": "✅ improved",
    "added": "➕ added",
    "removed": "➖ removed",
    "unchanged": "· unchanged",
}


def _fmt(value: object) -> str:
    """Fixed-precision cell text ('-' for one-sided entries)."""
    if value is None:
        return "-"
    return f"{float(value):.2f}"  # type: ignore[arg-type]


def _entry_rank(entry: DiffEntry) -> tuple:
    """Sort changed entries: regressions first, then by key."""
    order = {"regressed": 0, "removed": 1, "added": 2, "improved": 3, "unchanged": 4}
    return (order[entry.verdict], entry.key)


def _row(entry: DiffEntry) -> str:
    """One markdown table row."""
    scope = entry.problem if entry.problem is not None else f"(pack: {entry.pack})"
    return (
        f"| {entry.model} | {'with' if entry.with_restrictions else 'without'} "
        f"| {scope} | {entry.metric}@{entry.k} (EF{entry.max_feedback}) "
        f"| {_fmt(entry.baseline)} | {_fmt(entry.candidate)} | {_fmt(entry.delta)} "
        f"| {_BADGES[entry.verdict]} |"
    )


def markdown_report(diff: RunDiff, *, max_rows: int = 200) -> str:
    """Render the diff as a deterministic CI markdown page.

    ``max_rows`` bounds the changed-entry table (the summary always reports
    the full counts, so truncation is visible, never silent).
    """
    counts = diff.verdict_counts()
    if diff.is_regression:
        headline = f"❌ REGRESSION: {counts['regressed']} pass@k value(s) dropped"
    elif diff.is_empty:
        headline = "✅ No differences: the runs are identical within tolerance"
    else:
        headline = "✅ No regressions"
    lines: List[str] = [
        "# Pass@k regression report",
        "",
        f"- baseline: `{diff.baseline_id}`",
        f"- candidate: `{diff.candidate_id}`",
        f"- tolerance: {diff.tolerance:.4f} percentage points",
        "",
        f"**{headline}**",
        "",
        "| verdict | entries |",
        "|---|---:|",
        *[f"| {_BADGES[v]} | {counts[v]} |" for v in counts],
        "",
    ]
    changed = sorted(diff.changed, key=_entry_rank)
    if changed:
        lines += [
            "## Changed entries",
            "",
            "| model | restrictions | problem | metric | baseline | candidate | delta | verdict |",
            "|---|---|---|---|---:|---:|---:|---|",
            *[_row(entry) for entry in changed[:max_rows]],
        ]
        if len(changed) > max_rows:
            lines.append("")
            lines.append(
                f"... {len(changed) - max_rows} further changed entries omitted "
                f"({len(changed)} total)."
            )
    else:
        lines.append("No changed entries.")
    lines.append("")
    return "\n".join(lines)


def json_report(diff: RunDiff) -> Dict[str, object]:
    """The machine-readable regression report (JSON-ready containers)."""
    return {
        "baseline": diff.baseline_id,
        "candidate": diff.candidate_id,
        "tolerance": diff.tolerance,
        "is_regression": diff.is_regression,
        "is_empty": diff.is_empty,
        "verdict_counts": diff.verdict_counts(),
        "changed": [entry.to_dict() for entry in sorted(diff.changed, key=_entry_rank)],
    }
