"""The evaluation service: job queue + results store + one shared engine.

:class:`EvalService` is the in-process backend both the daemon and the
tests drive.  It fixes the CLI's one-shot assumption: a single
:class:`~repro.engine.engine.ExecutionEngine` (one compiled-plan cache, one
simulation cache, one golden store per pack) outlives every job, so the
second job on a structurally similar spec starts *warm* -- plan-cache and
simulation-cache hits instead of cold recompiles.  Per-job engine-stats
deltas (:func:`~repro.engine.engine.stats_delta`) make that observable and
are persisted with each run.

Thread-mode jobs run through :func:`~repro.harness.runner.run_model` on the
shared engine; process-mode specs dispatch through the PR 6
:class:`~repro.engine.procpool.ProcessScheduler` path (workers share the
service's ``cache_dir`` disk tiers instead of its in-memory engine).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..bench.golden import GoldenStore
from ..engine.engine import EngineConfig, ExecutionEngine, stats_delta
from ..faults import fault_point, fault_stats
from ..evalkit.outcome import EvalReport
from ..harness.runner import run_model
from ..llm.profiles import get_profile
from ..llm.simulated import SimulatedDesigner
from .diff import RunDiff, diff_runs
from .queue import JobQueue, JobRecord, JobState, QueueFullError
from .spec import JobSpec
from .store import ResultsStore

__all__ = ["EvalService"]


class EvalService:
    """Long-running evaluation backend (queue + store + warm shared engine).

    Parameters
    ----------
    db_path:
        The SQLite results database (created on first open).
    cache_dir:
        Optional on-disk cache directory shared by every job -- thread-mode
        jobs persist ``.npz``/plan artefacts there, and process-mode jobs'
        workers warm each other through it.
    job_workers:
        Worker threads of the job queue = maximum concurrently RUNNING jobs.
    engine_workers:
        Thread-pool width of the shared engine (parallelism *within* one
        thread-mode job).
    journal_dir:
        Where per-job sweep journals live (default: ``<cache_dir>/journals``
        when ``cache_dir`` is set, else off).  With a journal directory the
        service checkpoints every completed trajectory and *always* resumes:
        a job resubmitted after a crash -- same spec, any execution mode --
        recomputes only the samples its journal is missing.
    max_queued:
        Backpressure bound on QUEUED jobs; a submit beyond it raises
        :class:`~repro.service.queue.QueueFullError` (the daemon answers a
        structured ``queue_full`` error).  ``None`` = unbounded.
    recover:
        When true, non-terminal jobs persisted by a previous (crashed)
        process are re-adopted on startup: still-``queued`` rows re-enter
        the run queue and ``running``-at-crash rows re-run from scratch
        through their sweep journals, so already-checkpointed trajectories
        are not recomputed and the stored reports come out byte-identical.
    """

    def __init__(
        self,
        db_path: Path | str,
        *,
        cache_dir: Optional[Path | str] = None,
        job_workers: int = 2,
        engine_workers: int = 1,
        journal_dir: Optional[Path | str] = None,
        max_queued: Optional[int] = None,
        recover: bool = False,
    ) -> None:
        self.store = ResultsStore(db_path)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        if journal_dir is not None:
            self.journal_dir: Optional[str] = str(journal_dir)
        elif self.cache_dir is not None:
            self.journal_dir = str(Path(self.cache_dir) / "journals")
        else:
            self.journal_dir = None
        self.engine = ExecutionEngine(
            EngineConfig(workers=engine_workers, cache_dir=self.cache_dir)
        )
        self._golden_stores: Dict[Tuple[str, str, int], GoldenStore] = {}
        self._golden_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Idempotent re-submission: client-supplied key -> accepted job id.
        # In-memory on purpose -- it protects against the *client's own
        # transport retries* of one logical submit, not cross-restart
        # duplicates (those dedupe at the store level via `dedupe=True`).
        self._idempotency_lock = threading.Lock()
        self._idempotency: Dict[str, str] = {}
        self.queue = JobQueue(
            self._execute,
            workers=job_workers,
            on_update=self._persist_job,
            max_queued=max_queued,
        )
        self.started_at = time.time()
        self._recovery: Dict[str, object] = {"enabled": bool(recover), "recovered": 0}
        if recover:
            self.recover()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        *,
        priority: int = 0,
        dedupe: bool = False,
        idempotency_key: Optional[str] = None,
    ) -> str:
        """Accept one job durably; returns its id.

        The accepted spec is journaled through the results store *before*
        this method returns (journal-before-acknowledge): a daemon crash
        after a successful submit can never silently drop the job --
        ``recover`` finds the persisted row and re-queues it.

        With ``dedupe=True`` a spec whose fingerprint already has a stored
        run short-circuits: the job is recorded DONE immediately, pointing
        at the existing run, and no evaluation work happens.

        ``idempotency_key`` makes re-submission safe: a second submit
        carrying a key already accepted by this process returns the original
        job id instead of creating a duplicate job (the client's transport
        retries use a per-call key, so one logical submit runs exactly once
        no matter how often its socket write is retried).
        """
        spec.validate()
        if idempotency_key is not None:
            with self._idempotency_lock:
                existing_id = self._idempotency.get(idempotency_key)
            if existing_id is not None:
                return existing_id
        if dedupe:
            existing = self.store.latest_run(spec.fingerprint())
            if existing is not None:
                record = JobRecord(job_id=f"job-dedup-{existing[:12]}", spec=spec)
                record.state = JobState.DONE
                record.started_at = record.finished_at = time.time()
                record.run_id = existing
                record.deduplicated = True
                self.queue.adopt(record)
                self._persist_job(record)
                self._remember_idempotent(idempotency_key, record.job_id)
                return record.job_id
        record = self.queue.prepare(spec, priority=priority)
        # Journal before acknowledging: unlike the queue's on_update hook
        # (which swallows persistence errors to protect workers), this write
        # is synchronous and raise-capable -- an unjournalable job is
        # rejected, never half-accepted.
        fault_point("service.journal", key=record.job_id)
        self.store.record_job(record.to_dict())
        try:
            self.queue.enqueue(record)
        except QueueFullError:
            # The row was journaled before the bound check; mark it terminal
            # so a later --recover does not resurrect a rejected job.
            record.state = JobState.CANCELLED
            record.error = "rejected: queue full"
            record.finished_at = time.time()
            self._persist_job(record)
            raise
        self._remember_idempotent(idempotency_key, record.job_id)
        return record.job_id

    def _remember_idempotent(self, key: Optional[str], job_id: str) -> None:
        if key is None:
            return
        with self._idempotency_lock:
            self._idempotency[key] = job_id

    def recover(self) -> Dict[str, object]:
        """Re-adopt every non-terminal job the previous process left behind.

        ``queued`` rows re-enter the run queue; ``running``-at-crash rows
        are re-queued and re-run -- their sweep journals (always on when the
        service has a journal directory) make the re-run cheap and the
        stored reports byte-identical, and the store's content-addressed
        ``save_run`` dedups the recomputed run onto the original run id.
        Returns the recovery summary also served by :meth:`health`.
        """
        requeued = []
        for row in self.store.pending_jobs():
            spec = JobSpec.from_dict(dict(row["spec"]))  # type: ignore[arg-type]
            record = JobRecord(
                job_id=str(row["job_id"]),
                spec=spec,
                priority=int(row["priority"]),  # type: ignore[arg-type]
                state=JobState(str(row["state"])),
                submitted_at=float(row["submitted_at"]),  # type: ignore[arg-type]
            )
            self.queue.adopt(record, requeue=True)
            requeued.append(record.job_id)
        self._recovery = {
            "enabled": True,
            "recovered": len(requeued),
            "requeued_jobs": requeued,
            "at": time.time(),
        }
        return dict(self._recovery)

    def health(self) -> Dict[str, object]:
        """Liveness/utilisation snapshot (the daemon's ``health`` op)."""
        liveness = self.queue.worker_liveness()
        return {
            "uptime": time.time() - self.started_at,
            "queue_depth": self.queue.depth(),
            "max_queued": self.queue.max_queued,
            "workers": liveness,
            "store_writable": self.store.check_writable(),
            "recovery": dict(self._recovery),
        }

    def ready(self) -> Dict[str, object]:
        """Readiness verdict: can this service accept and run work right now?"""
        health = self.health()
        workers = health["workers"]
        ready = bool(
            workers["alive"] > 0 and health["store_writable"]  # type: ignore[index]
        )
        if self.queue.max_queued is not None:
            ready = ready and health["queue_depth"] < self.queue.max_queued  # type: ignore[operator]
        return {"ready": ready, **health}

    def status(self, job_id: str) -> JobRecord:
        """Live job record (falls back to the store for persisted-only jobs).

        The fallback is what makes polling survive a restart: a job that
        finished before a crash is not re-adopted by ``recover`` (it is
        terminal), but its store row still answers ``status`` -- so a
        client that submitted before the crash and polled across the
        restart sees DONE, not "unknown job".
        """
        try:
            return self.queue.get(job_id)
        except KeyError:
            row = self.store.load_job(job_id)  # KeyError when truly unknown
            record = JobRecord(
                job_id=str(row["job_id"]),
                spec=JobSpec.from_dict(dict(row["spec"])),  # type: ignore[arg-type]
                priority=int(row["priority"]),  # type: ignore[arg-type]
                state=JobState(str(row["state"])),
                submitted_at=float(row["submitted_at"]),  # type: ignore[arg-type]
                started_at=row["started_at"],  # type: ignore[arg-type]
                finished_at=row["finished_at"],  # type: ignore[arg-type]
                error=row["error"],  # type: ignore[arg-type]
                run_id=row["run_id"],  # type: ignore[arg-type]
            )
            if record.state.terminal:
                record.done_event.set()
            return record

    def cancel(self, job_id: str) -> bool:
        """Request cancellation (see :meth:`JobQueue.cancel`)."""
        return self.queue.cancel(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until the job is terminal (or timeout)."""
        return self.queue.wait(job_id, timeout)

    def diff(self, baseline_run: str, candidate_run: str, *, tolerance: float = 0.0) -> RunDiff:
        """Regression-diff two stored runs."""
        return diff_runs(self.store, baseline_run, candidate_run, tolerance=tolerance)

    def stats(self) -> Dict[str, object]:
        """Service-level snapshot: engine counters, queue sizes, store rows."""
        jobs = self.queue.jobs()
        return {
            "uptime": time.time() - self.started_at,
            "jobs": {
                state.value: sum(1 for j in jobs if j.state is state)
                for state in JobState
            },
            "engine": self.engine.stats(),
            "store": self.store.counts(),
            "store_write_retries": self.store.write_retries,
            "faults": fault_stats(),
        }

    def close(self, *, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Drain the queue and stop accepting work."""
        self.queue.shutdown(wait=wait, timeout=timeout)

    def __enter__(self) -> "EvalService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(timeout=60.0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _golden_store(self, spec: JobSpec) -> GoldenStore:
        """One golden store per (pack, params, grid), on the shared engine.

        Sharing the store across jobs keeps golden responses warm: job 2 of
        a pack never re-simulates the pack's reference designs.
        """
        key = (
            spec.pack,
            repr(sorted((spec.pack_params or {}).items())),
            spec.num_wavelengths,
        )
        with self._golden_lock:
            store = self._golden_stores.get(key)
            if store is None:
                store = GoldenStore(
                    num_wavelengths=spec.num_wavelengths,
                    engine=self.engine,
                    pack=spec.pack,
                    pack_params=spec.pack_params,
                )
                self._golden_stores[key] = store
            return store

    def _execute(self, job: JobRecord) -> Dict[Tuple[str, bool], EvalReport]:
        """Run one job: per-(model, restrictions) reports, persisted as a run.

        Cancellation checkpoints sit between (restriction, model) pairs --
        a cancel request lands at the next pair boundary.  Everything runs
        on the shared engine (thread mode) or the shared disk caches
        (process mode), and the per-job engine-stats delta is recorded on
        the job and with the stored run.
        """
        spec = job.spec
        config = spec.sweep_config(
            cache_dir=self.cache_dir,
            workers=self.engine.config.workers,
            journal_dir=self.journal_dir,
            # Journals are keyed by the sweep's semantic fingerprint, so
            # resuming is always safe: a fresh spec simply finds no journal.
            resume=self.journal_dir is not None,
        )
        with self._stats_lock:
            stats_before = self.engine.stats()
        clients = {
            model: SimulatedDesigner(get_profile(model), base_seed=spec.base_seed)
            for model in spec.models
        }
        reports: Dict[Tuple[str, bool], EvalReport] = {}
        use_shared_engine = spec.execution_mode == "thread"
        golden_store = self._golden_store(spec) if use_shared_engine else None
        for include_restrictions in spec.restrictions:
            for model in spec.models:
                job.checkpoint()
                reports[(model, include_restrictions)] = run_model(
                    clients[model],
                    include_restrictions=include_restrictions,
                    config=config,
                    engine=self.engine if use_shared_engine else None,
                    golden_store=golden_store,
                )
        with self._stats_lock:
            job.engine_stats = stats_delta(stats_before, self.engine.stats())
        run_id, _created = self.store.save_run(
            spec, reports, engine_stats=job.engine_stats
        )
        job.run_id = run_id
        return reports

    def _persist_job(self, job: JobRecord) -> None:
        """Queue hook: mirror every job state transition into the store."""
        self.store.record_job(job.to_dict())
