"""The SQLite results database of the evaluation service.

Every finished job lands here as a **run**: the job's spec, every
:class:`~repro.evalkit.outcome.EvalReport` it produced (stored as canonical
sorted-key JSON, so storage round trips are byte-identical), the pass@k
trajectory rows derived from those reports (per pack *and* per problem, over
the paper's k / feedback columns), and the engine stats snapshot of the job.

Runs are keyed by **content fingerprint** -- a hash of the spec fingerprint
plus every canonical report document -- so re-submitting an identical spec
(which, by determinism, produces identical reports) maps to the *same* run
row: identical re-submissions dedupe at the storage layer while every job
still records its own metadata in the ``jobs`` table.

The schema is versioned (``meta.schema_version``) with a forward-migration
hook: opening a database written by an older schema applies each migration
in sequence inside one transaction.  SQLite is the first backend; the SQL
sticks to the portable subset (TEXT/INTEGER/REAL columns, standard DML) so
the same statements -- and the same migration ladder -- can target Postgres
later.  Cross-process writers are serialised with the
:class:`~repro._locks.FileLock` lockfile next to the database file (on top
of SQLite's own busy handler), mirroring how the ``.npz`` cache coordinates
sweep workers.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .._locks import FileLock
from ..engine.fingerprint import stable_hash
from ..faults import RetryPolicy, fault_point, retry_call
from ..evalkit.outcome import EvalReport
from ..harness.runner import FEEDBACK_COLUMNS, PASS_AT
from .spec import JobSpec

__all__ = ["SCHEMA_VERSION", "ResultsStore", "StoredRun", "trajectory_rows"]

#: Current schema version (see the migration ladder in ``_MIGRATIONS``).
SCHEMA_VERSION = 2

#: Metrics the pass@k trajectory rows cover.
TRAJECTORY_METRICS: Tuple[str, ...] = ("syntax", "functional")

#: Sentinel `problem` value of a pack-aggregate trajectory row.
PACK_AGGREGATE = ""

#: Version-1 schema, kept verbatim: migration tests build legacy databases
#: from these statements, and the v1->v2 migration upgrades them in place.
_SCHEMA_V1: Tuple[str, ...] = (
    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    """
    CREATE TABLE runs (
        run_id TEXT PRIMARY KEY,
        spec_fingerprint TEXT NOT NULL,
        spec_json TEXT NOT NULL,
        created_at REAL NOT NULL,
        engine_stats_json TEXT
    )
    """,
    "CREATE INDEX idx_runs_spec ON runs(spec_fingerprint)",
    """
    CREATE TABLE reports (
        run_id TEXT NOT NULL,
        model TEXT NOT NULL,
        with_restrictions INTEGER NOT NULL,
        pack TEXT NOT NULL,
        report_json TEXT NOT NULL,
        PRIMARY KEY (run_id, model, with_restrictions)
    )
    """,
    """
    CREATE TABLE jobs (
        job_id TEXT PRIMARY KEY,
        spec_fingerprint TEXT NOT NULL,
        spec_json TEXT NOT NULL,
        priority INTEGER NOT NULL,
        state TEXT NOT NULL,
        submitted_at REAL,
        started_at REAL,
        finished_at REAL,
        error TEXT,
        run_id TEXT
    )
    """,
)

#: v2 adds the queryable pass@k trajectory table (one row per run, model,
#: restriction setting, pack, problem, metric, k and feedback budget; the
#: empty-string problem row is the pack aggregate).
_SCHEMA_V2_TRAJECTORIES = """
    CREATE TABLE trajectories (
        run_id TEXT NOT NULL,
        model TEXT NOT NULL,
        with_restrictions INTEGER NOT NULL,
        pack TEXT NOT NULL,
        problem TEXT NOT NULL,
        metric TEXT NOT NULL,
        k INTEGER NOT NULL,
        max_feedback INTEGER NOT NULL,
        value REAL NOT NULL,
        PRIMARY KEY (
            run_id, model, with_restrictions, pack,
            problem, metric, k, max_feedback
        )
    )
"""


def canonical_report_json(report: EvalReport) -> str:
    """The canonical stored form of a report: sorted keys, compact separators.

    Canonicalisation is what makes the store's round trip *byte*-identical:
    ``load -> to_dict -> canonical json`` reproduces the stored document
    exactly, and content fingerprints are stable across processes.
    """
    return json.dumps(report.to_dict(), sort_keys=True, separators=(",", ":"))


def run_fingerprint(spec: JobSpec, reports: Dict[Tuple[str, bool], EvalReport]) -> str:
    """Content address of one run: spec fingerprint + every report document."""
    docs = [
        f"{model}|{int(with_restrictions)}|{canonical_report_json(report)}"
        for (model, with_restrictions), report in sorted(
            reports.items(), key=lambda item: (item[0][0], item[0][1])
        )
    ]
    return stable_hash("run", spec.fingerprint(), *docs)


def trajectory_rows(
    run_id: str, model: str, with_restrictions: bool, report: EvalReport
) -> Iterator[Tuple[str, str, int, str, str, str, int, int, float]]:
    """Yield the trajectory table rows of one stored report.

    Per-problem rows use :meth:`EvalReport.problem_pass_at_k`; the
    ``PACK_AGGREGATE`` row is the report-level mean (exactly the paper's
    table entries), over every (metric, k, feedback-budget) combination.
    """
    for metric in TRAJECTORY_METRICS:
        for k in PASS_AT:
            for max_feedback in FEEDBACK_COLUMNS:
                yield (
                    run_id, model, int(with_restrictions), report.pack, PACK_AGGREGATE,
                    metric, k, max_feedback,
                    report.pass_at_k(k, metric=metric, max_feedback=max_feedback),
                )
                for problem in report.results:
                    yield (
                        run_id, model, int(with_restrictions), report.pack, problem,
                        metric, k, max_feedback,
                        report.problem_pass_at_k(
                            problem, k, metric=metric, max_feedback=max_feedback
                        ),
                    )


@dataclass
class StoredRun:
    """One run row rehydrated from the database."""

    run_id: str
    spec: JobSpec
    created_at: float
    reports: Dict[Tuple[str, bool], EvalReport]
    engine_stats: Optional[Dict[str, object]]

    @property
    def spec_fingerprint(self) -> str:
        """Fingerprint of the run's spec (the dedup key for submissions)."""
        return self.spec.fingerprint()


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v1 -> v2: add the trajectory table and backfill it from stored reports."""
    conn.execute(_SCHEMA_V2_TRAJECTORIES)
    rows = conn.execute(
        "SELECT run_id, model, with_restrictions, report_json FROM reports"
    ).fetchall()
    for run_id, model, with_restrictions, report_json in rows:
        report = EvalReport.from_dict(json.loads(report_json))
        conn.executemany(
            "INSERT OR REPLACE INTO trajectories VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            trajectory_rows(run_id, model, bool(with_restrictions), report),
        )


#: Forward migrations: ``_MIGRATIONS[v]`` upgrades a version-``v`` database
#: to version ``v + 1``.  Opening a store applies them in sequence.
_MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {
    1: _migrate_v1_to_v2,
}


class ResultsStore:
    """Schema-versioned SQLite persistence for runs, reports and jobs.

    Thread- and process-safe by construction: every operation opens its own
    short-lived connection, and every write transaction is additionally
    serialised through a ``<db>.lock`` :class:`~repro._locks.FileLock` so
    concurrent service processes (or sweep workers) never interleave
    partially-written runs.
    """

    #: Transient write trouble worth retrying: I/O errors (including
    #: injected ``store.write`` faults) and SQLite's "database is locked" /
    #: busy conditions, which surface as OperationalError.
    _WRITE_RETRY = RetryPolicy(
        attempts=3,
        base_delay=0.05,
        max_delay=1.0,
        transient=(OSError, sqlite3.OperationalError),
    )

    def __init__(self, path: Path | str, *, lock_timeout: float = 30.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.path.with_name(self.path.name + ".lock")
        self._lock_timeout = float(lock_timeout)
        #: How many write transactions needed at least one retry attempt.
        self.write_retries = 0
        with self._write_lock(), closing(self._connect()) as conn:
            self._ensure_schema(conn)

    def _retried_write(self, label: str, write: Callable[[], None]) -> None:
        """Run one write transaction under the store's retry policy.

        ``write`` must be a self-contained transaction (lock + connection +
        commit inside), so a retried attempt starts from scratch and can
        never observe -- or leave behind -- a partial write.
        """

        def _count(_attempt: int, _error: BaseException) -> None:
            self.write_retries += 1

        retry_call(write, policy=self._WRITE_RETRY, seed=f"store.write:{label}", on_retry=_count)

    # ------------------------------------------------------------------
    # Connection / schema plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        """A fresh connection with a generous busy timeout."""
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA foreign_keys = ON")
        return conn

    def _write_lock(self) -> FileLock:
        """The cross-process writer lock (advisory, like the cache locks)."""
        return FileLock(self._lock_path, timeout=self._lock_timeout)

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        """Create a fresh schema or migrate an existing one forward."""
        with conn:
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if "meta" not in tables:
                for statement in _SCHEMA_V1:
                    conn.execute(statement)
                conn.execute(_SCHEMA_V2_TRAJECTORIES)
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                return
            version = self._read_version(conn)
            if version > SCHEMA_VERSION:
                raise RuntimeError(
                    f"results database {self.path} has schema version {version}, "
                    f"newer than this code's {SCHEMA_VERSION}; refusing to open"
                )
            while version < SCHEMA_VERSION:
                _MIGRATIONS[version](conn)
                version += 1
                conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(version),),
                )

    @staticmethod
    def _read_version(conn: sqlite3.Connection) -> int:
        """The database's recorded schema version."""
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            raise RuntimeError("results database has a meta table but no schema_version")
        return int(row[0])

    @property
    def schema_version(self) -> int:
        """Schema version of the on-disk database."""
        with closing(self._connect()) as conn:
            return self._read_version(conn)

    # ------------------------------------------------------------------
    # Runs and reports
    # ------------------------------------------------------------------
    def save_run(
        self,
        spec: JobSpec,
        reports: Dict[Tuple[str, bool], EvalReport],
        *,
        engine_stats: Optional[Dict[str, object]] = None,
        created_at: Optional[float] = None,
    ) -> Tuple[str, bool]:
        """Persist one run; returns ``(run_id, created)``.

        ``run_id`` is the content fingerprint of (spec, reports).  When a
        run with the same fingerprint already exists the call is a no-op
        dedup hit (``created=False``): identical re-submissions converge on
        one stored run.
        """
        if not reports:
            raise ValueError("a run must contain at least one report")
        run_id = run_fingerprint(spec, reports)
        created = False

        def write() -> None:
            nonlocal created
            fault_point("store.write", key=run_id)
            with self._write_lock(), closing(self._connect()) as conn, conn:
                exists = conn.execute(
                    "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
                ).fetchone()
                if exists:
                    created = False
                    return
                conn.execute(
                    "INSERT INTO runs VALUES (?, ?, ?, ?, ?)",
                    (
                        run_id,
                        spec.fingerprint(),
                        spec.canonical_json(),
                        time.time() if created_at is None else float(created_at),
                        json.dumps(engine_stats, sort_keys=True, default=repr)
                        if engine_stats is not None
                        else None,
                    ),
                )
                for (model, with_restrictions), report in reports.items():
                    conn.execute(
                        "INSERT INTO reports VALUES (?, ?, ?, ?, ?)",
                        (
                            run_id,
                            model,
                            int(with_restrictions),
                            report.pack,
                            canonical_report_json(report),
                        ),
                    )
                    conn.executemany(
                        "INSERT INTO trajectories VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        trajectory_rows(run_id, model, with_restrictions, report),
                    )
                created = True

        self._retried_write(run_id, write)
        return run_id, created

    def load_run(self, run_id: str) -> StoredRun:
        """Rehydrate one run (spec, every report, engine stats)."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT spec_json, created_at, engine_stats_json FROM runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
            if row is None:
                raise KeyError(f"unknown run {run_id!r}")
            spec_json, created_at, engine_stats_json = row
            reports: Dict[Tuple[str, bool], EvalReport] = {}
            for model, with_restrictions, report_json in conn.execute(
                "SELECT model, with_restrictions, report_json FROM reports "
                "WHERE run_id = ? ORDER BY model, with_restrictions",
                (run_id,),
            ):
                reports[(model, bool(with_restrictions))] = EvalReport.from_dict(
                    json.loads(report_json)
                )
        return StoredRun(
            run_id=run_id,
            spec=JobSpec.from_dict(json.loads(spec_json)),
            created_at=float(created_at),
            reports=reports,
            engine_stats=(
                json.loads(engine_stats_json) if engine_stats_json is not None else None
            ),
        )

    def load_report_json(self, run_id: str, model: str, with_restrictions: bool) -> str:
        """The exact stored (canonical) JSON document of one report."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT report_json FROM reports "
                "WHERE run_id = ? AND model = ? AND with_restrictions = ?",
                (run_id, model, int(with_restrictions)),
            ).fetchone()
        if row is None:
            raise KeyError(f"no report ({model!r}, {with_restrictions}) in run {run_id!r}")
        return row[0]

    def find_runs(self, spec_fingerprint: Optional[str] = None) -> List[Dict[str, object]]:
        """Run summaries, newest first (optionally filtered by spec)."""
        query = "SELECT run_id, spec_fingerprint, created_at FROM runs"
        params: Tuple[object, ...] = ()
        if spec_fingerprint is not None:
            query += " WHERE spec_fingerprint = ?"
            params = (spec_fingerprint,)
        query += " ORDER BY created_at DESC, run_id"
        with closing(self._connect()) as conn:
            return [
                {"run_id": run_id, "spec_fingerprint": fingerprint, "created_at": created}
                for run_id, fingerprint, created in conn.execute(query, params)
            ]

    def latest_run(self, spec_fingerprint: str) -> Optional[str]:
        """Newest run id recorded for a spec fingerprint (None when absent)."""
        runs = self.find_runs(spec_fingerprint)
        return runs[0]["run_id"] if runs else None  # type: ignore[return-value]

    def trajectories(self, run_id: str) -> List[Tuple[str, bool, str, str, str, int, int, float]]:
        """Every trajectory row of a run, deterministically ordered."""
        with closing(self._connect()) as conn:
            return [
                (model, bool(with_restrictions), pack, problem, metric, k, max_feedback, value)
                for model, with_restrictions, pack, problem, metric, k, max_feedback, value
                in conn.execute(
                    "SELECT model, with_restrictions, pack, problem, metric, k, "
                    "max_feedback, value FROM trajectories WHERE run_id = ? "
                    "ORDER BY model, with_restrictions, pack, problem, metric, k, max_feedback",
                    (run_id,),
                )
            ]

    # ------------------------------------------------------------------
    # Job metadata
    # ------------------------------------------------------------------
    #: Lifecycle rank of each job state; `record_job` never lets a
    #: lower-ranked (earlier-lifecycle) snapshot overwrite a higher one.
    _STATE_RANK = {"queued": 0, "running": 1, "done": 2, "failed": 2, "cancelled": 2}

    def record_job(self, job: Dict[str, object]) -> None:
        """Insert-or-update one job metadata row (snapshot of `JobRecord.to_dict`).

        Writes are *monotonic* in the job lifecycle: the queue's update hook
        runs from both the submitting thread and the worker thread, so a
        stale ``queued`` snapshot can reach the store after the worker
        already persisted ``done`` -- such out-of-order snapshots are
        dropped instead of rolling the row back.
        """
        def write() -> None:
            fault_point("store.write", key=str(job["job_id"]))
            with self._write_lock(), closing(self._connect()) as conn, conn:
                existing = conn.execute(
                    "SELECT state FROM jobs WHERE job_id = ?", (job["job_id"],)
                ).fetchone()
                if existing is not None:
                    old_rank = self._STATE_RANK.get(str(existing[0]), 0)
                    new_rank = self._STATE_RANK.get(str(job["state"]), 0)
                    if new_rank < old_rank:
                        return
                conn.execute(
                    "INSERT OR REPLACE INTO jobs VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        job["job_id"],
                        job["spec_fingerprint"],
                        json.dumps(job["spec"], sort_keys=True, separators=(",", ":")),
                        int(job["priority"]),  # type: ignore[arg-type]
                        job["state"],
                        job["submitted_at"],
                        job["started_at"],
                        job["finished_at"],
                        job["error"],
                        job["run_id"],
                    ),
                )

        self._retried_write(str(job["job_id"]), write)

    def load_job(self, job_id: str) -> Dict[str, object]:
        """One persisted job row as a plain dict."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT job_id, spec_fingerprint, spec_json, priority, state, "
                "submitted_at, started_at, finished_at, error, run_id "
                "FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            raise KeyError(f"unknown job {job_id!r}")
        keys = (
            "job_id", "spec_fingerprint", "spec_json", "priority", "state",
            "submitted_at", "started_at", "finished_at", "error", "run_id",
        )
        payload = dict(zip(keys, row))
        payload["spec"] = json.loads(payload.pop("spec_json"))  # type: ignore[arg-type]
        return payload

    def jobs(self) -> List[Dict[str, object]]:
        """Every persisted job row, oldest submission first."""
        with closing(self._connect()) as conn:
            ids = [
                row[0]
                for row in conn.execute(
                    "SELECT job_id FROM jobs ORDER BY submitted_at, job_id"
                )
            ]
        return [self.load_job(job_id) for job_id in ids]

    def pending_jobs(self) -> List[Dict[str, object]]:
        """Non-terminal job rows (queued/running), oldest submission first.

        These are the jobs a crashed daemon left behind: every accepted
        submit is journaled before acknowledgement, so a row still
        ``queued``/``running`` on startup is work the previous process
        never finished.  ``EvalService.recover`` re-adopts them.
        """
        with closing(self._connect()) as conn:
            ids = [
                row[0]
                for row in conn.execute(
                    "SELECT job_id FROM jobs WHERE state IN ('queued', 'running') "
                    "ORDER BY submitted_at, job_id"
                )
            ]
        return [self.load_job(job_id) for job_id in ids]

    def check_writable(self) -> bool:
        """Probe that the database accepts writes (the `health` op's signal).

        Runs a no-op write transaction; any sqlite/OS failure reports
        ``False`` instead of raising.
        """
        try:
            with self._write_lock(), closing(self._connect()) as conn, conn:
                conn.execute(
                    "UPDATE meta SET value = value WHERE key = 'schema_version'"
                )
        except Exception:  # noqa: BLE001 - a health probe never raises
            return False
        return True

    def counts(self) -> Dict[str, int]:
        """Row counts per table (service `stats` responses, tests)."""
        with closing(self._connect()) as conn:
            return {
                table: conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                for table in ("runs", "reports", "trajectories", "jobs")
            }
