"""The service's prioritised, cancellable job queue.

:class:`JobQueue` decouples job *submission* from job *execution*: `submit`
returns immediately with a job id and a bounded pool of worker threads
drains the queue in priority order (lower value first; equal priorities run
in strict submission order, so the queue is starvation-free and fair).

Failure containment follows the PR 6 ``UnitFailure`` pattern: a job whose
executor raises is recorded ``FAILED`` with the exception message and full
traceback on the job record, and the worker thread survives to run the next
job -- a crashed job never poisons the queue.  Cancellation is two-tier:
a still-queued job is cancelled instantly; a running job gets its
``cancel_event`` set and transitions to ``CANCELLED`` at the executor's
next checkpoint (executors raise :class:`JobCancelled` when they observe
the event).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .spec import JobSpec

__all__ = ["JobCancelled", "JobQueue", "JobRecord", "JobState", "QueueFullError"]


class JobCancelled(Exception):
    """Raised by an executor observing its job's cancellation request."""


class QueueFullError(RuntimeError):
    """A submit was rejected because the queue is at its ``max_queued`` bound.

    Carries the rejection context (``depth``, ``max_queued``) so the daemon
    can answer with a structured ``queue_full`` error instead of a dropped
    connection or an opaque message.
    """

    def __init__(self, depth: int, max_queued: int) -> None:
        super().__init__(
            f"job queue is full ({depth} queued, max_queued={max_queued})"
        )
        self.depth = depth
        self.max_queued = max_queued


class JobState(str, enum.Enum):
    """Lifecycle of a job: ``queued -> running -> done/failed/cancelled``."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the state is final (the job will never change again)."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class JobRecord:
    """One job's full lifecycle record (live object; snapshot via `to_dict`).

    ``error``/``error_traceback`` carry a failed executor's exception text
    and formatted traceback (the ``UnitFailure`` containment pattern);
    ``run_id`` references the results store's run row once the job is done;
    ``engine_stats`` is the per-job delta of the shared engine's counters
    (what *this* job added -- warm-cache regression tests read it).
    """

    job_id: str
    spec: JobSpec
    priority: int = 0
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    error_traceback: Optional[str] = None
    run_id: Optional[str] = None
    deduplicated: bool = False
    engine_stats: Optional[Dict[str, object]] = None
    result: Optional[object] = None
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`JobQueue.cancel` has been called on this job."""
        return self.cancel_event.is_set()

    def checkpoint(self) -> None:
        """Executor-side cancellation checkpoint.

        Executors call this between units of work; it raises
        :class:`JobCancelled` once cancellation has been requested.
        """
        if self.cancel_event.is_set():
            raise JobCancelled(self.job_id)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (protocol `status` responses, store rows)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "spec_fingerprint": self.spec.fingerprint(),
            "priority": self.priority,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "error_traceback": self.error_traceback,
            "run_id": self.run_id,
            "deduplicated": self.deduplicated,
            "engine_stats": self.engine_stats,
        }


class JobQueue:
    """Priority job queue with bounded worker concurrency.

    Parameters
    ----------
    executor:
        Callable running one job: ``executor(record)``'s return value is
        stored on ``record.result``.  Raising :class:`JobCancelled` marks
        the job ``CANCELLED``; any other exception marks it ``FAILED`` and
        is contained to that job.
    workers:
        Number of worker threads draining the queue (>= 1).  At most this
        many jobs are ever RUNNING at once.
    on_update:
        Optional hook called (from queue/worker threads) after every state
        transition -- the service uses it to persist job metadata.  Hook
        exceptions are swallowed: persistence must never kill a worker.
    max_queued:
        Backpressure bound: when set, a submit finding this many jobs
        already QUEUED raises :class:`QueueFullError` instead of accepting
        unbounded work.  Running jobs do not count against the bound, and
        recovery re-adoption deliberately bypasses it (a restart must never
        drop journaled work).  ``None`` (default) keeps the queue unbounded.
    """

    def __init__(
        self,
        executor: Callable[[JobRecord], object],
        *,
        workers: int = 1,
        on_update: Optional[Callable[[JobRecord], None]] = None,
        max_queued: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("JobQueue needs at least one worker")
        if max_queued is not None and max_queued < 1:
            raise ValueError("max_queued must be >= 1 (or None for unbounded)")
        self._executor = executor
        self._on_update = on_update
        self.max_queued = max_queued
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[tuple] = []  # (priority, seq, job_id)
        self._seq = itertools.count()
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []  # submission order, for `list`
        self._queued = 0  # jobs currently in QUEUED state
        self._shutdown = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"job-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, *, priority: int = 0) -> str:
        """Enqueue a job; returns its id immediately.

        Lower ``priority`` values run first; ties run in submission order.
        Raises :class:`QueueFullError` when ``max_queued`` is set and
        reached.  Callers that must persist the accepted job *before* it can
        start running use the :meth:`prepare` / :meth:`enqueue` split
        instead; ``submit`` is exactly ``enqueue(prepare(...))``.
        """
        return self.enqueue(self.prepare(spec, priority=priority))

    def prepare(self, spec: JobSpec, *, priority: int = 0) -> JobRecord:
        """Validate a spec and mint its job record WITHOUT queueing it.

        The record is not yet visible to :meth:`get`/:meth:`jobs` and no
        worker can pick it up -- the journal-before-acknowledge seam: the
        service persists the prepared record, then calls :meth:`enqueue`.
        """
        spec.validate()
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        return JobRecord(job_id=job_id, spec=spec, priority=int(priority))

    def enqueue(self, record: JobRecord, *, enforce_bound: bool = True) -> str:
        """Make a prepared record runnable; returns its job id.

        With ``enforce_bound`` (the default) a full queue raises
        :class:`QueueFullError` before the record becomes visible.
        """
        with self._not_empty:
            if self._shutdown:
                raise RuntimeError("the job queue is shut down")
            if (
                enforce_bound
                and self.max_queued is not None
                and self._queued >= self.max_queued
            ):
                raise QueueFullError(self._queued, self.max_queued)
            self._jobs[record.job_id] = record
            self._order.append(record.job_id)
            self._queued += 1
            heapq.heappush(self._heap, (record.priority, next(self._seq), record.job_id))
            self._not_empty.notify()
        self._notify(record)
        return record.job_id

    def adopt(self, record: JobRecord, *, requeue: bool = False) -> None:
        """Register an externally-built job record.

        Without ``requeue`` (store-level dedup) the record must already be
        terminal; it becomes visible to :meth:`get`/:meth:`jobs` without
        ever entering the run queue.  With ``requeue`` (crash recovery) a
        non-terminal record is reset to QUEUED -- keeping its job id,
        priority and original submission time -- and enters the run queue,
        bypassing ``max_queued`` (a restart must never drop journaled work).
        """
        if requeue:
            if record.state.terminal:
                raise ValueError("adopt(requeue=True) needs a non-terminal record")
            record.state = JobState.QUEUED
            record.started_at = None
            self.enqueue(record, enforce_bound=False)
            return
        if not record.state.terminal:
            raise ValueError("adopt() only accepts terminal job records")
        with self._lock:
            self._jobs[record.job_id] = record
            self._order.append(record.job_id)
        self._notify(record)
        record.done_event.set()

    def depth(self) -> int:
        """How many jobs are currently QUEUED (the backpressure measure)."""
        with self._lock:
            return self._queued

    def worker_liveness(self) -> Dict[str, int]:
        """Worker-pool health: configured vs currently alive threads."""
        alive = sum(1 for worker in self._workers if worker.is_alive())
        return {"workers": len(self._workers), "alive": alive}

    def get(self, job_id: str) -> JobRecord:
        """Look up one job record (raises ``KeyError`` on unknown ids)."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[JobRecord]:
        """Every known job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation of a job.

        A queued job is cancelled immediately; a running job is asked to
        stop at its next checkpoint (``True`` is returned for both).  Jobs
        already terminal return ``False``.
        """
        with self._lock:
            record = self._jobs[job_id]
            if record.state is JobState.QUEUED:
                # Instant cancellation; the heap entry becomes stale and is
                # skipped by the worker that eventually pops it.
                record.cancel_event.set()
                self._finish(record, JobState.CANCELLED)
                self._queued -= 1
                cancelled = True
            elif record.state is JobState.RUNNING:
                record.cancel_event.set()
                cancelled = True
            else:
                cancelled = False
        if cancelled and record.state is JobState.CANCELLED:
            self._notify(record)
            record.done_event.set()
        return cancelled

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until a job reaches a terminal state (or ``timeout`` runs out).

        Returns the record either way; check ``record.state.terminal``.
        """
        record = self.get(job_id)
        record.done_event.wait(timeout)
        return record

    def shutdown(self, *, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs; optionally wait for workers to drain.

        Queued jobs still run; submit() raises afterwards.  With
        ``wait=False`` workers finish in the background (they are daemons).
        """
        with self._not_empty:
            self._shutdown = True
            self._not_empty.notify_all()
        if wait:
            deadline = None if timeout is None else time.monotonic() + timeout
            for worker in self._workers:
                remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
                worker.join(remaining)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _next_job(self) -> Optional[JobRecord]:
        """Pop the next runnable job (None = shut down and drained)."""
        with self._not_empty:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    record = self._jobs[job_id]
                    if record.state is not JobState.QUEUED:
                        continue  # cancelled while queued: stale heap entry
                    record.state = JobState.RUNNING
                    record.started_at = time.time()
                    self._queued -= 1
                    return record
                if self._shutdown:
                    return None
                self._not_empty.wait()

    def _finish(self, record: JobRecord, state: JobState) -> None:
        """Transition a job to a terminal state.

        ``done_event`` is deliberately NOT set here: callers fire it only
        after the terminal-state `on_update` notification ran, so a
        returned :meth:`wait` guarantees the hook (the service's store
        write) already observed the terminal state.
        """
        record.state = state
        record.finished_at = time.time()

    def _notify(self, record: JobRecord) -> None:
        """Run the on_update hook, containing its failures."""
        if self._on_update is None:
            return
        try:
            self._on_update(record)
        except Exception:  # noqa: BLE001 - persistence must not kill workers
            pass

    def _worker_loop(self) -> None:
        """One worker thread: pop, run, contain, repeat."""
        while True:
            record = self._next_job()
            if record is None:
                return
            self._notify(record)
            try:
                record.result = self._executor(record)
            except JobCancelled:
                self._finish(record, JobState.CANCELLED)
            except Exception as error:  # noqa: BLE001 - UnitFailure containment
                record.error = f"{type(error).__name__}: {error}"
                record.error_traceback = traceback.format_exc()
                self._finish(record, JobState.FAILED)
            else:
                # A cancel request the executor never observed (it finished
                # first) does not un-do completed work: the job is DONE.
                self._finish(record, JobState.DONE)
            self._notify(record)
            record.done_event.set()
