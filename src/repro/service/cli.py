"""Command-line front door of the evaluation service.

Examples
--------
Start the daemon (prints one JSON line with the bound address, then serves)::

    python -m repro.service serve --db results.db --cache-dir .simcache --port 7341

Submit, inspect and diff jobs against a running daemon::

    python -m repro.service jobs --port 7341 submit --pack core \
        --models GPT-4o --samples 2 --wavelengths 11 --wait
    python -m repro.service jobs --port 7341 status JOB_ID
    python -m repro.service jobs --port 7341 cancel JOB_ID
    python -m repro.service jobs --port 7341 list
    python -m repro.service jobs --port 7341 diff RUN_A RUN_B --tolerance 0.5

The same verbs are reachable through the harness CLI
(``python -m repro.harness serve ...`` / ``... jobs ...``).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import Dict, Optional, Sequence

from ..engine.engine import EXECUTION_MODES
from ..faults import RetryPolicy
from ..sim.circuit import SOLVER_BACKENDS
from .client import ServiceClient, ServiceError
from .daemon import ServiceDaemon
from .service import EvalService
from .spec import JobSpec

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run and drive the PICBench evaluation service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start the evaluation daemon")
    serve.add_argument("--db", required=True, help="path of the SQLite results database")
    serve.add_argument("--cache-dir", default=None, help="shared on-disk cache directory")
    serve.add_argument("--host", default="127.0.0.1", help="bind host (local only)")
    serve.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--job-workers", type=int, default=2, help="concurrently running jobs"
    )
    serve.add_argument(
        "--engine-workers", type=int, default=1,
        help="engine thread-pool width within one job",
    )
    serve.add_argument(
        "--journal-dir", default=None,
        help="sweep-journal directory for checkpoint/resume "
        "(default: <cache-dir>/journals when --cache-dir is set)",
    )
    serve.add_argument(
        "--max-queued", type=int, default=None, metavar="N",
        help="backpressure bound: reject submits beyond N queued jobs "
        "with a structured queue_full error (default: unbounded)",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="re-adopt non-terminal jobs persisted by a previous (crashed) "
        "process: queued jobs re-enter the queue, running-at-crash jobs "
        "re-run journal-warm",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="close a connection idle for this long (0 = never; "
        "default: 300s)",
    )
    serve.add_argument(
        "--max-request-bytes", type=int, default=None, metavar="BYTES",
        help="reject request lines longer than this (default: 10MB)",
    )

    jobs = sub.add_parser("jobs", help="talk to a running daemon")
    jobs.add_argument("--host", default="127.0.0.1", help="daemon host")
    jobs.add_argument("--port", type=int, required=True, help="daemon port")
    jobs.add_argument(
        "--connect-retries", type=int, default=3, metavar="N",
        help="total transport tries per request (1 = no retry; default: 3)",
    )
    jobs.add_argument(
        "--connect-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base seconds of the client's exponential connect backoff",
    )
    verbs = jobs.add_subparsers(dest="verb", required=True)

    submit = verbs.add_parser("submit", help="submit a sweep/evaluate job")
    submit.add_argument("--kind", default="sweep", choices=["sweep", "evaluate"])
    submit.add_argument(
        "--models", nargs="*", default=None,
        help="designer profiles to run (default: all five paper profiles)",
    )
    submit.add_argument(
        "--restrictions", default="both", choices=["both", "with", "without"],
        help="prompt restriction settings to run",
    )
    submit.add_argument("--samples", type=int, default=5)
    submit.add_argument("--feedback", type=int, default=3)
    submit.add_argument("--wavelengths", type=int, default=41)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--problems", nargs="*", default=None)
    submit.add_argument("--pack", default="core")
    submit.add_argument(
        "--pack-param", action="append", default=None, metavar="KEY=VALUE",
        help="pack generation parameter (VALUE parsed as JSON; repeatable)",
    )
    submit.add_argument("--solver-backend", default="auto", choices=list(SOLVER_BACKENDS))
    submit.add_argument("--batch-size", type=int, default=1)
    submit.add_argument(
        "--execution-mode", default="thread", choices=list(EXECUTION_MODES)
    )
    submit.add_argument("--processes", type=int, default=0)
    submit.add_argument(
        "--retry-attempts", type=int, default=2,
        help="total tries per transiently failing work unit",
    )
    submit.add_argument(
        "--retry-backoff", type=float, default=0.1,
        help="base seconds of the exponential retry backoff",
    )
    submit.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit watchdog timeout in process mode (default: none)",
    )
    submit.add_argument("--priority", type=int, default=0, help="lower runs first")
    submit.add_argument(
        "--dedupe", action="store_true",
        help="reuse an existing stored run for an identical spec",
    )
    submit.add_argument(
        "--idempotent", action="store_true",
        help="key the submit purely on spec content: a later identical "
        "submit returns this job's id instead of a new job",
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job is terminal"
    )

    for verb in ("status", "cancel", "result"):
        v = verbs.add_parser(verb, help=f"{verb} one job")
        v.add_argument("job_id")

    verbs.add_parser("list", help="list every job")
    verbs.add_parser("runs", help="list stored runs")
    verbs.add_parser("stats", help="service counters")
    verbs.add_parser("health", help="queue depth, workers, store, recovery")
    verbs.add_parser("ready", help="readiness verdict (exit 1 when not ready)")
    verbs.add_parser("shutdown", help="stop the daemon")

    diff = verbs.add_parser("diff", help="regression-diff two stored runs")
    diff.add_argument("baseline", help="baseline run id")
    diff.add_argument("candidate", help="candidate run id")
    diff.add_argument(
        "--tolerance", type=float, default=0.0,
        help="pass@k drift (percentage points) still counted as unchanged",
    )
    diff.add_argument("--format", default="markdown", choices=["markdown", "json"])
    diff.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when the candidate regresses (the CI gate)",
    )
    return parser


def _parse_pack_params(raw: Optional[Sequence[str]]) -> Optional[Dict[str, object]]:
    """``KEY=VALUE`` pairs -> pack params (VALUE parsed as JSON when possible)."""
    if not raw:
        return None
    params: Dict[str, object] = {}
    for item in raw:
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise SystemExit(f"--pack-param must look like KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _spec_from_args(args: argparse.Namespace) -> JobSpec:
    """Build the submitted :class:`JobSpec` from ``jobs submit`` flags."""
    restrictions = {
        "both": (False, True),
        "with": (True,),
        "without": (False,),
    }[args.restrictions]
    fields: Dict[str, object] = {
        "kind": args.kind,
        "restrictions": restrictions,
        "samples_per_problem": args.samples,
        "max_feedback_iterations": args.feedback,
        "num_wavelengths": args.wavelengths,
        "base_seed": args.seed,
        "problems": tuple(args.problems) if args.problems else None,
        "pack": args.pack,
        "pack_params": _parse_pack_params(args.pack_param),
        "solver_backend": args.solver_backend,
        "batch_size": args.batch_size,
        "execution_mode": args.execution_mode,
        "processes": args.processes,
        "retry_attempts": args.retry_attempts,
        "retry_backoff": args.retry_backoff,
        "unit_timeout": args.unit_timeout,
    }
    if args.models:
        fields["models"] = tuple(args.models)
    return JobSpec(**fields)  # type: ignore[arg-type]


def _serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: run the daemon until interrupted.

    SIGTERM triggers a graceful drain: the daemon stops accepting requests
    and the service finishes (or checkpoints, via sweep journals) its
    running jobs before the process exits -- the supervisor-friendly
    counterpart of the ``shutdown`` protocol op.
    """
    service = EvalService(
        args.db,
        cache_dir=args.cache_dir,
        job_workers=args.job_workers,
        engine_workers=args.engine_workers,
        journal_dir=args.journal_dir,
        max_queued=args.max_queued,
        recover=args.recover,
    )
    daemon_kwargs: Dict[str, object] = {}
    if args.idle_timeout is not None:
        daemon_kwargs["idle_timeout"] = args.idle_timeout or None
    if args.max_request_bytes is not None:
        daemon_kwargs["max_request_bytes"] = args.max_request_bytes
    daemon = ServiceDaemon(
        service, host=args.host, port=args.port, **daemon_kwargs  # type: ignore[arg-type]
    )
    signal.signal(signal.SIGTERM, lambda *_: daemon.stop_async())
    host, port = daemon.start()
    # One machine-readable line so wrappers can discover the ephemeral port.
    print(
        json.dumps(
            {
                "host": host,
                "port": port,
                "db": str(args.db),
                "recovery": service.health()["recovery"],
            }
        ),
        flush=True,
    )
    try:
        daemon.serve_forever()
    finally:
        daemon.stop()
        service.close(timeout=60.0)
    return 0


def _jobs(args: argparse.Namespace) -> int:
    """The ``jobs`` command family: client verbs against a running daemon."""
    client = ServiceClient(
        args.host,
        args.port,
        retry=RetryPolicy(
            attempts=args.connect_retries,
            base_delay=args.connect_backoff,
            transient=ServiceClient.TRANSIENT,
        ),
    )
    if args.verb == "submit":
        spec = _spec_from_args(args)
        job_id = client.submit(
            spec,
            priority=args.priority,
            dedupe=args.dedupe,
            idempotent=args.idempotent,
        )
        if args.wait:
            job = client.poll(job_id)
            print(json.dumps(job, indent=2))
            return 0 if job["state"] == "done" else 1
        print(json.dumps({"job_id": job_id, "spec_fingerprint": spec.fingerprint()}))
        return 0
    if args.verb == "status":
        print(json.dumps(client.status(args.job_id), indent=2))
        return 0
    if args.verb == "cancel":
        print(json.dumps({"cancelled": client.cancel(args.job_id)}))
        return 0
    if args.verb == "result":
        print(json.dumps(client.result(args.job_id), indent=2))
        return 0
    if args.verb == "list":
        print(json.dumps(client.jobs(), indent=2))
        return 0
    if args.verb == "runs":
        print(json.dumps(client.runs(), indent=2))
        return 0
    if args.verb == "stats":
        print(json.dumps(client.stats(), indent=2))
        return 0
    if args.verb == "health":
        print(json.dumps(client.health(), indent=2))
        return 0
    if args.verb == "ready":
        response = client.ready()
        print(json.dumps(response, indent=2))
        return 0 if response.get("ready") else 1
    if args.verb == "shutdown":
        client.shutdown()
        print(json.dumps({"stopping": True}))
        return 0
    # diff
    response = client.diff(args.baseline, args.candidate, tolerance=args.tolerance)
    report = response["report"]
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(response["markdown"])
    if args.fail_on_regression and report["is_regression"]:  # type: ignore[index]
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.service``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "serve":
            return _serve(args)
        return _jobs(args)
    except ServiceError as error:
        print(f"service error: {error}", file=sys.stderr)
        return 2
    except ConnectionError as error:
        print(f"cannot reach the daemon: {error}", file=sys.stderr)
        return 2
