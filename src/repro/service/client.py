"""Client of the service daemon's line-JSON protocol.

:class:`ServiceClient` opens one connection per request (the protocol is a
single request/response line, so connection reuse buys nothing and
per-request connections keep the client trivially thread-safe).  Error
responses (``ok: false``) raise :class:`ServiceError` with the daemon's
message, so callers never have to inspect raw payloads for failures.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Optional

from .spec import JobSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An ``ok: false`` response from the daemon."""


class ServiceClient:
    """Talk to a running :class:`~repro.service.daemon.ServiceDaemon`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    def request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one request line; returns the parsed ``ok: true`` response."""
        payload = {"op": op, **fields}
        with socket.create_connection((self.host, self.port), timeout=self.timeout) as sock:
            sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            handle = sock.makefile("r", encoding="utf-8")
            line = handle.readline()
        if not line:
            raise ServiceError("the daemon closed the connection without responding")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown service error")))
        return response

    # ------------------------------------------------------------------
    # Convenience verbs
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        """Liveness probe."""
        return self.request("ping")

    def submit(
        self, spec: JobSpec, *, priority: int = 0, dedupe: bool = False
    ) -> str:
        """Submit a job; returns its id."""
        response = self.request(
            "submit", spec=spec.to_dict(), priority=priority, dedupe=dedupe
        )
        return str(response["job_id"])

    def status(self, job_id: str) -> Dict[str, object]:
        """One job record snapshot."""
        return self.request("status", job_id=job_id)["job"]  # type: ignore[return-value]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the request was accepted."""
        return bool(self.request("cancel", job_id=job_id)["cancelled"])

    def jobs(self) -> list:
        """Every job record."""
        return self.request("jobs")["jobs"]  # type: ignore[return-value]

    def result(self, job_id: str) -> Dict[str, object]:
        """The stored run of a DONE job."""
        return self.request("result", job_id=job_id)

    def runs(self, spec_fingerprint: Optional[str] = None) -> list:
        """Stored run summaries."""
        fields: Dict[str, object] = {}
        if spec_fingerprint is not None:
            fields["spec_fingerprint"] = spec_fingerprint
        return self.request("runs", **fields)["runs"]  # type: ignore[return-value]

    def diff(
        self, baseline: str, candidate: str, *, tolerance: float = 0.0
    ) -> Dict[str, object]:
        """Regression-diff two stored runs (JSON report + markdown)."""
        return self.request(
            "diff", baseline=baseline, candidate=candidate, tolerance=tolerance
        )

    def stats(self) -> Dict[str, object]:
        """Service counters."""
        return self.request("stats")["stats"]  # type: ignore[return-value]

    def shutdown(self) -> None:
        """Ask the daemon to stop."""
        self.request("shutdown")

    def poll(
        self, job_id: str, *, timeout: float = 300.0, interval: float = 0.1
    ) -> Dict[str, object]:
        """Poll a job until it reaches a terminal state; returns the record.

        Raises ``TimeoutError`` when the job is still live after ``timeout``
        seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(interval)
