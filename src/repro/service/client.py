"""Client of the service daemon's line-JSON protocol.

:class:`ServiceClient` opens one connection per request (the protocol is a
single request/response line, so connection reuse buys nothing and
per-request connections keep the client trivially thread-safe).  Error
responses (``ok: false``) raise :class:`ServiceError` with the daemon's
message, so callers never have to inspect raw payloads for failures.

The client is restart-tolerant by construction:

* Every transport attempt (connect, send, read) is retried under a shared
  :class:`~repro.faults.RetryPolicy` -- connection refused/reset and
  timeouts are transient, anything else is permanent.  Failures that
  survive the retries surface as :class:`ServiceError` with the original
  transport exception attached as ``__cause__``.
* ``submit`` sends an idempotency key derived from the spec's content
  fingerprint, so a retried submit (the response lost to a daemon restart
  mid-request) can never double-run the job.
* ``poll`` tolerates a daemon restart mid-poll: transport-level failures
  keep polling until the deadline (a recovered daemon re-adopts its jobs,
  so the job id stays valid across the restart).
"""

from __future__ import annotations

import json
import socket
import time
import uuid
from typing import Dict, Optional

from ..faults import RetryPolicy, fault_point, retry_call
from .spec import JobSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A failed service interaction.

    Raised for ``ok: false`` responses from the daemon (``__cause__`` is
    ``None``) and for transport failures that survived the client's retries
    (``__cause__`` is the original ``OSError``/``TimeoutError``) -- callers
    catch one exception type either way.
    """

    @property
    def transport(self) -> bool:
        """Whether this error came from the transport, not the daemon."""
        return isinstance(self.__cause__, (OSError, TimeoutError))


class ServiceClient:
    """Talk to a running :class:`~repro.service.daemon.ServiceDaemon`.

    Parameters
    ----------
    timeout:
        Socket timeout of one transport attempt.
    retry:
        Retry policy for transport failures (connect refused/reset and
        timeouts).  The default retries 3 times with the shared
        deterministic-jitter backoff; ``RetryPolicy(attempts=1)`` disables
        retrying entirely.
    """

    #: Transport exceptions worth retrying -- a daemon restarting (refused),
    #: dying mid-request (reset) or stalling (timeout).  Protocol-level
    #: errors are never retried.
    TRANSIENT = (ConnectionError, TimeoutError)

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(attempts=3, base_delay=0.05, transient=self.TRANSIENT)
        )

    def request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one request line; returns the parsed ``ok: true`` response.

        Transport failures are retried per the client's policy and, once
        exhausted, raised as :class:`ServiceError` with the underlying
        exception as ``__cause__``.  Daemon-side errors (``ok: false``)
        raise :class:`ServiceError` without retrying -- the daemon already
        answered.
        """
        payload = {"op": op, **fields}
        line = json.dumps(payload) + "\n"

        def attempt() -> str:
            fault_point("client.connect", key=op)
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall(line.encode("utf-8"))
                handle = sock.makefile("r", encoding="utf-8")
                return handle.readline()

        try:
            raw = retry_call(attempt, policy=self.retry, seed=op)
        except (OSError, TimeoutError) as error:
            raise ServiceError(
                f"could not reach the service daemon at "
                f"{self.host}:{self.port} for {op!r}: {error}"
            ) from error
        if not raw:
            raise ServiceError("the daemon closed the connection without responding")
        try:
            response = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServiceError(
                f"the daemon answered {op!r} with malformed JSON: {error}"
            ) from error
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown service error")))
        return response

    # ------------------------------------------------------------------
    # Convenience verbs
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        """Liveness probe."""
        return self.request("ping")

    def submit(
        self,
        spec: JobSpec,
        *,
        priority: int = 0,
        dedupe: bool = False,
        idempotent: bool = False,
    ) -> str:
        """Submit a job; returns its id.

        Every submit carries an idempotency key built from the spec's
        content fingerprint plus a per-call nonce: the key is identical
        across *transport retries* of this one call (a retried submit never
        double-runs) but unique across *separate calls* (deliberately
        submitting the same spec twice still creates two jobs).  With
        ``idempotent=True`` the nonce is dropped, so any later submit of
        the same spec content returns the first job's id.
        """
        key = spec.fingerprint()
        if not idempotent:
            key = f"{key}:{uuid.uuid4().hex}"
        response = self.request(
            "submit",
            spec=spec.to_dict(),
            priority=priority,
            dedupe=dedupe,
            idempotency_key=key,
        )
        return str(response["job_id"])

    def status(self, job_id: str) -> Dict[str, object]:
        """One job record snapshot."""
        return self.request("status", job_id=job_id)["job"]  # type: ignore[return-value]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the request was accepted."""
        return bool(self.request("cancel", job_id=job_id)["cancelled"])

    def jobs(self) -> list:
        """Every job record."""
        return self.request("jobs")["jobs"]  # type: ignore[return-value]

    def result(self, job_id: str) -> Dict[str, object]:
        """The stored run of a DONE job."""
        return self.request("result", job_id=job_id)

    def runs(self, spec_fingerprint: Optional[str] = None) -> list:
        """Stored run summaries."""
        fields: Dict[str, object] = {}
        if spec_fingerprint is not None:
            fields["spec_fingerprint"] = spec_fingerprint
        return self.request("runs", **fields)["runs"]  # type: ignore[return-value]

    def diff(
        self, baseline: str, candidate: str, *, tolerance: float = 0.0
    ) -> Dict[str, object]:
        """Regression-diff two stored runs (JSON report + markdown)."""
        return self.request(
            "diff", baseline=baseline, candidate=candidate, tolerance=tolerance
        )

    def stats(self) -> Dict[str, object]:
        """Service counters."""
        return self.request("stats")["stats"]  # type: ignore[return-value]

    def health(self) -> Dict[str, object]:
        """Daemon health snapshot (queue depth, workers, store, recovery)."""
        return self.request("health")["health"]  # type: ignore[return-value]

    def ready(self) -> Dict[str, object]:
        """Readiness verdict plus the health snapshot."""
        return self.request("ready")

    def shutdown(self) -> None:
        """Ask the daemon to stop."""
        self.request("shutdown")

    def poll(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        interval: float = 0.1,
        max_interval: float = 2.0,
    ) -> Dict[str, object]:
        """Poll a job until it reaches a terminal state; returns the record.

        The wait between probes starts at ``interval`` and backs off
        exponentially (deterministic jitter, capped at ``max_interval``) --
        short jobs are noticed fast, long jobs are not hammered.  A daemon
        restart mid-poll is tolerated: transport-level failures keep
        polling until the deadline, because a daemon restarted with
        ``--recover`` re-adopts its jobs under their original ids.  Raises
        ``TimeoutError`` when the job is still live (or the daemon still
        unreachable) at the deadline.
        """
        backoff = RetryPolicy(
            attempts=2**31 - 1,  # poll() bounds by deadline, not attempts
            base_delay=float(interval),
            max_delay=float(max_interval),
        )
        deadline = time.monotonic() + timeout
        probe = 0
        last_error: Optional[ServiceError] = None
        while True:
            try:
                job = self.status(job_id)
            except ServiceError as error:
                if not error.transport:
                    raise  # the daemon answered: unknown job, bad request...
                last_error = error  # daemon restarting: keep polling
            else:
                last_error = None
                if job["state"] in ("done", "failed", "cancelled"):
                    return job
            if time.monotonic() >= deadline:
                if last_error is not None:
                    raise TimeoutError(
                        f"daemon unreachable while polling job {job_id}: {last_error}"
                    ) from last_error
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(min(backoff.delay(probe, seed=job_id), max(0.0, deadline - time.monotonic())))
            probe += 1
