"""S-parameter containers and helpers for the frequency-domain circuit solver.

The simulator represents every device and every composed circuit as an
:class:`SMatrix`: a complex array of shape ``(num_wavelengths, num_ports,
num_ports)`` together with an ordered tuple of port names.  Entry
``S[w, i, j]`` is the field transmission from port ``j`` (input) to port ``i``
(output) at wavelength index ``w``.

This mirrors what SAX computes (an "SDict" mapping port pairs to arrays); a
dense matrix keeps the numpy implementation simple and fast for the circuit
sizes in the benchmark (the largest, an 8x8 Benes network, has ~240 internal
ports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "SMatrix",
    "sdict_to_smatrix",
    "is_reciprocal",
    "is_unitary",
    "power_transmission",
]


@dataclass(frozen=True)
class SMatrix:
    """A wavelength-resolved scattering matrix with named ports.

    Attributes
    ----------
    wavelengths:
        1-D array of wavelengths in microns, shape ``(W,)``.
    ports:
        Ordered tuple of port names; the order defines the matrix indexing.
    data:
        Complex array of shape ``(W, P, P)`` where ``data[w, i, j]`` is the
        field amplitude coupled from input ``ports[j]`` to output ``ports[i]``.
    degraded:
        True when the solver had to fall back to a least-squares solve (a
        singular or non-finite feedback system); the numbers are a
        minimum-norm answer, not an exact solution.
    """

    wavelengths: np.ndarray
    ports: Tuple[str, ...]
    data: np.ndarray
    degraded: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "degraded", bool(self.degraded))
        wavelengths = np.atleast_1d(np.asarray(self.wavelengths, dtype=float))
        data = np.asarray(self.data, dtype=complex)
        ports = tuple(str(p) for p in self.ports)
        if data.ndim == 2:
            data = data[None, :, :]
            data = np.broadcast_to(data, (wavelengths.size,) + data.shape[1:]).copy()
        if data.ndim != 3:
            raise ValueError(f"S-matrix data must be 3-D, got shape {data.shape}")
        if data.shape[0] != wavelengths.size:
            raise ValueError(
                f"wavelength axis mismatch: {data.shape[0]} rows vs "
                f"{wavelengths.size} wavelengths"
            )
        if data.shape[1] != data.shape[2] or data.shape[1] != len(ports):
            raise ValueError(
                f"port axis mismatch: data shape {data.shape[1:]} vs {len(ports)} ports"
            )
        if len(set(ports)) != len(ports):
            raise ValueError(f"duplicate port names in {ports}")
        object.__setattr__(self, "wavelengths", wavelengths)
        object.__setattr__(self, "ports", ports)
        object.__setattr__(self, "data", data)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def num_ports(self) -> int:
        """Number of ports of the device / circuit."""
        return len(self.ports)

    @property
    def num_wavelengths(self) -> int:
        """Number of wavelength samples."""
        return self.wavelengths.size

    def port_index(self, port: str) -> int:
        """Return the matrix index of ``port``, raising ``KeyError`` if absent."""
        try:
            return self.ports.index(port)
        except ValueError as exc:
            raise KeyError(
                f"port {port!r} not found; available ports: {list(self.ports)}"
            ) from exc

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    def s(self, output_port: str, input_port: str) -> np.ndarray:
        """Return the complex transmission spectrum ``S[output, input]``."""
        i = self.port_index(output_port)
        j = self.port_index(input_port)
        return self.data[:, i, j]

    def transmission(self, output_port: str, input_port: str) -> np.ndarray:
        """Return the power transmission spectrum ``|S[output, input]|^2``."""
        return np.abs(self.s(output_port, input_port)) ** 2

    def transmission_db(self, output_port: str, input_port: str, floor: float = 1e-15) -> np.ndarray:
        """Return the power transmission in dB, clipped at ``10*log10(floor)``."""
        power = np.maximum(self.transmission(output_port, input_port), floor)
        return 10.0 * np.log10(power)

    def to_sdict(self) -> Dict[Tuple[str, str], np.ndarray]:
        """Export as a SAX-style dictionary ``{(out_port, in_port): spectrum}``."""
        out: Dict[Tuple[str, str], np.ndarray] = {}
        for i, pi in enumerate(self.ports):
            for j, pj in enumerate(self.ports):
                out[(pi, pj)] = self.data[:, i, j].copy()
        return out

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def renamed(self, mapping: Mapping[str, str]) -> "SMatrix":
        """Return a copy with ports renamed according to ``mapping``.

        Ports not present in ``mapping`` keep their names.
        """
        new_ports = tuple(mapping.get(p, p) for p in self.ports)
        return SMatrix(
            self.wavelengths, new_ports, self.data.copy(), degraded=self.degraded
        )

    def reordered(self, ports: Sequence[str]) -> "SMatrix":
        """Return a copy whose port order matches ``ports`` exactly."""
        if set(ports) != set(self.ports) or len(ports) != len(self.ports):
            raise ValueError(
                f"reordered ports {list(ports)} must be a permutation of {list(self.ports)}"
            )
        idx = np.array([self.port_index(p) for p in ports], dtype=int)
        data = self.data[:, idx][:, :, idx]
        return SMatrix(self.wavelengths, tuple(ports), data, degraded=self.degraded)

    def at_wavelength(self, wavelength_um: float) -> np.ndarray:
        """Return the 2-D S-matrix at the grid point closest to ``wavelength_um``."""
        idx = int(np.argmin(np.abs(self.wavelengths - wavelength_um)))
        return self.data[idx]


def sdict_to_smatrix(
    wavelengths: np.ndarray,
    ports: Sequence[str],
    sdict: Mapping[Tuple[str, str], np.ndarray | complex],
    *,
    reciprocal: bool = True,
) -> SMatrix:
    """Build an :class:`SMatrix` from a sparse ``{(out, in): value}`` mapping.

    Parameters
    ----------
    wavelengths:
        Wavelength grid in microns.
    ports:
        Ordered port names of the device.
    sdict:
        Mapping of ``(output_port, input_port)`` to a complex scalar or a
        spectrum of the same length as ``wavelengths``.  Missing entries are
        zero.
    reciprocal:
        When true (the default, appropriate for passive photonic devices),
        each provided entry ``(a, b)`` also fills ``(b, a)`` unless that entry
        is given explicitly.
    """
    wavelengths = np.atleast_1d(np.asarray(wavelengths, dtype=float))
    ports = tuple(str(p) for p in ports)
    index = {p: i for i, p in enumerate(ports)}
    data = np.zeros((wavelengths.size, len(ports), len(ports)), dtype=complex)
    for (out_port, in_port), value in sdict.items():
        if out_port not in index or in_port not in index:
            raise KeyError(
                f"sdict entry ({out_port!r}, {in_port!r}) references a port not in {ports}"
            )
        data[:, index[out_port], index[in_port]] = np.asarray(value, dtype=complex)
    if reciprocal:
        for (out_port, in_port), value in sdict.items():
            if (in_port, out_port) not in sdict:
                data[:, index[in_port], index[out_port]] = np.asarray(value, dtype=complex)
    return SMatrix(wavelengths, ports, data)


def is_reciprocal(smatrix: SMatrix, atol: float = 1e-9) -> bool:
    """Return True when ``S == S.T`` at every wavelength (passive reciprocity)."""
    return bool(np.allclose(smatrix.data, np.swapaxes(smatrix.data, 1, 2), atol=atol))


def is_unitary(smatrix: SMatrix, atol: float = 1e-7) -> bool:
    """Return True when ``S† S == I`` at every wavelength (lossless device)."""
    identity = np.eye(smatrix.num_ports)
    product = np.einsum("wij,wik->wjk", np.conj(smatrix.data), smatrix.data)
    return bool(np.allclose(product, identity[None, :, :], atol=atol))


def power_transmission(smatrix: SMatrix) -> Dict[Tuple[str, str], np.ndarray]:
    """Return ``|S|^2`` spectra for every port pair as a dictionary."""
    return {
        (pi, pj): np.abs(smatrix.data[:, i, j]) ** 2
        for i, pi in enumerate(smatrix.ports)
        for j, pj in enumerate(smatrix.ports)
    }
