"""Structure-aware circuit solver backend (topological cascade).

The dense solver in :mod:`repro.sim.circuit` assembles the full interior
scattering system ``(I - S C) b = S E x`` over *all* flattened instance ports
and hands it to ``numpy.linalg.solve`` -- ``O(W * P^3)`` time and
``O(W * P^2)`` memory even when the circuit has no feedback at all.  This
module solves the *same* linear system by exploiting its structure:

1. ``M = S C`` is extremely sparse: column ``j`` is non-zero only on the
   ports of the instance that owns ``partner(j)`` (the port ``j`` is wired
   to), with values taken straight from that instance's S-matrix.  The
   directed graph "``b_i`` depends on ``b_j``" therefore has one small edge
   bundle per connection.
2. The strongly-connected components of that graph are exactly the circuit's
   feedback clusters (rings, coupled-ring loops, self-coupled instances).
   Feed-forward structures -- splitter trees, MZI meshes, switch fabrics --
   condense into singleton components.
3. The condensation is acyclic, so the components are processed in
   topological order ("sub-network growth" over the signal-flow graph):
   a trivial component costs one batched multiply-add per outgoing edge
   bundle, and a feedback cluster of ``n`` ports costs one small
   ``(W, n, n)`` dense solve over the cluster's ports only.

Because this is nothing but a block-triangular elimination of the very
system the dense backend solves, the result is numerically equivalent (to
solver round-off, well below the ``1e-9`` equivalence budget the test suite
enforces) for every topology, cyclic or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .guardrails import _record_degradation, solve_with_fallback

__all__ = [
    "CascadePlan",
    "strongly_connected_components",
    "structural_masks",
    "build_cascade_plan",
    "cascade_solve",
]


@dataclass(frozen=True)
class CascadePlan:
    """The evaluation order the cascade backend derives from a netlist.

    Attributes
    ----------
    components:
        Port-index groups (strongly-connected components of the signal-flow
        graph) in topological evaluation order; feed-forward ports appear as
        singletons.
    feedback:
        The subset of :attr:`components` that require a local dense solve:
        components of two or more ports, plus self-coupled single ports.
    num_ports:
        Total number of flattened instance ports.
    """

    components: Tuple[Tuple[int, ...], ...]
    feedback: Tuple[Tuple[int, ...], ...]
    num_ports: int

    @property
    def num_feedback_ports(self) -> int:
        """Total number of ports inside feedback clusters."""
        return sum(len(component) for component in self.feedback)

    @property
    def largest_feedback_cluster(self) -> int:
        """Port count of the largest feedback cluster (0 when feed-forward)."""
        return max((len(component) for component in self.feedback), default=0)


def strongly_connected_components(
    adjacency: Sequence[Sequence[int]],
) -> List[List[int]]:
    """Tarjan's algorithm, iterative; components in reverse topological order.

    ``adjacency[v]`` lists the successors of node ``v``.  Each emitted
    component precedes every component that can reach it, so reversing the
    returned list yields a topological order of the condensation.
    """
    num_nodes = len(adjacency)
    index = [-1] * num_nodes
    lowlink = [0] * num_nodes
    on_stack = [False] * num_nodes
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(num_nodes):
        if index[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, next_edge = work[-1]
            if next_edge == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            descended = False
            successors = adjacency[node]
            for position in range(next_edge, len(successors)):
                successor = successors[position]
                if index[successor] == -1:
                    work[-1] = (node, position + 1)
                    work.append((successor, 0))
                    descended = True
                    break
                if on_stack[successor]:
                    lowlink[node] = min(lowlink[node], index[successor])
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def structural_masks(matrices: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Per-instance boolean masks of S-matrix entries non-zero at any wavelength.

    This is the single definition of "structurally non-zero" shared by plan
    construction and the solve itself.
    """
    return [np.any(data != 0, axis=0) for data in matrices]


def _dependent_rows(
    masks: Sequence[np.ndarray],
    spans: Sequence[Tuple[int, int]],
    owner: np.ndarray,
    partner: np.ndarray,
) -> List[List[int]]:
    """Adjacency of the signal-flow graph: per port ``j``, the rows ``i`` with
    ``M[i, j]`` structurally non-zero (``b_i`` depends on ``b_j``)."""
    adjacency: List[List[int]] = [[] for _ in range(int(owner.size))]
    for port in range(int(owner.size)):
        source = int(partner[port])
        if source < 0:
            continue
        instance = int(owner[source])
        start, _ = spans[instance]
        adjacency[port] = [
            start + int(row_local)
            for row_local in np.nonzero(masks[instance][:, source - start])[0]
        ]
    return adjacency


def build_cascade_plan(
    masks: Sequence[np.ndarray],
    spans: Sequence[Tuple[int, int]],
    owner: np.ndarray,
    partner: np.ndarray,
    adjacency: Optional[List[List[int]]] = None,
) -> CascadePlan:
    """Condense the port-level signal-flow graph into an evaluation plan.

    Parameters
    ----------
    masks:
        Per-instance structural masks (see :func:`structural_masks`).
    spans:
        ``(start, size)`` of each instance's contiguous port-index range.
    owner:
        Instance index of every flattened port.
    partner:
        Connected port of every flattened port (``-1`` when dangling).
    adjacency:
        Optional precomputed dependent-row lists (from the same masks/spans);
        recomputed when omitted.
    """
    if adjacency is None:
        adjacency = _dependent_rows(masks, spans, owner, partner)
    num_ports = int(owner.size)

    components = strongly_connected_components(adjacency)
    components.reverse()  # dependencies first

    ordered: List[Tuple[int, ...]] = []
    feedback: List[Tuple[int, ...]] = []
    for component in components:
        component_tuple = tuple(sorted(component))
        ordered.append(component_tuple)
        if len(component_tuple) > 1:
            feedback.append(component_tuple)
        else:
            port = component_tuple[0]
            if port in adjacency[port]:  # self-coupled port
                feedback.append(component_tuple)
    return CascadePlan(
        components=tuple(ordered), feedback=tuple(feedback), num_ports=num_ports
    )


def cascade_solve(
    matrices: Sequence[np.ndarray],
    spans: Sequence[Tuple[int, int]],
    owner: np.ndarray,
    partner: np.ndarray,
    injection_ports: np.ndarray,
    num_wavelengths: int,
) -> np.ndarray:
    """Evaluate the composed external S-matrix by topological cascading.

    Parameters mirror :func:`build_cascade_plan`; ``matrices`` holds each
    instance's ``(W, n, n)`` S-matrix data and ``injection_ports`` the
    flattened port index behind each external port.  Returns the external
    response of shape ``(W, E, E)``, identical (to round-off) to the dense
    backend's ``E.T @ (I - S C)^{-1} @ S @ E``.
    """
    masks = structural_masks(matrices)
    adjacency = _dependent_rows(masks, spans, owner, partner)
    plan = build_cascade_plan(masks, spans, owner, partner, adjacency)
    num_ports = plan.num_ports
    num_external = int(injection_ports.size)

    # ``waves`` starts as the injected right-hand side r = S E and is updated
    # in place: once a component is processed, its rows hold the solved
    # outgoing waves b, which are then pushed into downstream rows.
    waves = np.zeros((num_wavelengths, num_ports, num_external), dtype=complex)
    for column, port in enumerate(injection_ports):
        instance = int(owner[port])
        start, size = spans[instance]
        waves[:, start : start + size, column] += matrices[instance][:, :, port - start]

    feedback_set = set(plan.feedback)
    for component in plan.components:
        members = set(component)
        if len(component) == 1:
            port = component[0]
            if component in feedback_set:
                # Self-coupled port: b = r / (1 - M_pp).
                source = int(partner[port])
                instance = int(owner[source])
                start, _ = spans[instance]
                gain = matrices[instance][:, port - start, source - start]
                denominator = 1.0 - gain
                bad = (denominator == 0) | ~np.isfinite(denominator)
                if np.any(bad):
                    # Unit round-trip gain: the scalar system (1-g)x = b is
                    # singular; the minimum-norm answer is x = 0.
                    _record_degradation(
                        "self_loop",
                        "singular" if np.any(denominator == 0) else "nonfinite",
                    )
                    waves[:, port, :] /= np.where(bad, 1.0, denominator)[:, None]
                    waves[bad, port, :] = 0.0
                else:
                    waves[:, port, :] /= denominator[:, None]
        else:
            # Feedback cluster: local dense solve over the cluster's ports.
            local = {port: position for position, port in enumerate(component)}
            size_c = len(component)
            system = np.zeros((num_wavelengths, size_c, size_c), dtype=complex)
            for port in component:
                source = int(partner[port])
                if source < 0:
                    continue
                instance = int(owner[source])
                start, _ = spans[instance]
                for row in adjacency[port]:
                    if row in local:
                        system[:, local[row], local[port]] = -matrices[instance][
                            :, row - start, source - start
                        ]
            diagonal = np.arange(size_c)
            system[:, diagonal, diagonal] += 1.0
            component_list = list(component)
            waves[:, component_list, :] = solve_with_fallback(
                system, waves[:, component_list, :], site="cluster"
            )

        # Push the solved waves into every downstream dependent row.
        for port in component:
            rows = [row for row in adjacency[port] if row not in members]
            if not rows:
                continue
            source = int(partner[port])
            instance = int(owner[source])
            start, _ = spans[instance]
            rows_local = [row - start for row in rows]
            contribution = matrices[instance][:, rows_local, source - start]
            waves[:, rows, :] += contribution[:, :, None] * waves[:, port, None, :]

    return waves[:, injection_ports, :]
