"""Numerical guardrails shared by the circuit-solver backends.

A feedback cluster whose round-trip gain hits exactly 1 (a lossless
resonant loop on resonance) makes the linear system ``(I - S C) b = r``
singular; a near-singular system can blow the solve up into inf/NaN
instead.  Both used to surface as an unhandled ``LinAlgError`` or --
worse -- a silently cached non-finite S-matrix.  This module provides

``solve_with_fallback``
    ``np.linalg.solve`` that falls back to a per-wavelength least-squares
    (minimum-norm) solve on ``LinAlgError`` or a non-finite answer, and

``collect_degradations``
    a thread-local collector that callers (the solver front door) install
    so every fallback firing is reported upward and the resulting
    :class:`~repro.sim.sparams.SMatrix` can be flagged ``degraded``.

The guardrails never raise on their own: without an active collector the
events are simply dropped and the degraded numbers flow on.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List

import numpy as np

__all__ = ["collect_degradations", "solve_with_fallback"]

#: Per-thread stack of active degradation collectors (nested contexts allowed).
_DEGRADATIONS = threading.local()


@contextmanager
def collect_degradations() -> Iterator[List[Dict[str, str]]]:
    """Collect numerical-guardrail events fired by solves inside the block.

    Yields a list that receives one ``{"site": ..., "reason": ...}`` dict per
    guardrail firing (``site`` is ``"cluster"``, ``"self_loop"`` or
    ``"dense"``; ``reason`` is ``"singular"`` or ``"nonfinite"``).  Collectors
    nest: every active collector on the calling thread sees every event.
    """
    events: List[Dict[str, str]] = []
    stack = getattr(_DEGRADATIONS, "stack", None)
    if stack is None:
        stack = _DEGRADATIONS.stack = []  # type: ignore[attr-defined]
    stack.append(events)
    try:
        yield events
    finally:
        stack.remove(events)


def _record_degradation(site: str, reason: str) -> None:
    """Report one guardrail firing to every active collector on this thread."""
    for events in getattr(_DEGRADATIONS, "stack", ()):
        events.append({"site": site, "reason": reason})


def _lstsq_batched(system: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Per-batch-entry least-squares solve (the minimum-norm fallback)."""
    out = np.empty_like(rhs)
    for index in range(system.shape[0]):
        matrix = np.nan_to_num(system[index], nan=0.0, posinf=0.0, neginf=0.0)
        vector = np.nan_to_num(rhs[index], nan=0.0, posinf=0.0, neginf=0.0)
        out[index] = np.linalg.lstsq(matrix, vector, rcond=None)[0]
    return out


def solve_with_fallback(system: np.ndarray, rhs: np.ndarray, *, site: str) -> np.ndarray:
    """``np.linalg.solve`` hardened against singular / non-finite systems.

    The exact batched solve runs first.  A ``LinAlgError`` (exactly singular
    system) or a non-finite answer (near-singular blow-up, or non-finite
    inputs) falls back to a per-wavelength least-squares solve -- the
    minimum-norm answer -- and records a degradation event with the active
    :func:`collect_degradations` collectors so callers can flag the result
    instead of crashing or caching NaN.
    """
    try:
        result = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError:
        _record_degradation(site, "singular")
        return _lstsq_batched(system, rhs)
    if not np.all(np.isfinite(result)):
        _record_degradation(site, "nonfinite")
        return _lstsq_batched(system, rhs)
    return result
