"""Frequency-domain circuit evaluation (the SAX-substitute solver).

Given a validated netlist, the solver:

1. evaluates every instance's device model over the wavelength grid,
2. flattens all instance ports into one index and records which port each
   port is wired to (the connection structure ``C``) and which instance port
   backs each external port (the injection structure ``E``),
3. computes the composed response

   ``S_circuit = E.T @ (I - S @ C)^{-1} @ S @ E``

   where ``S`` is the block-diagonal matrix of all instance S-matrices.

Two backends evaluate that expression:

``dense``
    Assembles the full ``(W, P, P)`` system and batch-solves it with
    ``numpy.linalg.solve`` -- ``O(W * P^3)``.  Because ``C`` and ``E`` are
    permutation-like, the system and right-hand side are built by column
    gathers instead of matmuls, so no ``P x P`` identity or ``S @ C``
    temporary is ever materialised.
``cascade``
    The structure-aware backend (:mod:`repro.sim.cascade`): condenses the
    port-level signal-flow graph into strongly-connected components and
    evaluates the acyclic condensation in topological order, solving a small
    local dense system only for genuine feedback clusters (rings).
    Feed-forward meshes and switch fabrics never touch a global solve.
``auto``
    Picks ``dense`` for small circuits (where one vectorised solve beats the
    cascade's per-component bookkeeping) and ``cascade`` otherwise.

Both backends evaluate the same linear system and agree to well below 1e-9;
backend choice is a performance knob, never a semantic one (engine cache
keys deliberately exclude it).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._cache import CacheStats, LRUCache
from .._fingerprint import func_identity, settings_fingerprint
from ..constants import default_wavelength_grid
from ..netlist.errors import OtherSyntaxError, WrongPortError
from ..netlist.schema import Netlist, format_endpoint, parse_endpoint
from ..netlist.validation import PortSpec, validate_netlist
from .cascade import CascadePlan, build_cascade_plan, cascade_solve, structural_masks
from .registry import ModelRegistry, default_registry
from .sparams import SMatrix

__all__ = ["SOLVER_BACKENDS", "CircuitSolver", "default_solver", "evaluate_netlist"]

#: Recognised solver backend names.
SOLVER_BACKENDS: Tuple[str, ...] = ("auto", "dense", "cascade")

#: ``auto`` uses the dense backend up to this many flattened instance ports
#: (measured crossover: one vectorised global solve beats the cascade's
#: per-component bookkeeping only for the very smallest circuits).
_AUTO_DENSE_MAX_PORTS = 12


def _check_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged."""
    if backend not in SOLVER_BACKENDS:
        raise ValueError(
            f"unknown solver backend {backend!r}; choose one of {list(SOLVER_BACKENDS)}"
        )
    return backend


@dataclass
class _PortIndex:
    """Bookkeeping for the flattened list of all instance ports."""

    endpoints: List[Tuple[str, str]]
    index: Dict[Tuple[str, str], int]

    @classmethod
    def build(cls, instance_ports: Dict[str, Tuple[str, ...]]) -> "_PortIndex":
        endpoints: List[Tuple[str, str]] = []
        for name, ports in instance_ports.items():
            for port in ports:
                endpoints.append((name, port))
        index = {ep: i for i, ep in enumerate(endpoints)}
        return cls(endpoints=endpoints, index=index)

    def __len__(self) -> int:
        return len(self.endpoints)


@dataclass
class _Assembly:
    """Structural view of one netlist over the flattened port index.

    ``matrices``/``spans``/``owner`` describe the block-diagonal ``S``
    (per-instance data, contiguous port ranges, port-to-instance map);
    ``sources`` describes ``C`` as, per column ``j``, the ports ``k`` with
    ``C[k, j] = 1`` (at most one for any netlist that passes validation);
    ``external_names``/``injection_ports`` describe ``E``.
    """

    matrices: List[np.ndarray]
    spans: List[Tuple[int, int]]
    owner: np.ndarray
    sources: Dict[int, List[int]]
    external_names: List[str]
    injection_ports: np.ndarray

    @property
    def num_ports(self) -> int:
        return int(self.owner.size)

    def partner_array(self) -> Optional[np.ndarray]:
        """Per-port partner index (``-1`` = dangling), or ``None`` when any
        port has several partners (only possible on unvalidated netlists)."""
        partner = np.full(self.num_ports, -1, dtype=int)
        for column, ports in self.sources.items():
            if len(ports) != 1:
                return None
            partner[column] = ports[0]
        return partner


class CircuitSolver:
    """Evaluates netlists into circuit-level S-matrices.

    Parameters
    ----------
    registry:
        The model registry used to resolve the netlist's ``models`` section;
        defaults to :func:`repro.sim.registry.default_registry`.
    validate:
        When true (default), the netlist is validated before evaluation so
        that failures raise classified :class:`PICBenchError` subclasses.
    instance_cache_entries:
        Capacity of the per-device sub-cache: device model evaluations are
        memoised on ``(model ref, model identity, frozen settings, grid)``,
        so the many structurally repeated instances of mesh and switch-fabric
        netlists (and repeated ``evaluate`` calls on the same grid) evaluate
        each distinct device exactly once.  ``0`` disables the sub-cache.
    backend:
        Default solver backend (one of :data:`SOLVER_BACKENDS`); individual
        :meth:`evaluate` calls may override it.  All backends produce the
        same result; see the module docstring.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        validate: bool = True,
        instance_cache_entries: int = 512,
        backend: str = "auto",
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.validate = validate
        self.backend = _check_backend(backend)
        self._instance_cache: LRUCache[Tuple[str, str, str, bytes], SMatrix] = LRUCache(
            max_entries=instance_cache_entries
        )

    def instance_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-device evaluation sub-cache."""
        return self._instance_cache.stats

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
        backend: Optional[str] = None,
    ) -> SMatrix:
        """Simulate ``netlist`` and return the external S-matrix.

        ``backend`` overrides the solver's default backend for this call.
        Raises a classified :class:`PICBenchError` subclass when the netlist
        is invalid, or :class:`OtherSyntaxError` when a device model rejects
        its settings.
        """
        wavelengths = (
            default_wavelength_grid() if wavelengths is None else np.atleast_1d(np.asarray(wavelengths, dtype=float))
        )
        chosen = _check_backend(backend if backend is not None else self.backend)
        if self.validate:
            validate_netlist(netlist, self.registry, port_spec)

        assembly = self._assemble(netlist, wavelengths)
        partner = assembly.partner_array() if chosen != "dense" else None
        if chosen == "auto":
            chosen = (
                "dense"
                if partner is None or assembly.num_ports <= _AUTO_DENSE_MAX_PORTS
                else "cascade"
            )
        if chosen == "cascade" and partner is None:
            # A port wired to several partners cannot occur on a validated
            # netlist; fall back to the general dense formulation.
            chosen = "dense"

        if chosen == "cascade":
            external = cascade_solve(
                assembly.matrices,
                assembly.spans,
                assembly.owner,
                partner,
                assembly.injection_ports,
                wavelengths.size,
            )
        else:
            external = self._dense_solve(assembly, wavelengths.size)
        return SMatrix(wavelengths, tuple(assembly.external_names), external)

    def cascade_plan(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> CascadePlan:
        """Return the cascade backend's evaluation plan for ``netlist``.

        Exposes the condensation structure (topological component order,
        feedback clusters) for introspection, tests and benchmarks.
        """
        wavelengths = (
            default_wavelength_grid() if wavelengths is None else np.atleast_1d(np.asarray(wavelengths, dtype=float))
        )
        if self.validate:
            validate_netlist(netlist, self.registry, port_spec)
        assembly = self._assemble(netlist, wavelengths)
        partner = assembly.partner_array()
        if partner is None:
            raise ValueError(
                "cascade plan undefined: a port is connected to several partners"
            )
        masks = structural_masks(assembly.matrices)
        return build_cascade_plan(masks, assembly.spans, assembly.owner, partner)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _assemble(self, netlist: Netlist, wavelengths: np.ndarray) -> _Assembly:
        """Evaluate instances and build the structural view of the netlist."""
        instance_matrices = self._evaluate_instances(netlist, wavelengths)
        instance_ports = {name: sm.ports for name, sm in instance_matrices.items()}
        port_index = _PortIndex.build(instance_ports)

        matrices: List[np.ndarray] = []
        spans: List[Tuple[int, int]] = []
        owner = np.empty(len(port_index), dtype=int)
        start = 0
        for instance_number, sm in enumerate(instance_matrices.values()):
            size = sm.num_ports
            matrices.append(sm.data)
            spans.append((start, size))
            owner[start : start + size] = instance_number
            start += size

        sources = self._connection_sources(netlist, port_index)
        external_names, injection_ports = self._injection_ports(netlist, port_index)
        return _Assembly(
            matrices=matrices,
            spans=spans,
            owner=owner,
            sources=sources,
            external_names=external_names,
            injection_ports=injection_ports,
        )

    def _evaluate_instances(
        self, netlist: Netlist, wavelengths: np.ndarray
    ) -> Dict[str, SMatrix]:
        matrices: Dict[str, SMatrix] = {}
        grid_bytes = np.ascontiguousarray(wavelengths).tobytes()
        for name, inst in netlist.instances.items():
            ref = netlist.models.get(inst.component, inst.component)
            info = self.registry.get(ref)
            key = (
                ref,
                # The function identity guards against a re-registered model
                # with the same name silently serving stale results.
                func_identity(info.func),
                settings_fingerprint(inst.settings),
                grid_bytes,
            )
            cached = self._instance_cache.get(key)
            if cached is not None:
                matrices[name] = cached
                continue
            try:
                smatrix = info.evaluate(wavelengths, **inst.settings)
            except (TypeError, ValueError) as exc:
                raise OtherSyntaxError(
                    f"instance {name!r} (model {ref!r}) rejected its settings "
                    f"{inst.settings!r}: {exc}"
                ) from exc
            self._instance_cache.put(key, smatrix)
            matrices[name] = smatrix
        return matrices

    def _dense_solve(self, assembly: _Assembly, num_wavelengths: int) -> np.ndarray:
        """Batched global solve of ``(I - S C) b = S E`` (the dense backend)."""
        num_ports = assembly.num_ports
        block = np.zeros((num_wavelengths, num_ports, num_ports), dtype=complex)
        for data, (start, size) in zip(assembly.matrices, assembly.spans):
            block[:, start : start + size, start : start + size] = data

        # system = I - S @ C, built without the matmul: C is permutation-like,
        # so column j of S @ C is column partner(j) of S (zero when dangling).
        system = np.zeros_like(block)
        for column, ports in assembly.sources.items():
            for source in ports:
                system[:, :, column] += block[:, :, source]
        np.negative(system, out=system)
        diagonal = np.arange(num_ports)
        system[:, diagonal, diagonal] += 1.0

        # rhs = S @ E: E's columns are one-hot on the injected instance ports.
        rhs = block[:, :, assembly.injection_ports]
        interior = np.linalg.solve(system, rhs)
        # external = E.T @ interior: a row gather for the same reason.
        return interior[:, assembly.injection_ports, :]

    @staticmethod
    def _connection_sources(
        netlist: Netlist, port_index: _PortIndex
    ) -> Dict[int, List[int]]:
        """Connection structure: per column ``j``, ports ``k`` with ``C[k, j] = 1``."""
        pairs = set()
        for key, value in netlist.connections.items():
            a = parse_endpoint(key)
            b = parse_endpoint(value)
            for endpoint, raw in ((a, key), (b, value)):
                if endpoint not in port_index.index:
                    raise WrongPortError(
                        f"connection endpoint {raw!r} does not correspond to any "
                        "instance port"
                    )
            ia = port_index.index[a]
            ib = port_index.index[b]
            pairs.add((ia, ib))
            pairs.add((ib, ia))
        sources: Dict[int, List[int]] = {}
        for source, column in sorted(pairs):
            sources.setdefault(column, []).append(source)
        return sources

    @staticmethod
    def _injection_ports(
        netlist: Netlist, port_index: _PortIndex
    ) -> Tuple[List[str], np.ndarray]:
        """External port names and the flattened instance port behind each."""
        external_names = list(netlist.ports)
        injection_ports = np.empty(len(external_names), dtype=int)
        for column, ext_name in enumerate(external_names):
            endpoint = parse_endpoint(netlist.ports[ext_name])
            if endpoint not in port_index.index:
                raise WrongPortError(
                    f"external port {ext_name!r} maps to "
                    f"{format_endpoint(*endpoint)!r} which is not an instance port"
                )
            injection_ports[column] = port_index.index[endpoint]
        return external_names, injection_ports


# ----------------------------------------------------------------------
# Module-level default solver
# ----------------------------------------------------------------------
_DEFAULT_SOLVER: Optional[CircuitSolver] = None
_DEFAULT_SOLVER_LOCK = threading.Lock()


def default_solver() -> CircuitSolver:
    """The process-wide default :class:`CircuitSolver` (default registry).

    Shared by every :func:`evaluate_netlist` call that does not pass its own
    registry, so repeated convenience-API calls hit one warm per-device
    instance cache instead of rebuilding an empty solver each time.
    """
    global _DEFAULT_SOLVER
    with _DEFAULT_SOLVER_LOCK:
        if _DEFAULT_SOLVER is None:
            _DEFAULT_SOLVER = CircuitSolver()
        return _DEFAULT_SOLVER


def evaluate_netlist(
    netlist: Netlist,
    wavelengths: Optional[np.ndarray] = None,
    *,
    registry: Optional[ModelRegistry] = None,
    port_spec: Optional[PortSpec] = None,
    backend: Optional[str] = None,
) -> SMatrix:
    """Convenience wrapper: evaluate ``netlist`` with the default solver.

    Calls without a custom ``registry`` share the module-level
    :func:`default_solver` (and its instance cache); passing a registry
    builds a dedicated solver for that call.
    """
    solver = default_solver() if registry is None else CircuitSolver(registry=registry)
    return solver.evaluate(netlist, wavelengths, port_spec=port_spec, backend=backend)
