"""Frequency-domain circuit evaluation (the SAX-substitute solver).

Given a validated netlist, the solver:

1. evaluates every instance's device model over the wavelength grid (served
   from a per-device LRU sub-cache),
2. fetches -- or compiles and caches -- the netlist's
   :class:`~repro.sim.plan.CompiledCircuit`: the flattened port index,
   connection structure, SCC condensation and level-batched execution
   schedule, keyed by a topology fingerprint so structurally identical
   netlists (the common case: pass@k samples mutate settings far more often
   than topology) compile exactly once,
3. executes the compiled plan against the concrete instance S-matrices,
   computing the composed response

   ``S_circuit = E.T @ (I - S @ C)^{-1} @ S @ E``

   where ``S`` is the block-diagonal matrix of all instance S-matrices.

Two executors evaluate that expression (:mod:`repro.sim.plan`):

``dense``
    Assembles the full ``(W, P, P)`` system and batch-solves it with
    ``numpy.linalg.solve`` -- ``O(W * P^3)``.  Because ``C`` and ``E`` are
    permutation-like, the system and right-hand side are built by column
    gathers instead of matmuls, so no ``P x P`` identity or ``S @ C``
    temporary is ever materialised.
``cascade``
    The structure-aware executor: evaluates the acyclic condensation of the
    port-level signal-flow graph in topological *levels* -- each level is one
    fancy-indexed multiply-add plus a segment sum over all of the level's
    edges -- solving a small local dense system only for genuine feedback
    clusters (rings).  Feed-forward meshes and switch fabrics never touch a
    global solve.  (:mod:`repro.sim.cascade` keeps the original per-port
    reference implementation the test suite checks the executor against.)
``auto``
    Picks ``dense`` for small circuits (where one vectorised solve beats the
    cascade's per-component bookkeeping) and ``cascade`` otherwise.

Both executors evaluate the same linear system and agree to well below 1e-9;
backend choice is a performance knob, never a semantic one (engine cache
keys deliberately exclude it, and the plan cache is shared by both).
``max_wavelength_chunk`` bounds the peak size of the ``(W, P, E)`` execution
workspace by splitting the solve over the wavelength axis.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._cache import CacheStats, LRUCache
from .._fingerprint import func_identity, settings_fingerprint
from .._locks import FileLock
from ..constants import normalize_wavelengths
from ..netlist.errors import OtherSyntaxError
from ..netlist.schema import Instance, Netlist
from ..netlist.validation import PortSpec, validate_netlist
from .batch import (
    BatchStats,
    SettingsBatch,
    batch_evaluate_model,
    check_override_names,
    fuse_sample_matrices,
    fuse_sample_stacks,
    merge_settings,
)
from .cascade import CascadePlan, structural_masks
from .guardrails import collect_degradations
from .plan import (
    CompiledCircuit,
    build_stacks,
    compile_netlist,
    execute_cascade,
    execute_dense,
    topology_fingerprint,
)
from .registry import ModelRegistry, UnknownModelError, default_registry
from .sparams import SMatrix

__all__ = ["SOLVER_BACKENDS", "CircuitSolver", "default_solver", "evaluate_netlist"]

#: Recognised solver backend names.
SOLVER_BACKENDS: Tuple[str, ...] = ("auto", "dense", "cascade")

#: ``auto`` uses the dense backend up to this many flattened instance ports
#: (measured crossover: one vectorised global solve beats the cascade's
#: per-component bookkeeping only for the very smallest circuits).
_AUTO_DENSE_MAX_PORTS = 12

#: Bound on the per-instance memo dictionaries (function identities and
#: settings fingerprints); exceeding it clears the memo, it never grows past
#: this size.
_MEMO_MAX_ENTRIES = 8192

#: Filename prefix of spilled compiled plans under ``plan_dir``.
_PLAN_PREFIX = "plan-"

#: Seconds a plan-spill writer waits for a concurrent writer of the same
#: topology before falling back to its own (atomic, redundant) write.
_PLAN_LOCK_TIMEOUT = 5.0

#: Target bytes of one fused executor pass's working set (coefficient
#: array, workspace, contribution buffer, output block).  Batched execution
#: fuses at most as many samples per pass as fit the budget: fusing more
#: spills the last-level cache and measurably regresses below the
#: per-sample loop on large fabrics, while small circuits fuse whole
#: batches.  Purely a performance knob -- results are identical for any
#: passes split.
_BATCH_FUSION_TARGET_BYTES = 16 << 20


def _check_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged."""
    if backend not in SOLVER_BACKENDS:
        raise ValueError(
            f"unknown solver backend {backend!r}; choose one of {list(SOLVER_BACKENDS)}"
        )
    return backend


def _check_chunk(max_wavelength_chunk: Optional[int]) -> Optional[int]:
    """Validate the wavelength-chunk knob (``None`` = no chunking)."""
    if max_wavelength_chunk is None:
        return None
    chunk = int(max_wavelength_chunk)
    if chunk < 1:
        raise ValueError(
            f"max_wavelength_chunk must be a positive integer or None, got {max_wavelength_chunk!r}"
        )
    return chunk


@dataclass(frozen=True)
class _InstanceRecord:
    """One cached device evaluation: the S-matrix plus derived structure.

    The structural mask (and its raw bytes, part of the topology
    fingerprint) and the exact-symmetry flag (gates the reciprocity-cover
    executor) are computed once per distinct device evaluation rather than
    on every ``evaluate`` call.
    """

    smatrix: SMatrix
    mask: np.ndarray
    mask_bytes: bytes
    symmetric: bool


class CircuitSolver:
    """Evaluates netlists into circuit-level S-matrices.

    Parameters
    ----------
    registry:
        The model registry used to resolve the netlist's ``models`` section;
        defaults to :func:`repro.sim.registry.default_registry`.
    validate:
        When true (default), the netlist is validated before evaluation so
        that failures raise classified :class:`PICBenchError` subclasses.
    instance_cache_entries:
        Capacity of the per-device sub-cache: device model evaluations are
        memoised on ``(model ref, model identity, frozen settings, grid)``,
        so the many structurally repeated instances of mesh and switch-fabric
        netlists (and repeated ``evaluate`` calls on the same grid) evaluate
        each distinct device exactly once.  ``0`` disables the sub-cache.
    backend:
        Default solver backend (one of :data:`SOLVER_BACKENDS`); individual
        :meth:`evaluate` calls may override it.  All backends produce the
        same result; see the module docstring.
    plan_cache_entries:
        Capacity of the compiled-plan cache, keyed by
        :func:`~repro.sim.plan.topology_fingerprint` (instance models +
        structural masks + connections + external ports, invalidated by
        ``func_identity`` like the instance cache).  Repeated evaluations of
        structurally identical netlists skip assembly, condensation and
        schedule construction entirely.  ``0`` disables the cache (every
        call recompiles -- the cold path).
    max_wavelength_chunk:
        When set, execution splits the wavelength axis into chunks of at
        most this many points, bounding the peak ``(W, P, E)`` / ``(W, P,
        P)`` workspace on large grids.  ``None`` (default) solves the whole
        grid at once.  Purely a memory/performance knob: results are
        identical.
    plan_dir:
        Optional directory for the disk-backed plan-cache spill: every
        compiled plan is additionally pickled (atomically, under an advisory
        cross-process file lock) to ``plan_dir/plan-<fingerprint>.pkl``, and
        a memory-tier miss tries the spill before recompiling.  This is what
        lets process-sharded sweep workers share structure work: topology
        fingerprints are content-derived and model identities are
        ``module.qualname`` strings, so a plan spilled by one process is
        valid in any other process running the same code.  The directory is
        trusted (pickle is loaded from it) -- point it only at paths this
        run controls, like the sweep's cache directory.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        validate: bool = True,
        instance_cache_entries: int = 512,
        backend: str = "auto",
        plan_cache_entries: int = 128,
        max_wavelength_chunk: Optional[int] = None,
        plan_dir: Optional[Path | str] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.validate = validate
        self.backend = _check_backend(backend)
        self.max_wavelength_chunk = _check_chunk(max_wavelength_chunk)
        self.plan_dir = Path(plan_dir) if plan_dir is not None else None
        if self.plan_dir is not None:
            try:
                self.plan_dir.mkdir(parents=True, exist_ok=True)
            except (FileExistsError, NotADirectoryError) as exc:
                raise ValueError(
                    f"plan_dir {str(self.plan_dir)!r} exists and is not a directory"
                ) from exc
        self._instance_cache: LRUCache[Tuple[str, str, str, bytes], _InstanceRecord] = (
            LRUCache(max_entries=instance_cache_entries)
        )
        self._plan_cache: LRUCache[str, CompiledCircuit] = LRUCache(
            max_entries=plan_cache_entries
        )
        # Structural-validation verdicts: a (fingerprint, port spec) pair
        # that validated once never needs re-validation -- the fingerprint
        # covers everything validate_netlist inspects (validation is
        # settings-independent).
        self._validated: LRUCache[Tuple[str, Optional[Tuple[int, int]]], bool] = (
            LRUCache(max_entries=max(4 * plan_cache_entries, 64))
        )
        # Per-instance key memos (see _instance_key): function identities
        # keyed by (ref, registry version), settings fingerprints keyed by
        # Instance object id with an equality guard.  Guarded by a lock: the
        # solver is shared process-wide through default_solver() and by
        # every parallel sweep worker of one engine, and plain dicts with a
        # clear-on-overflow policy are not safe to mutate concurrently
        # (mirroring the PR 2 fix of the suite module's _CACHE).
        self._memo_lock = threading.Lock()
        self._func_id_memo: Dict[Tuple[str, int], str] = {}
        self._settings_memo: Dict[int, Tuple[Dict[str, object], str]] = {}
        # Batched-evaluation override-fingerprint memo: override mapping id
        # -> (shallow content snapshot, fingerprint); see _override_fp.
        self._override_fp_memo: Dict[int, Tuple[Dict[str, object], str]] = {}
        self._batch_stats = BatchStats()
        # Numerical-guardrail firings (see repro.sim.guardrails): counted
        # under the memo lock, surfaced through degradation_stats().
        self._degradations: Dict[str, int] = {"singular": 0, "nonfinite": 0}
        # Stacked instance matrices per (plan, concrete instance arrays).
        # Deliberately small: it only pays off for repeated evaluation of
        # content-identical netlists (instance-cache hits return the same
        # arrays), while settings-mutating sweeps produce fresh arrays per
        # call -- a large memo would just pin dead copies (see _stacks_for).
        self._stack_memo: LRUCache[
            Tuple[str, Tuple[int, ...]], Tuple[List[np.ndarray], List[np.ndarray]]
        ] = LRUCache(max_entries=8)

    def instance_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-device evaluation sub-cache."""
        return self._instance_cache.stats

    def plan_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the compiled-plan cache."""
        return self._plan_cache.stats

    def batch_stats(self) -> BatchStats:
        """Counters of the batched-execution path (see :class:`BatchStats`)."""
        return self._batch_stats

    def degradation_stats(self) -> Dict[str, int]:
        """Numerical-guardrail firings: least-squares fallback solves by reason."""
        with self._memo_lock:
            counts = dict(self._degradations)
        counts["total"] = counts["singular"] + counts["nonfinite"]
        return counts

    def _count_degradations(self, events: Sequence[Dict[str, str]]) -> bool:
        """Fold collected guardrail events into the counters; True when any."""
        if not events:
            return False
        with self._memo_lock:
            for event in events:
                reason = event.get("reason", "nonfinite")
                self._degradations[reason] = self._degradations.get(reason, 0) + 1
        return True

    def clear_plan_cache(self) -> None:
        """Drop every compiled plan, cached validation verdict and stacked
        matrices (stats are kept); used by benchmarks to time the cold
        structure path.  Spilled plans on disk (``plan_dir``) are left in
        place -- they belong to the shared directory, not this solver."""
        self._plan_cache.clear()
        self._validated.clear()
        self._stack_memo.clear()

    # ------------------------------------------------------------------
    # Plan cache: memory tier + optional disk spill
    # ------------------------------------------------------------------
    def _plan_path(self, fingerprint: str) -> Optional[Path]:
        if self.plan_dir is None:
            return None
        return self.plan_dir / f"{_PLAN_PREFIX}{fingerprint}.pkl"

    def _plan_lookup(self, fingerprint: str) -> Optional[CompiledCircuit]:
        """Fetch a compiled plan: memory first, then the disk spill."""
        compiled = self._plan_cache.get(fingerprint)
        if compiled is not None:
            return compiled
        path = self._plan_path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                compiled = pickle.load(handle)
        except Exception:  # noqa: BLE001 - corrupt/truncated spill: recompile
            return None
        if not isinstance(compiled, CompiledCircuit) or compiled.fingerprint != fingerprint:
            return None  # foreign or stale file under the expected name
        with self._memo_lock:
            self._plan_cache.stats.disk_hits += 1
        self._plan_cache.put(fingerprint, compiled)
        return compiled

    def _plan_store(self, fingerprint: str, compiled: CompiledCircuit) -> None:
        """Cache a freshly compiled plan in memory and spill it to disk."""
        self._plan_cache.put(fingerprint, compiled)
        path = self._plan_path(fingerprint)
        if path is None:
            return
        # Same protocol as the simulation cache's .npz writes: serialise
        # concurrent same-key writers on an advisory lock, skip the write
        # when another process finished it first, and degrade to the plain
        # atomic write when the lock cannot be taken.  Disk trouble must
        # never fail the evaluation -- the memory tier already has the plan.
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        lock = FileLock(path.with_suffix(".lock"), timeout=_PLAN_LOCK_TIMEOUT)
        locked = lock.acquire()
        try:
            if locked and path.exists():
                return
            tmp_name = None
            try:
                handle, tmp_name = tempfile.mkstemp(
                    prefix=_PLAN_PREFIX, suffix=".tmp", dir=str(path.parent)
                )
                with os.fdopen(handle, "wb") as tmp:
                    pickle.dump(compiled, tmp, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except (OSError, pickle.PicklingError):
                if tmp_name is not None:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
        finally:
            if locked:
                lock.release()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
        backend: Optional[str] = None,
    ) -> SMatrix:
        """Simulate ``netlist`` and return the external S-matrix.

        ``backend`` overrides the solver's default backend for this call.
        Raises a classified :class:`PICBenchError` subclass when the netlist
        is invalid, or :class:`OtherSyntaxError` when a device model rejects
        its settings.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        chosen = _check_backend(backend if backend is not None else self.backend)
        compiled, matrices, symmetric = self._compiled(netlist, wavelengths, port_spec)
        chosen = self._choose_backend(compiled, chosen)
        with collect_degradations() as events:
            data = self._execute(compiled, matrices, wavelengths.size, chosen, symmetric)
        degraded = self._count_degradations(events)
        return SMatrix(wavelengths, compiled.external_names, data, degraded=degraded)

    def evaluate_batch(
        self,
        netlist: Netlist,
        settings_batch: Sequence[SettingsBatch],
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
        backend: Optional[str] = None,
        merge: bool = True,
    ) -> List[SMatrix]:
        """Evaluate ``S`` settings samples of one netlist in fused executor passes.

        ``settings_batch`` holds one mapping per sample: instance name to the
        settings overrides of that sample (merged into the instance's base
        settings by default; ``merge=False`` substitutes them wholesale).
        Device models are evaluated once per *distinct* settings variant --
        vectorised through array parameters where the model supports them,
        loop-and-stack otherwise -- and samples are grouped by topology
        fingerprint: every group runs the level-batched cascade (or dense)
        executor exactly once with the batch axis fused into the wavelength
        axis, so ``S`` structurally identical samples cost one executor pass
        instead of ``S``.  Results are returned in sample order and are
        numerically identical (to solver round-off) to the per-sample loop
        ``[evaluate(apply_settings(netlist, s)) for s in settings_batch]``.

        Invalid settings raise the same classified errors the per-sample
        loop raises; when several samples are invalid, which sample's error
        surfaces first may differ from strict per-sample order (instances
        are checked instance-major).
        """
        if not settings_batch:
            return []
        wavelengths = normalize_wavelengths(wavelengths)
        chosen_base = _check_backend(backend if backend is not None else self.backend)
        num_samples = len(settings_batch)
        num_points = int(wavelengths.size)
        grid_bytes = np.ascontiguousarray(wavelengths).tobytes()
        spec_key = (
            (port_spec.num_inputs, port_spec.num_outputs)
            if port_spec is not None
            else None
        )
        for overrides in settings_batch:
            check_override_names(netlist, overrides)

        # Resolve per-instance (ref, function identity) once -- overrides can
        # never change an instance's component or the models section.
        try:
            meta = [
                (name, inst, *self._instance_key(netlist, inst))
                for name, inst in netlist.instances.items()
            ]
        except (UnknownModelError, TypeError):
            if self.validate:
                validate_netlist(netlist, self.registry, port_spec)
            raise

        # Per instance: the distinct settings variants of the batch and each
        # sample's variant index.  Cache keys are deduplicated *globally* --
        # the dozens of same-device instances of a mesh or fabric share one
        # key per settings variant -- so the instance cache is probed once
        # per unique key per call (evaluate's one probe per consumer, with
        # the repeated consumers collapsed).
        all_hit = True
        probed: Dict[Tuple[str, str, str, bytes], Optional[_InstanceRecord]] = {}
        variant_keys: List[List[Tuple[str, str, str, bytes]]] = []
        variant_overrides: List[List[Optional[Mapping[str, object]]]] = []
        variant_of_sample: List[List[int]] = []
        for name, inst, ref, func_id in meta:
            keys: List[Tuple[str, str, str, bytes]] = []
            overrides_list: List[Optional[Mapping[str, object]]] = []
            index_of_fp: Dict[str, int] = {}
            sample_map: List[int] = []
            for overrides in settings_batch:
                override = overrides.get(name) if overrides else None
                fingerprint = self._merged_settings_fp(inst, override, merge)
                index = index_of_fp.get(fingerprint)
                if index is None:
                    index = len(keys)
                    index_of_fp[fingerprint] = index
                    key = (ref, func_id, fingerprint, grid_bytes)
                    keys.append(key)
                    overrides_list.append(override)
                    if key not in probed:
                        probed[key] = self._instance_cache.peek(key)
                        if probed[key] is None:
                            all_hit = False
                sample_map.append(index)
            variant_keys.append(keys)
            variant_overrides.append(overrides_list)
            variant_of_sample.append(sample_map)

        validated = False
        if self.validate and not all_hit:
            # Structural validation is settings-independent, so validating
            # the base netlist covers every sample of the batch.
            validate_netlist(netlist, self.registry, port_spec)
            validated = True

        # Evaluate every missing settings variant, instance-major; variants
        # already resolved (by the cache or by an earlier same-key instance
        # of this call) are reused directly.
        resolved: Dict[Tuple[str, str, str, bytes], _InstanceRecord] = {}
        records_by_variant: List[List[_InstanceRecord]] = []
        vectorised_evals = 0
        looped_evals = 0
        for (name, inst, ref, func_id), keys, overrides_list in zip(
            meta, variant_keys, variant_overrides
        ):
            missing = [
                index
                for index, key in enumerate(keys)
                if key not in resolved and probed.get(key) is None
            ]
            if missing:
                info = self.registry.get(ref)
                variants = [
                    self._merged_one(inst, overrides_list[index], merge)
                    for index in missing
                ]
                try:
                    smatrices, vectorised = batch_evaluate_model(
                        info, wavelengths, variants
                    )
                except (TypeError, ValueError) as exc:
                    # Surface the first failing variant with the same
                    # classified error a per-sample evaluation would raise.
                    failing = variants[0]
                    for settings in variants:
                        try:
                            info.evaluate(wavelengths, **settings)
                        except (TypeError, ValueError):
                            failing = settings
                            break
                    raise OtherSyntaxError(
                        f"instance {name!r} (model {ref!r}) rejected its settings "
                        f"{failing!r}: {exc}"
                    ) from exc
                if vectorised:
                    vectorised_evals += len(missing)
                else:
                    looped_evals += len(missing)
                for index, smatrix in zip(missing, smatrices):
                    resolved[keys[index]] = self._record_from_smatrix(
                        smatrix, keys[index]
                    )
            variant_records: List[_InstanceRecord] = []
            for index, key in enumerate(keys):
                record = resolved.get(key)
                if record is None:
                    record = self._instance_cache.get(key)
                if record is None:  # evicted between put and get (tiny caches)
                    record = self._evaluate_instance(
                        name,
                        Instance(
                            inst.component,
                            self._merged_one(inst, overrides_list[index], merge),
                        ),
                        ref,
                        key,
                        wavelengths,
                    )
                resolved[key] = record
                variant_records.append(record)
            records_by_variant.append(variant_records)

        def record_of(index: int, sample: int) -> _InstanceRecord:
            """The cached record instance ``index`` uses for ``sample``."""
            return records_by_variant[index][variant_of_sample[index][sample]]

        def sample_fingerprint(sample: int) -> str:
            """Topology fingerprint of one sample (its masks are the only
            sample-dependent input)."""
            return topology_fingerprint(
                netlist,
                (
                    (
                        name,
                        inst.component,
                        ref,
                        func_id,
                        record_of(index, sample).smatrix.ports,
                        record_of(index, sample).mask_bytes,
                    )
                    for index, (name, inst, ref, func_id) in enumerate(meta)
                ),
            )

        # Group samples by topology fingerprint: a draw that flips a
        # structural mask (e.g. a coupling hitting exactly zero) compiles --
        # and executes -- separately from the common-structure group.  The
        # overwhelmingly common case -- every variant of every instance
        # shares one structural mask -- needs no per-sample work at all.
        groups: Dict[str, List[int]] = {}
        masks_uniform = all(
            all(
                record.mask_bytes == variants[0].mask_bytes
                for record in variants[1:]
            )
            for variants in records_by_variant
        )
        if masks_uniform:
            groups[sample_fingerprint(0)] = list(range(num_samples))
        else:
            # The fingerprint only depends on a sample through its mask
            # signature, so it is hashed once per distinct signature.
            fingerprint_of_signature: Dict[Tuple[bytes, ...], str] = {}
            for sample in range(num_samples):
                signature = tuple(
                    record_of(index, sample).mask_bytes for index in range(len(meta))
                )
                fingerprint = fingerprint_of_signature.get(signature)
                if fingerprint is None:
                    fingerprint = sample_fingerprint(sample)
                    fingerprint_of_signature[signature] = fingerprint
                groups.setdefault(fingerprint, []).append(sample)

        if self.validate:
            for fingerprint in groups:
                if not validated and self._validated.get((fingerprint, spec_key)) is None:
                    validate_netlist(netlist, self.registry, port_spec)
                    validated = True
                self._validated.put((fingerprint, spec_key), True)

        # One pass over the (deduplicated) records decides symmetry for the
        # common all-symmetric case; only mixed batches need per-group work.
        all_symmetric = all(record.symmetric for record in resolved.values())

        out: List[Optional[SMatrix]] = [None] * num_samples
        executor_passes = 0
        for fingerprint, sample_ids in groups.items():
            compiled = self._plan_lookup(fingerprint)
            if compiled is None:
                first = sample_ids[0]
                compiled = compile_netlist(
                    netlist,
                    {
                        name: record_of(index, first).smatrix
                        for index, (name, _, _, _) in enumerate(meta)
                    },
                    masks=[record_of(index, first).mask for index in range(len(meta))],
                    fingerprint=fingerprint,
                    instance_refs=tuple(ref for _, _, ref, _ in meta),
                    func_identities=tuple(func_id for _, _, _, func_id in meta),
                )
                self._plan_store(fingerprint, compiled)
            chosen = self._choose_backend(compiled, chosen_base)
            symmetric = all_symmetric or all(
                record_of(index, sample).symmetric
                for index in range(len(meta))
                for sample in sample_ids
            )
            per_pass = self._samples_per_pass(compiled, num_points, symmetric)
            for start in range(0, len(sample_ids), per_pass):
                pass_ids = sample_ids[start : start + per_pass]
                executor_passes += 1
                sample_matrices = [
                    [record_of(index, sample).smatrix.data for index in range(len(meta))]
                    for sample in pass_ids
                ]
                fused_points = len(pass_ids) * num_points
                with collect_degradations() as events:
                    if chosen == "cascade" and compiled.stack_members:
                        # One deduplicated copy pass: fuse straight into the
                        # executor's stacks, sharing rows across the
                        # same-device instances of meshes and fabrics.
                        # Blocks are capped at one sample's grid width: the
                        # per-sample block size is what the executor's
                        # cache-residency targets were tuned for, and letting
                        # a fused pass widen the working set measurably
                        # regresses it.
                        matrices, stacks, stack_positions = fuse_sample_stacks(
                            compiled.stack_members, sample_matrices, num_points
                        )
                        max_block = (
                            num_points
                            if self.max_wavelength_chunk is None
                            else min(num_points, self.max_wavelength_chunk)
                        )
                        data = execute_cascade(
                            compiled,
                            matrices,
                            fused_points,
                            max_block=max_block,
                            symmetric=symmetric,
                            stacks=stacks,
                            stack_positions=stack_positions,
                        )
                    else:
                        data = self._execute(
                            compiled,
                            fuse_sample_matrices(sample_matrices, num_points),
                            fused_points,
                            chosen,
                            symmetric,
                            memo_stacks=False,
                        )
                # A fused pass solves every sample in one system, so a
                # guardrail firing is attributed to all of the pass's samples.
                degraded = self._count_degradations(events)
                data = data.reshape(
                    len(pass_ids), num_points, compiled.num_external, compiled.num_external
                )
                for position, sample in enumerate(pass_ids):
                    # Copy each sample out of the fused pass buffer: a
                    # caller (or a cache) retaining one sample must not pin
                    # the whole pass's output.
                    out[sample] = SMatrix(
                        wavelengths,
                        compiled.external_names,
                        data[position].copy(),
                        degraded=degraded,
                    )

        with self._memo_lock:
            self._batch_stats.calls += 1
            self._batch_stats.samples += num_samples
            self._batch_stats.executor_passes += executor_passes
            self._batch_stats.vectorised_model_evals += vectorised_evals
            self._batch_stats.looped_model_evals += looped_evals
        assert all(smatrix is not None for smatrix in out)
        return out  # type: ignore[return-value]

    def _samples_per_pass(
        self, compiled: CompiledCircuit, num_points: int, symmetric: bool
    ) -> int:
        """How many samples one fused executor pass should carry.

        Derived from the compiled schedule's per-sample working set
        (coefficient rows, compacted workspace rows, contribution buffer
        and output block) against :data:`_BATCH_FUSION_TARGET_BYTES`:
        fusing beyond the last-level cache hurts more than the saved
        per-pass overhead on large fabrics, while small circuits fuse
        whole batches.
        """
        groups = (
            compiled.cover_groups
            if symmetric and compiled.cover_groups is not None
            else compiled.groups
        )
        if not groups:
            return max(1, _BATCH_FUSION_TARGET_BYTES // max(1, 16 * num_points))
        cells_per_wavelength = sum(
            group.num_edges
            + (group.num_rows + group.max_push_edges) * group.workspace_cols
            for group in groups
        ) + 2 * compiled.num_external * compiled.num_external
        per_sample_bytes = 16 * num_points * max(1, cells_per_wavelength)
        return max(1, _BATCH_FUSION_TARGET_BYTES // per_sample_bytes)

    def compile(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> CompiledCircuit:
        """Compile ``netlist`` (or fetch its cached plan) without executing.

        Exposes the compiled structure -- port index, condensation, level
        schedule -- for introspection, tests and benchmarks; :meth:`evaluate`
        reuses the exact same cached artifact.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        compiled, _, _ = self._compiled(netlist, wavelengths, port_spec)
        return compiled

    def cascade_plan(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> CascadePlan:
        """Return the cascade backend's evaluation plan for ``netlist``.

        A thin view over :meth:`compile`: exposes the condensation structure
        (topological component order, feedback clusters) of the shared
        :class:`~repro.sim.plan.CompiledCircuit`, so a subsequent
        :meth:`evaluate` on the same topology is a plan-cache hit.
        """
        compiled = self.compile(netlist, wavelengths, port_spec=port_spec)
        if compiled.plan is None:
            raise ValueError(
                "cascade plan undefined: a port is connected to several partners"
            )
        return compiled.plan

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _choose_backend(self, compiled: CompiledCircuit, chosen: str) -> str:
        """Resolve ``auto`` and the multi-partner fallback for one plan."""
        if chosen == "auto":
            chosen = (
                "dense"
                if not compiled.supports_cascade
                or compiled.num_ports <= _AUTO_DENSE_MAX_PORTS
                else "cascade"
            )
        if chosen == "cascade" and not compiled.supports_cascade:
            # A port wired to several partners cannot occur on a validated
            # netlist; fall back to the general dense formulation.
            chosen = "dense"
        return chosen

    def _execute(
        self,
        compiled: CompiledCircuit,
        matrices: List[np.ndarray],
        num_wavelengths: int,
        chosen: str,
        symmetric: bool,
        *,
        memo_stacks: bool = True,
    ) -> np.ndarray:
        """Run the chosen executor, bounding the wavelength axis if configured.

        ``memo_stacks=False`` skips the stacked-matrix memo: batch-fused
        matrices are freshly allocated per call, so memoising them would only
        pin dead ``B``-times-larger copies in the LRU.
        """
        chunk = self.max_wavelength_chunk
        if chosen == "cascade":
            # The cascade executor blocks the wavelength axis internally
            # (cache-residency); the knob only caps its block size.
            return execute_cascade(
                compiled,
                matrices,
                num_wavelengths,
                max_block=chunk,
                symmetric=symmetric,
                stacks=self._stacks_for(compiled, matrices) if memo_stacks else None,
            )
        if chunk is None or num_wavelengths <= chunk:
            return execute_dense(compiled, matrices, num_wavelengths)
        num_external = compiled.num_external
        out = np.empty((num_wavelengths, num_external, num_external), dtype=complex)
        for lo in range(0, num_wavelengths, chunk):
            hi = min(lo + chunk, num_wavelengths)
            out[lo:hi] = execute_dense(
                compiled, [data[lo:hi] for data in matrices], hi - lo
            )
        return out

    def _stacks_for(
        self, compiled: CompiledCircuit, matrices: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Memo of :func:`~repro.sim.plan.build_stacks` per concrete inputs.

        Keyed by ``(plan fingerprint, instance array identities)``; each
        entry holds strong references to the arrays it was built from, so a
        live entry's ids can never be recycled by other arrays -- an
        instance-cache eviction simply misses and rebuilds.
        """
        key = (compiled.fingerprint, tuple(map(id, matrices)))
        entry = self._stack_memo.get(key)
        if entry is not None:
            return entry[1]
        stacks = build_stacks(compiled, matrices)
        self._stack_memo.put(key, (list(matrices), stacks))
        return stacks

    def _compiled(
        self,
        netlist: Netlist,
        wavelengths: np.ndarray,
        port_spec: Optional[PortSpec] = None,
    ) -> Tuple[CompiledCircuit, List[np.ndarray], bool]:
        """Resolve the netlist's compiled plan and its instance matrix data.

        Evaluates (or fetches) every instance's S-matrix, fingerprints the
        topology, and serves the structure work from the plan cache; a miss
        compiles and caches.  The returned matrices are in the compiled
        plan's ``instance_names`` order -- by construction also the netlist's
        instance iteration order, which the fingerprint pins.  The final
        flag reports whether every instance matrix is exactly symmetric
        (reciprocal), which gates the cover executor.

        Validation is orchestrated here so the fully warm path can skip it:
        the fingerprint covers everything structural validation inspects, so
        a netlist whose ``(fingerprint, port_spec)`` validated once never
        re-validates.  Any instance-cache miss falls back to validate-first
        order, preserving the error-classification precedence (structural
        errors before model-settings errors) on netlists not seen before.
        """
        grid_bytes = np.ascontiguousarray(wavelengths).tobytes()
        validate_needed = self.validate
        spec_key = (
            (port_spec.num_inputs, port_spec.num_outputs)
            if port_spec is not None
            else None
        )

        # Pass 1: resolve per-instance keys and peek at the instance cache
        # (stats-neutral -- the real lookups happen in pass 2).
        entries: List[Tuple[str, Instance, str, str, Tuple[str, str, str, bytes]]] = []
        all_hit = True
        try:
            for name, inst in netlist.instances.items():
                ref, func_id = self._instance_key(netlist, inst)
                key = (ref, func_id, self._settings_fp(inst), grid_bytes)
                if self._instance_cache.peek(key) is None:
                    all_hit = False
                entries.append((name, inst, ref, func_id, key))
        except (UnknownModelError, TypeError):
            if validate_needed:
                # Raise the classified error (UndefinedModelError for an
                # unknown ref, InstancesModelsConfusedError for a non-string
                # models value that is not even hashable) instead of the raw
                # KeyError/TypeError.
                validate_netlist(netlist, self.registry, port_spec)
            raise

        validated = False
        if validate_needed and not all_hit:
            # Unknown content: validate before evaluating device models so
            # structural errors outrank settings errors, as always.
            validate_netlist(netlist, self.registry, port_spec)
            validated = True

        names: List[str] = []
        refs: List[str] = []
        func_ids: List[str] = []
        records: List[_InstanceRecord] = []
        symmetric = True
        for name, inst, ref, func_id, key in entries:
            record = self._instance_cache.get(key)
            if record is None:
                record = self._evaluate_instance(name, inst, ref, key, wavelengths)
            names.append(name)
            refs.append(ref)
            func_ids.append(func_id)
            records.append(record)
            symmetric = symmetric and record.symmetric

        fingerprint = topology_fingerprint(
            netlist,
            (
                (name, inst.component, ref, func_id, record.smatrix.ports, record.mask_bytes)
                for (name, inst, ref, func_id, _), record in zip(entries, records)
            ),
        )
        if validate_needed and not validated:
            # Fully warm content: skip re-validation when this exact
            # structure (and port spec) already validated once.
            if self._validated.get((fingerprint, spec_key)) is None:
                validate_netlist(netlist, self.registry, port_spec)
        if validate_needed:
            self._validated.put((fingerprint, spec_key), True)

        compiled = self._plan_lookup(fingerprint)
        if compiled is None:
            compiled = compile_netlist(
                netlist,
                {name: record.smatrix for name, record in zip(names, records)},
                masks=[record.mask for record in records],
                fingerprint=fingerprint,
                instance_refs=tuple(refs),
                func_identities=tuple(func_ids),
            )
            self._plan_store(fingerprint, compiled)
        return compiled, [record.smatrix.data for record in records], symmetric

    def _instance_key(self, netlist: Netlist, inst: Instance) -> Tuple[str, str]:
        """Resolve one instance's ``(registry ref, function identity)``.

        The function identity is memoised on ``(ref, registry version)`` --
        re-registering a model bumps the registry version, so a replaced
        implementation can never serve a stale identity (and therefore never
        a stale instance-cache or plan-cache entry).
        """
        ref = netlist.models.get(inst.component, inst.component)
        memo_key = (ref, self.registry.version)
        # Lock-free read: dict.get is atomic under the GIL and a stale miss
        # only recomputes; writes (and the clear-on-overflow) stay locked.
        func_id = self._func_id_memo.get(memo_key)
        if func_id is None:
            func_id = func_identity(self.registry.get(ref).func)
            with self._memo_lock:
                if len(self._func_id_memo) >= _MEMO_MAX_ENTRIES:
                    self._func_id_memo.clear()
                self._func_id_memo[memo_key] = func_id
        return ref, func_id

    def _settings_fp(self, inst: Instance) -> str:
        """Memoised :func:`settings_fingerprint` of one instance.

        Keyed by the :class:`Instance` object's id with a value-equality
        guard: the fingerprint is recomputed whenever the stored settings
        snapshot no longer equals the instance's current settings, so both
        in-place mutation and id reuse after garbage collection are safe
        (the guard compares *content*, and the fingerprint is a pure
        function of content).
        """
        memo = self._settings_memo
        entry = memo.get(id(inst))  # lock-free read (see _instance_key)
        if entry is not None:
            try:
                if bool(entry[0] == inst.settings):
                    return entry[1]
            except (TypeError, ValueError):
                # Settings containing numpy arrays (or other objects whose
                # equality is non-boolean) just skip the memo.
                pass
        fingerprint = settings_fingerprint(inst.settings)
        snapshot = copy.deepcopy(inst.settings)
        with self._memo_lock:
            if len(memo) >= _MEMO_MAX_ENTRIES:
                memo.clear()
            memo[id(inst)] = (snapshot, fingerprint)
        return fingerprint

    def _merged_one(
        self,
        inst: Instance,
        override: Optional[Mapping[str, object]],
        merge: bool,
    ) -> Dict[str, object]:
        """One sample's effective settings for one instance."""
        return merge_settings(inst.settings, override, merge)

    def _merged_settings_fp(
        self,
        inst: Instance,
        override: Optional[Mapping[str, object]],
        merge: bool,
    ) -> str:
        """Compositional settings fingerprint of one (instance, override) pair.

        Composed from the instance's memoised base fingerprint and the
        override mapping's memoised fingerprint instead of serialising the
        merged dict: the composition is injective on *content* (equal
        (base, override, merge) contents always produce equal strings), so
        batched instance-cache keys are stable and deduplicate across calls
        -- two different compositions that happen to merge to the same
        settings merely occupy two cache entries, they can never serve
        wrong data.
        """
        if override is None or (merge and not override):
            # No override, or an empty merge: the effective settings are the
            # instance's own.  An empty override with merge=False is NOT
            # equivalent -- it replaces the settings with the model
            # defaults -- and must keep its own composite fingerprint.
            return self._settings_fp(inst)
        return "\x1d".join(
            (self._settings_fp(inst), self._override_fp(override), "m" if merge else "r")
        )

    def _override_fp(self, override: Mapping[str, object]) -> str:
        """Memoised fingerprint of one override mapping.

        Keyed by the mapping's object id with a value-equality guard.  Only
        mappings whose values are all immutable scalars are memoised -- a
        shallow snapshot then fully captures the content, so in-place
        mutation and id reuse are both detected by the guard.
        """
        memo = self._override_fp_memo
        entry = memo.get(id(override))  # lock-free read (see _instance_key)
        if entry is not None:
            try:
                if bool(entry[0] == override):
                    return entry[1]
            except (TypeError, ValueError):
                pass  # non-boolean equality (numpy values): skip the memo
        fingerprint = settings_fingerprint(override)
        if all(
            value is None or isinstance(value, (str, int, float, bool))
            for value in override.values()
        ):
            snapshot = dict(override)
            with self._memo_lock:
                if len(memo) >= _MEMO_MAX_ENTRIES:
                    memo.clear()
                memo[id(override)] = (snapshot, fingerprint)
        return fingerprint

    def _evaluate_instance(
        self,
        name: str,
        inst: Instance,
        ref: str,
        key: Tuple[str, str, str, bytes],
        wavelengths: np.ndarray,
    ) -> _InstanceRecord:
        """Evaluate one instance's device model and store it in the sub-cache."""
        info = self.registry.get(ref)
        try:
            smatrix = info.evaluate(wavelengths, **inst.settings)
        except (TypeError, ValueError) as exc:
            raise OtherSyntaxError(
                f"instance {name!r} (model {ref!r}) rejected its settings "
                f"{inst.settings!r}: {exc}"
            ) from exc
        return self._record_from_smatrix(smatrix, key)

    def _record_from_smatrix(
        self, smatrix: SMatrix, key: Tuple[str, str, str, bytes]
    ) -> _InstanceRecord:
        """Derive the cached record (mask, symmetry) of one device evaluation."""
        mask = structural_masks([smatrix.data])[0]
        record = _InstanceRecord(
            smatrix=smatrix,
            mask=mask,
            mask_bytes=mask.tobytes(),
            symmetric=bool(
                np.array_equal(smatrix.data, smatrix.data.transpose(0, 2, 1))
            ),
        )
        self._instance_cache.put(key, record)
        return record


# ----------------------------------------------------------------------
# Module-level default solver
# ----------------------------------------------------------------------
_DEFAULT_SOLVER: Optional[CircuitSolver] = None
_DEFAULT_SOLVER_PID: Optional[int] = None
_DEFAULT_SOLVER_LOCK = threading.Lock()


def default_solver() -> CircuitSolver:
    """The process-wide default :class:`CircuitSolver` (default registry).

    Shared by every :func:`evaluate_netlist` call that does not pass its own
    registry, so repeated convenience-API calls hit one warm per-device
    instance cache -- and one warm compiled-plan cache -- instead of
    rebuilding an empty solver each time.

    The singleton is pinned to the creating process id and lazily rebuilt in
    any other process: a forked sweep worker must not keep mutating memo
    state it shares (copy-on-write) with its siblings' history, and a
    spawn-mode worker must never need the solver to be picklable.  Each
    worker therefore gets its own fresh solver on first use.
    """
    global _DEFAULT_SOLVER, _DEFAULT_SOLVER_PID
    pid = os.getpid()
    with _DEFAULT_SOLVER_LOCK:
        if _DEFAULT_SOLVER is None or _DEFAULT_SOLVER_PID != pid:
            _DEFAULT_SOLVER = CircuitSolver()
            _DEFAULT_SOLVER_PID = pid
        return _DEFAULT_SOLVER


def evaluate_netlist(
    netlist: Netlist,
    wavelengths: Optional[np.ndarray] = None,
    *,
    registry: Optional[ModelRegistry] = None,
    port_spec: Optional[PortSpec] = None,
    backend: Optional[str] = None,
) -> SMatrix:
    """Convenience wrapper: evaluate ``netlist`` with the default solver.

    Calls without a custom ``registry`` share the module-level
    :func:`default_solver` (and its instance and plan caches); passing a
    registry builds a dedicated solver for that call.
    """
    solver = default_solver() if registry is None else CircuitSolver(registry=registry)
    return solver.evaluate(netlist, wavelengths, port_spec=port_spec, backend=backend)
