"""Frequency-domain circuit evaluation (the SAX-substitute solver).

Given a validated netlist, the solver:

1. evaluates every instance's device model over the wavelength grid,
2. assembles the block-diagonal scattering matrix ``S`` of all instance ports,
3. builds the connection matrix ``C`` (a symmetric permutation-like matrix
   that routes the outgoing wave of one port into the incoming wave of the
   port it is connected to), and the external-injection matrix ``E`` that maps
   the circuit's external ports onto instance ports,
4. solves the interior-scattering equation for the composed response:

   ``S_circuit = E.T @ (I - S @ C)^{-1} @ S @ E``

The linear solve is batched over wavelengths with ``numpy.linalg.solve``.
This is mathematically equivalent to the sub-network-growth evaluation SAX
performs and handles arbitrary topologies, including rings (feedback loops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._cache import CacheStats, LRUCache
from .._fingerprint import func_identity, settings_fingerprint
from ..constants import default_wavelength_grid
from ..netlist.errors import OtherSyntaxError, WrongPortError
from ..netlist.schema import Netlist, format_endpoint, parse_endpoint
from ..netlist.validation import PortSpec, validate_netlist
from .registry import ModelRegistry, default_registry
from .sparams import SMatrix

__all__ = ["CircuitSolver", "evaluate_netlist"]


@dataclass
class _PortIndex:
    """Bookkeeping for the flattened list of all instance ports."""

    endpoints: List[Tuple[str, str]]
    index: Dict[Tuple[str, str], int]

    @classmethod
    def build(cls, instance_ports: Dict[str, Tuple[str, ...]]) -> "_PortIndex":
        endpoints: List[Tuple[str, str]] = []
        for name, ports in instance_ports.items():
            for port in ports:
                endpoints.append((name, port))
        index = {ep: i for i, ep in enumerate(endpoints)}
        return cls(endpoints=endpoints, index=index)

    def __len__(self) -> int:
        return len(self.endpoints)


class CircuitSolver:
    """Evaluates netlists into circuit-level S-matrices.

    Parameters
    ----------
    registry:
        The model registry used to resolve the netlist's ``models`` section;
        defaults to :func:`repro.sim.registry.default_registry`.
    validate:
        When true (default), the netlist is validated before evaluation so
        that failures raise classified :class:`PICBenchError` subclasses.
    instance_cache_entries:
        Capacity of the per-device sub-cache: device model evaluations are
        memoised on ``(model ref, model identity, frozen settings, grid)``,
        so the many structurally repeated instances of mesh and switch-fabric
        netlists (and repeated ``evaluate`` calls on the same grid) evaluate
        each distinct device exactly once.  ``0`` disables the sub-cache.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        validate: bool = True,
        instance_cache_entries: int = 512,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.validate = validate
        self._instance_cache: LRUCache[Tuple[str, str, str, bytes], SMatrix] = LRUCache(
            max_entries=instance_cache_entries
        )

    def instance_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-device evaluation sub-cache."""
        return self._instance_cache.stats

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> SMatrix:
        """Simulate ``netlist`` and return the external S-matrix.

        Raises a classified :class:`PICBenchError` subclass when the netlist
        is invalid, or :class:`OtherSyntaxError` when a device model rejects
        its settings.
        """
        wavelengths = (
            default_wavelength_grid() if wavelengths is None else np.atleast_1d(np.asarray(wavelengths, dtype=float))
        )
        if self.validate:
            validate_netlist(netlist, self.registry, port_spec)

        instance_matrices = self._evaluate_instances(netlist, wavelengths)
        instance_ports = {name: sm.ports for name, sm in instance_matrices.items()}
        port_index = _PortIndex.build(instance_ports)

        block = self._block_diagonal(instance_matrices, port_index, wavelengths.size)
        connection = self._connection_matrix(netlist, port_index)
        external_names, injection = self._external_matrix(netlist, port_index)

        num_ports = len(port_index)
        identity = np.eye(num_ports)
        # (I - S C) b = S E x  =>  b = solve(I - S C, S E)
        system = identity[None, :, :] - block @ connection[None, :, :]
        rhs = block @ injection[None, :, :]
        interior = np.linalg.solve(system, rhs)
        external = np.einsum("pe,wpf->wef", injection, interior)
        return SMatrix(wavelengths, tuple(external_names), external)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _evaluate_instances(
        self, netlist: Netlist, wavelengths: np.ndarray
    ) -> Dict[str, SMatrix]:
        matrices: Dict[str, SMatrix] = {}
        grid_bytes = np.ascontiguousarray(wavelengths).tobytes()
        for name, inst in netlist.instances.items():
            ref = netlist.models.get(inst.component, inst.component)
            info = self.registry.get(ref)
            key = (
                ref,
                # The function identity guards against a re-registered model
                # with the same name silently serving stale results.
                func_identity(info.func),
                settings_fingerprint(inst.settings),
                grid_bytes,
            )
            cached = self._instance_cache.get(key)
            if cached is not None:
                matrices[name] = cached
                continue
            try:
                smatrix = info.evaluate(wavelengths, **inst.settings)
            except (TypeError, ValueError) as exc:
                raise OtherSyntaxError(
                    f"instance {name!r} (model {ref!r}) rejected its settings "
                    f"{inst.settings!r}: {exc}"
                ) from exc
            self._instance_cache.put(key, smatrix)
            matrices[name] = smatrix
        return matrices

    @staticmethod
    def _block_diagonal(
        matrices: Dict[str, SMatrix], port_index: _PortIndex, num_wavelengths: int
    ) -> np.ndarray:
        num_ports = len(port_index)
        block = np.zeros((num_wavelengths, num_ports, num_ports), dtype=complex)
        for name, sm in matrices.items():
            offsets = [port_index.index[(name, p)] for p in sm.ports]
            idx = np.asarray(offsets, dtype=int)
            block[:, idx[:, None], idx[None, :]] = sm.data
        return block

    @staticmethod
    def _connection_matrix(netlist: Netlist, port_index: _PortIndex) -> np.ndarray:
        num_ports = len(port_index)
        connection = np.zeros((num_ports, num_ports), dtype=float)
        for key, value in netlist.connections.items():
            a = parse_endpoint(key)
            b = parse_endpoint(value)
            for endpoint, raw in ((a, key), (b, value)):
                if endpoint not in port_index.index:
                    raise WrongPortError(
                        f"connection endpoint {raw!r} does not correspond to any "
                        "instance port"
                    )
            ia = port_index.index[a]
            ib = port_index.index[b]
            connection[ia, ib] = 1.0
            connection[ib, ia] = 1.0
        return connection

    @staticmethod
    def _external_matrix(
        netlist: Netlist, port_index: _PortIndex
    ) -> Tuple[List[str], np.ndarray]:
        external_names = list(netlist.ports)
        injection = np.zeros((len(port_index), len(external_names)), dtype=float)
        for col, ext_name in enumerate(external_names):
            endpoint = parse_endpoint(netlist.ports[ext_name])
            if endpoint not in port_index.index:
                raise WrongPortError(
                    f"external port {ext_name!r} maps to "
                    f"{format_endpoint(*endpoint)!r} which is not an instance port"
                )
            injection[port_index.index[endpoint], col] = 1.0
        return external_names, injection


def evaluate_netlist(
    netlist: Netlist,
    wavelengths: Optional[np.ndarray] = None,
    *,
    registry: Optional[ModelRegistry] = None,
    port_spec: Optional[PortSpec] = None,
) -> SMatrix:
    """Convenience wrapper: evaluate ``netlist`` with a default solver."""
    solver = CircuitSolver(registry=registry)
    return solver.evaluate(netlist, wavelengths, port_spec=port_spec)
