"""Frequency-domain circuit evaluation (the SAX-substitute solver).

Given a validated netlist, the solver:

1. evaluates every instance's device model over the wavelength grid (served
   from a per-device LRU sub-cache),
2. fetches -- or compiles and caches -- the netlist's
   :class:`~repro.sim.plan.CompiledCircuit`: the flattened port index,
   connection structure, SCC condensation and level-batched execution
   schedule, keyed by a topology fingerprint so structurally identical
   netlists (the common case: pass@k samples mutate settings far more often
   than topology) compile exactly once,
3. executes the compiled plan against the concrete instance S-matrices,
   computing the composed response

   ``S_circuit = E.T @ (I - S @ C)^{-1} @ S @ E``

   where ``S`` is the block-diagonal matrix of all instance S-matrices.

Two executors evaluate that expression (:mod:`repro.sim.plan`):

``dense``
    Assembles the full ``(W, P, P)`` system and batch-solves it with
    ``numpy.linalg.solve`` -- ``O(W * P^3)``.  Because ``C`` and ``E`` are
    permutation-like, the system and right-hand side are built by column
    gathers instead of matmuls, so no ``P x P`` identity or ``S @ C``
    temporary is ever materialised.
``cascade``
    The structure-aware executor: evaluates the acyclic condensation of the
    port-level signal-flow graph in topological *levels* -- each level is one
    fancy-indexed multiply-add plus a segment sum over all of the level's
    edges -- solving a small local dense system only for genuine feedback
    clusters (rings).  Feed-forward meshes and switch fabrics never touch a
    global solve.  (:mod:`repro.sim.cascade` keeps the original per-port
    reference implementation the test suite checks the executor against.)
``auto``
    Picks ``dense`` for small circuits (where one vectorised solve beats the
    cascade's per-component bookkeeping) and ``cascade`` otherwise.

Both executors evaluate the same linear system and agree to well below 1e-9;
backend choice is a performance knob, never a semantic one (engine cache
keys deliberately exclude it, and the plan cache is shared by both).
``max_wavelength_chunk`` bounds the peak size of the ``(W, P, E)`` execution
workspace by splitting the solve over the wavelength axis.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._cache import CacheStats, LRUCache
from .._fingerprint import func_identity, settings_fingerprint
from ..constants import normalize_wavelengths
from ..netlist.errors import OtherSyntaxError
from ..netlist.schema import Instance, Netlist
from ..netlist.validation import PortSpec, validate_netlist
from .cascade import CascadePlan, structural_masks
from .plan import (
    CompiledCircuit,
    build_stacks,
    compile_netlist,
    execute_cascade,
    execute_dense,
    topology_fingerprint,
)
from .registry import ModelRegistry, UnknownModelError, default_registry
from .sparams import SMatrix

__all__ = ["SOLVER_BACKENDS", "CircuitSolver", "default_solver", "evaluate_netlist"]

#: Recognised solver backend names.
SOLVER_BACKENDS: Tuple[str, ...] = ("auto", "dense", "cascade")

#: ``auto`` uses the dense backend up to this many flattened instance ports
#: (measured crossover: one vectorised global solve beats the cascade's
#: per-component bookkeeping only for the very smallest circuits).
_AUTO_DENSE_MAX_PORTS = 12

#: Bound on the per-instance memo dictionaries (function identities and
#: settings fingerprints); exceeding it clears the memo, it never grows past
#: this size.
_MEMO_MAX_ENTRIES = 8192


def _check_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged."""
    if backend not in SOLVER_BACKENDS:
        raise ValueError(
            f"unknown solver backend {backend!r}; choose one of {list(SOLVER_BACKENDS)}"
        )
    return backend


def _check_chunk(max_wavelength_chunk: Optional[int]) -> Optional[int]:
    """Validate the wavelength-chunk knob (``None`` = no chunking)."""
    if max_wavelength_chunk is None:
        return None
    chunk = int(max_wavelength_chunk)
    if chunk < 1:
        raise ValueError(
            f"max_wavelength_chunk must be a positive integer or None, got {max_wavelength_chunk!r}"
        )
    return chunk


@dataclass(frozen=True)
class _InstanceRecord:
    """One cached device evaluation: the S-matrix plus derived structure.

    The structural mask (and its raw bytes, part of the topology
    fingerprint) and the exact-symmetry flag (gates the reciprocity-cover
    executor) are computed once per distinct device evaluation rather than
    on every ``evaluate`` call.
    """

    smatrix: SMatrix
    mask: np.ndarray
    mask_bytes: bytes
    symmetric: bool


class CircuitSolver:
    """Evaluates netlists into circuit-level S-matrices.

    Parameters
    ----------
    registry:
        The model registry used to resolve the netlist's ``models`` section;
        defaults to :func:`repro.sim.registry.default_registry`.
    validate:
        When true (default), the netlist is validated before evaluation so
        that failures raise classified :class:`PICBenchError` subclasses.
    instance_cache_entries:
        Capacity of the per-device sub-cache: device model evaluations are
        memoised on ``(model ref, model identity, frozen settings, grid)``,
        so the many structurally repeated instances of mesh and switch-fabric
        netlists (and repeated ``evaluate`` calls on the same grid) evaluate
        each distinct device exactly once.  ``0`` disables the sub-cache.
    backend:
        Default solver backend (one of :data:`SOLVER_BACKENDS`); individual
        :meth:`evaluate` calls may override it.  All backends produce the
        same result; see the module docstring.
    plan_cache_entries:
        Capacity of the compiled-plan cache, keyed by
        :func:`~repro.sim.plan.topology_fingerprint` (instance models +
        structural masks + connections + external ports, invalidated by
        ``func_identity`` like the instance cache).  Repeated evaluations of
        structurally identical netlists skip assembly, condensation and
        schedule construction entirely.  ``0`` disables the cache (every
        call recompiles -- the cold path).
    max_wavelength_chunk:
        When set, execution splits the wavelength axis into chunks of at
        most this many points, bounding the peak ``(W, P, E)`` / ``(W, P,
        P)`` workspace on large grids.  ``None`` (default) solves the whole
        grid at once.  Purely a memory/performance knob: results are
        identical.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        validate: bool = True,
        instance_cache_entries: int = 512,
        backend: str = "auto",
        plan_cache_entries: int = 128,
        max_wavelength_chunk: Optional[int] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.validate = validate
        self.backend = _check_backend(backend)
        self.max_wavelength_chunk = _check_chunk(max_wavelength_chunk)
        self._instance_cache: LRUCache[Tuple[str, str, str, bytes], _InstanceRecord] = (
            LRUCache(max_entries=instance_cache_entries)
        )
        self._plan_cache: LRUCache[str, CompiledCircuit] = LRUCache(
            max_entries=plan_cache_entries
        )
        # Structural-validation verdicts: a (fingerprint, port spec) pair
        # that validated once never needs re-validation -- the fingerprint
        # covers everything validate_netlist inspects (validation is
        # settings-independent).
        self._validated: LRUCache[Tuple[str, Optional[Tuple[int, int]]], bool] = (
            LRUCache(max_entries=max(4 * plan_cache_entries, 64))
        )
        # Per-instance key memos (see _instance_key): function identities
        # keyed by (ref, registry version), settings fingerprints keyed by
        # Instance object id with an equality guard.
        self._func_id_memo: Dict[Tuple[str, int], str] = {}
        self._settings_memo: Dict[int, Tuple[Dict[str, object], str]] = {}
        # Stacked instance matrices per (plan, concrete instance arrays).
        # Deliberately small: it only pays off for repeated evaluation of
        # content-identical netlists (instance-cache hits return the same
        # arrays), while settings-mutating sweeps produce fresh arrays per
        # call -- a large memo would just pin dead copies (see _stacks_for).
        self._stack_memo: LRUCache[
            Tuple[str, Tuple[int, ...]], Tuple[List[np.ndarray], List[np.ndarray]]
        ] = LRUCache(max_entries=8)

    def instance_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-device evaluation sub-cache."""
        return self._instance_cache.stats

    def plan_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the compiled-plan cache."""
        return self._plan_cache.stats

    def clear_plan_cache(self) -> None:
        """Drop every compiled plan, cached validation verdict and stacked
        matrices (stats are kept); used by benchmarks to time the cold
        structure path."""
        self._plan_cache.clear()
        self._validated.clear()
        self._stack_memo.clear()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
        backend: Optional[str] = None,
    ) -> SMatrix:
        """Simulate ``netlist`` and return the external S-matrix.

        ``backend`` overrides the solver's default backend for this call.
        Raises a classified :class:`PICBenchError` subclass when the netlist
        is invalid, or :class:`OtherSyntaxError` when a device model rejects
        its settings.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        chosen = _check_backend(backend if backend is not None else self.backend)
        compiled, matrices, symmetric = self._compiled(netlist, wavelengths, port_spec)
        if chosen == "auto":
            chosen = (
                "dense"
                if not compiled.supports_cascade
                or compiled.num_ports <= _AUTO_DENSE_MAX_PORTS
                else "cascade"
            )
        if chosen == "cascade" and not compiled.supports_cascade:
            # A port wired to several partners cannot occur on a validated
            # netlist; fall back to the general dense formulation.
            chosen = "dense"
        data = self._execute(compiled, matrices, wavelengths.size, chosen, symmetric)
        return SMatrix(wavelengths, compiled.external_names, data)

    def compile(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> CompiledCircuit:
        """Compile ``netlist`` (or fetch its cached plan) without executing.

        Exposes the compiled structure -- port index, condensation, level
        schedule -- for introspection, tests and benchmarks; :meth:`evaluate`
        reuses the exact same cached artifact.
        """
        wavelengths = normalize_wavelengths(wavelengths)
        compiled, _, _ = self._compiled(netlist, wavelengths, port_spec)
        return compiled

    def cascade_plan(
        self,
        netlist: Netlist,
        wavelengths: Optional[np.ndarray] = None,
        *,
        port_spec: Optional[PortSpec] = None,
    ) -> CascadePlan:
        """Return the cascade backend's evaluation plan for ``netlist``.

        A thin view over :meth:`compile`: exposes the condensation structure
        (topological component order, feedback clusters) of the shared
        :class:`~repro.sim.plan.CompiledCircuit`, so a subsequent
        :meth:`evaluate` on the same topology is a plan-cache hit.
        """
        compiled = self.compile(netlist, wavelengths, port_spec=port_spec)
        if compiled.plan is None:
            raise ValueError(
                "cascade plan undefined: a port is connected to several partners"
            )
        return compiled.plan

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _execute(
        self,
        compiled: CompiledCircuit,
        matrices: List[np.ndarray],
        num_wavelengths: int,
        chosen: str,
        symmetric: bool,
    ) -> np.ndarray:
        """Run the chosen executor, bounding the wavelength axis if configured."""
        chunk = self.max_wavelength_chunk
        if chosen == "cascade":
            # The cascade executor blocks the wavelength axis internally
            # (cache-residency); the knob only caps its block size.
            return execute_cascade(
                compiled,
                matrices,
                num_wavelengths,
                max_block=chunk,
                symmetric=symmetric,
                stacks=self._stacks_for(compiled, matrices),
            )
        if chunk is None or num_wavelengths <= chunk:
            return execute_dense(compiled, matrices, num_wavelengths)
        num_external = compiled.num_external
        out = np.empty((num_wavelengths, num_external, num_external), dtype=complex)
        for lo in range(0, num_wavelengths, chunk):
            hi = min(lo + chunk, num_wavelengths)
            out[lo:hi] = execute_dense(
                compiled, [data[lo:hi] for data in matrices], hi - lo
            )
        return out

    def _stacks_for(
        self, compiled: CompiledCircuit, matrices: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Memo of :func:`~repro.sim.plan.build_stacks` per concrete inputs.

        Keyed by ``(plan fingerprint, instance array identities)``; each
        entry holds strong references to the arrays it was built from, so a
        live entry's ids can never be recycled by other arrays -- an
        instance-cache eviction simply misses and rebuilds.
        """
        key = (compiled.fingerprint, tuple(map(id, matrices)))
        entry = self._stack_memo.get(key)
        if entry is not None:
            return entry[1]
        stacks = build_stacks(compiled, matrices)
        self._stack_memo.put(key, (list(matrices), stacks))
        return stacks

    def _compiled(
        self,
        netlist: Netlist,
        wavelengths: np.ndarray,
        port_spec: Optional[PortSpec] = None,
    ) -> Tuple[CompiledCircuit, List[np.ndarray], bool]:
        """Resolve the netlist's compiled plan and its instance matrix data.

        Evaluates (or fetches) every instance's S-matrix, fingerprints the
        topology, and serves the structure work from the plan cache; a miss
        compiles and caches.  The returned matrices are in the compiled
        plan's ``instance_names`` order -- by construction also the netlist's
        instance iteration order, which the fingerprint pins.  The final
        flag reports whether every instance matrix is exactly symmetric
        (reciprocal), which gates the cover executor.

        Validation is orchestrated here so the fully warm path can skip it:
        the fingerprint covers everything structural validation inspects, so
        a netlist whose ``(fingerprint, port_spec)`` validated once never
        re-validates.  Any instance-cache miss falls back to validate-first
        order, preserving the error-classification precedence (structural
        errors before model-settings errors) on netlists not seen before.
        """
        grid_bytes = np.ascontiguousarray(wavelengths).tobytes()
        validate_needed = self.validate
        spec_key = (
            (port_spec.num_inputs, port_spec.num_outputs)
            if port_spec is not None
            else None
        )

        # Pass 1: resolve per-instance keys and peek at the instance cache
        # (stats-neutral -- the real lookups happen in pass 2).
        entries: List[Tuple[str, Instance, str, str, Tuple[str, str, str, bytes]]] = []
        all_hit = True
        try:
            for name, inst in netlist.instances.items():
                ref, func_id = self._instance_key(netlist, inst)
                key = (ref, func_id, self._settings_fp(inst), grid_bytes)
                if self._instance_cache.peek(key) is None:
                    all_hit = False
                entries.append((name, inst, ref, func_id, key))
        except (UnknownModelError, TypeError):
            if validate_needed:
                # Raise the classified error (UndefinedModelError for an
                # unknown ref, InstancesModelsConfusedError for a non-string
                # models value that is not even hashable) instead of the raw
                # KeyError/TypeError.
                validate_netlist(netlist, self.registry, port_spec)
            raise

        validated = False
        if validate_needed and not all_hit:
            # Unknown content: validate before evaluating device models so
            # structural errors outrank settings errors, as always.
            validate_netlist(netlist, self.registry, port_spec)
            validated = True

        names: List[str] = []
        refs: List[str] = []
        func_ids: List[str] = []
        records: List[_InstanceRecord] = []
        symmetric = True
        for name, inst, ref, func_id, key in entries:
            record = self._instance_cache.get(key)
            if record is None:
                record = self._evaluate_instance(name, inst, ref, key, wavelengths)
            names.append(name)
            refs.append(ref)
            func_ids.append(func_id)
            records.append(record)
            symmetric = symmetric and record.symmetric

        fingerprint = topology_fingerprint(
            netlist,
            (
                (name, inst.component, ref, func_id, record.smatrix.ports, record.mask_bytes)
                for (name, inst, ref, func_id, _), record in zip(entries, records)
            ),
        )
        if validate_needed and not validated:
            # Fully warm content: skip re-validation when this exact
            # structure (and port spec) already validated once.
            if self._validated.get((fingerprint, spec_key)) is None:
                validate_netlist(netlist, self.registry, port_spec)
        if validate_needed:
            self._validated.put((fingerprint, spec_key), True)

        compiled = self._plan_cache.get(fingerprint)
        if compiled is None:
            compiled = compile_netlist(
                netlist,
                {name: record.smatrix for name, record in zip(names, records)},
                masks=[record.mask for record in records],
                fingerprint=fingerprint,
                instance_refs=tuple(refs),
                func_identities=tuple(func_ids),
            )
            self._plan_cache.put(fingerprint, compiled)
        return compiled, [record.smatrix.data for record in records], symmetric

    def _instance_key(self, netlist: Netlist, inst: Instance) -> Tuple[str, str]:
        """Resolve one instance's ``(registry ref, function identity)``.

        The function identity is memoised on ``(ref, registry version)`` --
        re-registering a model bumps the registry version, so a replaced
        implementation can never serve a stale identity (and therefore never
        a stale instance-cache or plan-cache entry).
        """
        ref = netlist.models.get(inst.component, inst.component)
        memo_key = (ref, self.registry.version)
        func_id = self._func_id_memo.get(memo_key)
        if func_id is None:
            func_id = func_identity(self.registry.get(ref).func)
            if len(self._func_id_memo) >= _MEMO_MAX_ENTRIES:
                self._func_id_memo.clear()
            self._func_id_memo[memo_key] = func_id
        return ref, func_id

    def _settings_fp(self, inst: Instance) -> str:
        """Memoised :func:`settings_fingerprint` of one instance.

        Keyed by the :class:`Instance` object's id with a value-equality
        guard: the fingerprint is recomputed whenever the stored settings
        snapshot no longer equals the instance's current settings, so both
        in-place mutation and id reuse after garbage collection are safe
        (the guard compares *content*, and the fingerprint is a pure
        function of content).
        """
        memo = self._settings_memo
        entry = memo.get(id(inst))
        if entry is not None:
            try:
                if bool(entry[0] == inst.settings):
                    return entry[1]
            except (TypeError, ValueError):
                # Settings containing numpy arrays (or other objects whose
                # equality is non-boolean) just skip the memo.
                pass
        fingerprint = settings_fingerprint(inst.settings)
        if len(memo) >= _MEMO_MAX_ENTRIES:
            memo.clear()
        memo[id(inst)] = (copy.deepcopy(inst.settings), fingerprint)
        return fingerprint

    def _evaluate_instance(
        self,
        name: str,
        inst: Instance,
        ref: str,
        key: Tuple[str, str, str, bytes],
        wavelengths: np.ndarray,
    ) -> _InstanceRecord:
        """Evaluate one instance's device model and store it in the sub-cache."""
        info = self.registry.get(ref)
        try:
            smatrix = info.evaluate(wavelengths, **inst.settings)
        except (TypeError, ValueError) as exc:
            raise OtherSyntaxError(
                f"instance {name!r} (model {ref!r}) rejected its settings "
                f"{inst.settings!r}: {exc}"
            ) from exc
        mask = structural_masks([smatrix.data])[0]
        record = _InstanceRecord(
            smatrix=smatrix,
            mask=mask,
            mask_bytes=mask.tobytes(),
            symmetric=bool(
                np.array_equal(smatrix.data, smatrix.data.transpose(0, 2, 1))
            ),
        )
        self._instance_cache.put(key, record)
        return record


# ----------------------------------------------------------------------
# Module-level default solver
# ----------------------------------------------------------------------
_DEFAULT_SOLVER: Optional[CircuitSolver] = None
_DEFAULT_SOLVER_LOCK = threading.Lock()


def default_solver() -> CircuitSolver:
    """The process-wide default :class:`CircuitSolver` (default registry).

    Shared by every :func:`evaluate_netlist` call that does not pass its own
    registry, so repeated convenience-API calls hit one warm per-device
    instance cache -- and one warm compiled-plan cache -- instead of
    rebuilding an empty solver each time.
    """
    global _DEFAULT_SOLVER
    with _DEFAULT_SOLVER_LOCK:
        if _DEFAULT_SOLVER is None:
            _DEFAULT_SOLVER = CircuitSolver()
        return _DEFAULT_SOLVER


def evaluate_netlist(
    netlist: Netlist,
    wavelengths: Optional[np.ndarray] = None,
    *,
    registry: Optional[ModelRegistry] = None,
    port_spec: Optional[PortSpec] = None,
    backend: Optional[str] = None,
) -> SMatrix:
    """Convenience wrapper: evaluate ``netlist`` with the default solver.

    Calls without a custom ``registry`` share the module-level
    :func:`default_solver` (and its instance and plan caches); passing a
    registry builds a dedicated solver for that call.
    """
    solver = default_solver() if registry is None else CircuitSolver(registry=registry)
    return solver.evaluate(netlist, wavelengths, port_spec=port_spec, backend=backend)
