"""Frequency-response containers and golden-vs-candidate comparison.

The functional evaluation of the benchmark (Section III-C of the paper)
"simply compare[s] the simulation results between generated code completions
and golden reference solutions".  We compare the power transmission ``|S|^2``
between every pair of external ports over the full wavelength grid; the port
*names* must also match, since the problem descriptions specify them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_FUNCTIONAL_ATOL
from .sparams import SMatrix

__all__ = ["FrequencyResponse", "ComparisonResult", "compare_responses"]


@dataclass(frozen=True)
class FrequencyResponse:
    """A serialisable snapshot of a circuit's power frequency response.

    Attributes
    ----------
    wavelengths:
        Wavelength grid in microns.
    ports:
        External port names of the circuit.
    transmission:
        Mapping ``(output_port, input_port) -> |S|^2`` spectrum.
    """

    wavelengths: np.ndarray
    ports: Tuple[str, ...]
    transmission: Mapping[Tuple[str, str], np.ndarray]

    @classmethod
    def from_smatrix(cls, smatrix: SMatrix) -> "FrequencyResponse":
        """Extract the power response from a simulated S-matrix."""
        transmission = {
            (po, pi): np.abs(smatrix.s(po, pi)) ** 2
            for po in smatrix.ports
            for pi in smatrix.ports
        }
        return cls(
            wavelengths=np.asarray(smatrix.wavelengths, dtype=float),
            ports=tuple(smatrix.ports),
            transmission=transmission,
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain Python containers (JSON friendly)."""
        return {
            "wavelengths": self.wavelengths.tolist(),
            "ports": list(self.ports),
            "transmission": {
                f"{po}->{pi}": spectrum.tolist()
                for (po, pi), spectrum in self.transmission.items()
            },
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, object]) -> "FrequencyResponse":
        """Inverse of :meth:`to_dict`."""
        transmission: Dict[Tuple[str, str], np.ndarray] = {}
        for key, spectrum in dict(obj["transmission"]).items():  # type: ignore[index]
            out_port, in_port = str(key).split("->")
            transmission[(out_port, in_port)] = np.asarray(spectrum, dtype=float)
        return cls(
            wavelengths=np.asarray(obj["wavelengths"], dtype=float),
            ports=tuple(obj["ports"]),  # type: ignore[arg-type]
            transmission=transmission,
        )


@dataclass
class ComparisonResult:
    """Outcome of comparing a candidate response against the golden response."""

    passed: bool
    max_abs_error: float
    reason: Optional[str] = None
    mismatched_pairs: List[Tuple[str, str]] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.passed


def compare_responses(
    candidate: FrequencyResponse | SMatrix,
    golden: FrequencyResponse | SMatrix,
    *,
    atol: float = DEFAULT_FUNCTIONAL_ATOL,
) -> ComparisonResult:
    """Compare a candidate frequency response against the golden one.

    The comparison fails when the external port names differ, the wavelength
    grids differ, or any ``|S|^2`` spectrum deviates by more than ``atol``.
    """
    if isinstance(candidate, SMatrix):
        candidate = FrequencyResponse.from_smatrix(candidate)
    if isinstance(golden, SMatrix):
        golden = FrequencyResponse.from_smatrix(golden)

    if set(candidate.ports) != set(golden.ports):
        missing = sorted(set(golden.ports) - set(candidate.ports))
        extra = sorted(set(candidate.ports) - set(golden.ports))
        return ComparisonResult(
            passed=False,
            max_abs_error=float("inf"),
            reason=(
                "external port names differ from the specification"
                + (f"; missing {missing}" if missing else "")
                + (f"; unexpected {extra}" if extra else "")
            ),
        )

    if candidate.wavelengths.shape != golden.wavelengths.shape or not np.allclose(
        candidate.wavelengths, golden.wavelengths
    ):
        return ComparisonResult(
            passed=False,
            max_abs_error=float("inf"),
            reason="wavelength grids of candidate and golden responses differ",
        )

    max_error = 0.0
    mismatched: List[Tuple[str, str]] = []
    for pair, golden_spectrum in golden.transmission.items():
        candidate_spectrum = candidate.transmission.get(pair)
        if candidate_spectrum is None:
            mismatched.append(pair)
            max_error = float("inf")
            continue
        error = float(np.max(np.abs(candidate_spectrum - golden_spectrum)))
        max_error = max(max_error, error)
        if error > atol:
            mismatched.append(pair)

    if mismatched:
        return ComparisonResult(
            passed=False,
            max_abs_error=max_error,
            reason=(
                f"power transmission deviates from the golden response by up to "
                f"{max_error:.3e} (tolerance {atol:.1e}) on {len(mismatched)} port pair(s)"
            ),
            mismatched_pairs=mismatched,
        )
    return ComparisonResult(passed=True, max_abs_error=max_error)
