"""Batched settings-axis execution over compiled circuit plans.

Sweeps evaluate hundreds of *structurally identical* netlists whose samples
differ only in instance settings (:mod:`repro.sim.plan` compiles the shared
structure exactly once).  Yet each sample still paid a full executor pass:
one seeded workspace, one walk over the level schedule, one set of feedback
solves -- ``S`` samples, ``S`` times the per-pass Python overhead.  This
module adds the missing **batch axis** ``B``:

* :func:`batch_evaluate_model` evaluates one device model for a whole stack
  of settings variants at once -- **vectorised** when the model accepts
  array parameters (the variants' parameters are expanded along a tiled
  wavelength axis and the model is called exactly once), with a
  loop-and-stack **fallback** for models that validate or coerce their
  settings in scalar-only ways.  Either way the result is the stacked
  ``(B, W, n, n)`` instance data the executor needs.
* :func:`fuse_sample_matrices` folds the batch axis into the wavelength
  axis: every step of the compiled executor -- the injection seeds, the
  level pulls, the coefficient gathers, the reachability-group schedules
  and the feedback-cluster ``(W, n, n)`` solves -- is elementwise along the
  wavelength axis, so executing the fused ``(B*W, n, n)`` stack *is*
  executing with a leading batch dimension: one pass computes all ``B``
  samples, and the per-level Python overhead is paid once instead of ``B``
  times.  Feedback clusters become one ``(B*W, n, n)`` batched solve.
* :func:`apply_settings` derives one sample's concrete netlist from a base
  netlist plus a settings-override mapping -- the per-sample loop the batch
  path replaces (and the representation the engine's batch-aware cache keys
  are computed from, so batched results still hit per-sample entries).

:meth:`repro.sim.circuit.CircuitSolver.evaluate_batch` drives these pieces:
it groups samples by topology fingerprint (a draw that flips a structural
mask -- say a coupling ratio hitting exactly zero -- lands in its own group
with its own compiled plan) and runs one fused executor pass per group.
Because the fused pass performs the very same elementwise operations and
per-wavelength solves as ``B`` individual passes, batched execution matches
the per-sample loop to solver round-off -- well below the 1e-9 budget the
property-based differential suite enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist.schema import Instance, Netlist
from .registry import ModelInfo
from .sparams import SMatrix

__all__ = [
    "BatchStats",
    "SettingsBatch",
    "apply_settings",
    "check_override_names",
    "merge_settings",
    "merged_instance_settings",
    "batch_evaluate_model",
    "fuse_sample_matrices",
    "fuse_sample_stacks",
    "structural_key",
]

#: One sample's settings overrides: per instance name, the settings to merge
#: into (or substitute for) that instance's base settings.
SettingsBatch = Mapping[str, Mapping[str, object]]

#: Scalar types a varying parameter may have for the vectorised model path
#: (numpy scalars included; strings and containers force the loop fallback).
_NUMERIC_TYPES = (int, float, np.integer, np.floating)


@dataclass
class BatchStats:
    """Counters of the solver's batched-execution path.

    Attributes
    ----------
    calls:
        Number of ``evaluate_batch`` invocations.
    samples:
        Total settings samples evaluated across all calls.
    executor_passes:
        Fused executor passes actually run (one per topology-fingerprint
        group per call); ``samples - executor_passes`` passes were saved
        relative to the per-sample loop.
    vectorised_model_evals / looped_model_evals:
        Distinct device-model variants evaluated through the vectorised
        array-parameter path versus the scalar loop fallback.
    """

    calls: int = 0
    samples: int = 0
    executor_passes: int = 0
    vectorised_model_evals: int = 0
    looped_model_evals: int = 0

    @property
    def fusion_rate(self) -> float:
        """Fraction of samples whose executor pass was amortised away."""
        if not self.samples:
            return 0.0
        return 1.0 - self.executor_passes / self.samples

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict snapshot (for logs and engine stats)."""
        return {
            "calls": self.calls,
            "samples": self.samples,
            "executor_passes": self.executor_passes,
            "vectorised_model_evals": self.vectorised_model_evals,
            "looped_model_evals": self.looped_model_evals,
            "fusion_rate": self.fusion_rate,
        }


# ----------------------------------------------------------------------
# Settings plumbing
# ----------------------------------------------------------------------
def check_override_names(netlist: Netlist, overrides: Optional[SettingsBatch]) -> None:
    """Raise ``KeyError`` when overrides reference unknown instance names.

    The single definition of the typo guard shared by the per-sample
    (:func:`merged_instance_settings`) and batched
    (:meth:`CircuitSolver.evaluate_batch`) paths.
    """
    unknown = set(overrides or ()) - set(netlist.instances)
    if unknown:
        raise KeyError(
            f"settings overrides reference unknown instance(s) {sorted(unknown)}; "
            f"known instances: {list(netlist.instances)}"
        )


def merge_settings(
    base: Mapping[str, object],
    override: Optional[Mapping[str, object]],
    merge: bool = True,
) -> Dict[str, object]:
    """One instance's effective settings under an optional override.

    With ``merge=True`` the override is merged *into* the base settings;
    with ``merge=False`` a present override *replaces* them entirely (an
    empty replacing override means the model defaults).  This is the single
    definition of the override semantics -- per-sample derivation, batched
    execution and the engine's batch-aware cache keys all share it.
    """
    if override is None:
        return dict(base)
    if merge:
        return {**base, **override}
    return dict(override)


def merged_instance_settings(
    netlist: Netlist, overrides: Optional[SettingsBatch], merge: bool = True
) -> Dict[str, Dict[str, object]]:
    """Resolve one sample's effective settings for every instance.

    With ``merge=True`` (the Monte-Carlo-friendly default) each override
    mapping is merged *into* the instance's base settings, so a draw only
    lists the parameters it perturbs.  With ``merge=False`` an override
    *replaces* the instance's settings entirely (the representation
    :meth:`ExecutionEngine.evaluate_many` uses, where every sample carries
    complete settings).  Overriding an unknown instance name raises
    ``KeyError`` so a typo in a sweep configuration fails loudly.
    """
    overrides = overrides or {}
    check_override_names(netlist, overrides)
    return {
        name: merge_settings(inst.settings, overrides.get(name), merge)
        for name, inst in netlist.instances.items()
    }


def apply_settings(
    netlist: Netlist, overrides: Optional[SettingsBatch], merge: bool = True
) -> Netlist:
    """Derive one sample's concrete netlist from a base plus overrides.

    This is the netlist the per-sample loop would evaluate -- batched
    execution must be indistinguishable from ``evaluate(apply_settings(...))``
    per sample, and the engine keys batched results by the derived netlist's
    content fingerprint so they remain interchangeable with per-sample cache
    entries.
    """
    settings = merged_instance_settings(netlist, overrides, merge)
    return Netlist(
        instances={
            name: Instance(inst.component, settings[name])
            for name, inst in netlist.instances.items()
        },
        connections=dict(netlist.connections),
        ports=dict(netlist.ports),
        models=dict(netlist.models),
    )


def structural_key(netlist: Netlist) -> str:
    """Settings-stripped content key of a netlist's structure.

    Two netlists with equal keys have the same instances (names, order,
    components), connections, external ports and ``models`` section -- they
    differ at most in instance settings, which is exactly the precondition
    for representing them as one base netlist plus per-sample overrides.
    Insertion order is deliberately preserved (it defines the flattened port
    index and the result's port order).
    """
    return json.dumps(
        {
            "instances": {name: inst.component for name, inst in netlist.instances.items()},
            "connections": dict(netlist.connections),
            "ports": dict(netlist.ports),
            "models": dict(netlist.models),
        },
        sort_keys=False,
        default=repr,
    )


# ----------------------------------------------------------------------
# Batched device-model evaluation
# ----------------------------------------------------------------------
def _vectorised_attempt(
    info: ModelInfo,
    wavelengths: np.ndarray,
    settings_list: Sequence[Mapping[str, object]],
) -> Optional[List[SMatrix]]:
    """Try to evaluate all settings variants through one array-parameter call.

    The wavelength grid is tiled ``D`` times and every parameter that varies
    across the variants is expanded to a matching per-point array, so a model
    whose maths is elementwise along the wavelength axis computes all
    variants in one call.  Models that validate (``if not 0 <= x <= 1``) or
    coerce (``float(x)``) their parameters in scalar-only ways raise
    ``TypeError``/``ValueError`` on the array input, which cleanly selects
    the loop fallback.  Variant 0 of a successful call is checked bitwise
    against its scalar evaluation; any deviation (a model that silently
    mishandles array parameters) also falls back.  Returns ``None`` when the
    vectorised path does not apply.
    """
    num_variants = len(settings_list)
    key_sets = {frozenset(settings) for settings in settings_list}
    if len(key_sets) != 1:
        return None
    keys = key_sets.pop()
    try:
        varying = [
            key
            for key in keys
            if any(
                bool(settings_list[0][key] != settings[key])
                for settings in settings_list[1:]
            )
        ]
    except (TypeError, ValueError):
        # Settings whose equality is non-boolean (numpy arrays, exotic
        # objects) are not vectorisable parameter stacks.
        return None
    if not varying:
        return None
    if not all(
        isinstance(settings[key], _NUMERIC_TYPES) and not isinstance(settings[key], bool)
        for key in varying
        for settings in settings_list
    ):
        return None

    num_points = int(wavelengths.size)
    params: Dict[str, object] = {
        key: settings_list[0][key] for key in keys if key not in varying
    }
    for key in varying:
        params[key] = np.repeat(
            np.array([settings[key] for settings in settings_list]), num_points
        )
    try:
        stacked = info.evaluate(np.tile(wavelengths, num_variants), **params)
    except (TypeError, ValueError):
        return None
    num_ports = stacked.num_ports
    if stacked.data.shape != (num_variants * num_points, num_ports, num_ports):
        return None
    data = stacked.data.reshape(num_variants, num_points, num_ports, num_ports)
    # Guard the first AND last variants bitwise against their scalar
    # evaluations: a model that raises on arrays already selected the
    # fallback above, and one that silently collapses an array parameter to
    # a single value (reproducing one variant for all) is caught by the
    # disagreeing endpoint.
    first = info.evaluate(wavelengths, **settings_list[0])
    if first.ports != stacked.ports or not np.array_equal(data[0], first.data):
        return None
    last = info.evaluate(wavelengths, **settings_list[-1])
    if not np.array_equal(data[-1], last.data):
        return None
    variants = [first]
    variants.extend(
        SMatrix(wavelengths, stacked.ports, data[index].copy())
        for index in range(1, num_variants - 1)
    )
    variants.append(last)
    return variants


def batch_evaluate_model(
    info: ModelInfo,
    wavelengths: np.ndarray,
    settings_list: Sequence[Mapping[str, object]],
) -> Tuple[List[SMatrix], bool]:
    """Evaluate one device model for several settings variants.

    Returns the per-variant :class:`~repro.sim.sparams.SMatrix` list (in
    ``settings_list`` order) and whether the vectorised array-parameter path
    was used.  Exceptions raised by the model for a given variant propagate
    exactly as a scalar evaluation of that variant would raise them (the
    vectorised path never swallows them: an array-induced error falls back
    to the scalar loop, which re-raises the genuine per-variant error).
    """
    if len(settings_list) > 1:
        vectorised = _vectorised_attempt(info, wavelengths, settings_list)
        if vectorised is not None:
            return vectorised, True
    return [info.evaluate(wavelengths, **settings) for settings in settings_list], False


# ----------------------------------------------------------------------
# Batch-axis fusion
# ----------------------------------------------------------------------
def fuse_sample_stacks(
    stack_members: Sequence[np.ndarray],
    sample_matrices: Sequence[Sequence[np.ndarray]],
    num_wavelengths: int,
) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
    """Fuse per-sample instance matrices straight into executor stacks.

    The cascade executor wants both the per-instance ``(B*W, n, n)`` arrays
    (injection seeds, self-loops, cluster fills) and the per-port-count
    stacks its coefficient gathers index
    (:attr:`CompiledCircuit.stack_members`).  Two properties keep the copy
    cost far below a naive per-(member, sample) stack:

    * instances whose per-sample arrays are the *same objects* across the
      whole batch (mesh/fabric netlists instantiate one device dozens of
      times, and the instance cache returns one array per distinct
      settings variant) share a single fused row, and
    * each fused row is copied exactly once, with every member resolving
      to its row through the returned ``stack_positions`` remap.

    Returns ``(matrices, stacks, stack_positions)``: ``matrices[i]`` is a
    view of instance ``i``'s fused ``(B*W, n, n)`` data, ``stacks[k]`` the
    deduplicated ``(u, B*W, n, n)`` stack of stack ``k``, and
    ``stack_positions[k]`` the member-position -> stack-row remap to apply
    to the compiled coefficient gathers.
    """
    num_samples = len(sample_matrices)
    num_instances = len(sample_matrices[0]) if num_samples else 0
    matrices: List[Optional[np.ndarray]] = [None] * num_instances
    stacks: List[np.ndarray] = []
    stack_positions: List[np.ndarray] = []
    for members in stack_members:
        size = int(sample_matrices[0][int(members[0])].shape[1])
        row_of_sources: Dict[Tuple[int, ...], int] = {}
        sources: List[Tuple[np.ndarray, ...]] = []
        positions = np.empty(int(members.size), dtype=int)
        for position, instance in enumerate(members):
            source = tuple(
                sample_matrices[sample][int(instance)] for sample in range(num_samples)
            )
            identity = tuple(map(id, source))
            row = row_of_sources.get(identity)
            if row is None:
                row = len(sources)
                row_of_sources[identity] = row
                sources.append(source)
            positions[position] = row
        fused = np.empty(
            (len(sources), num_samples, num_wavelengths, size, size), dtype=complex
        )
        for row, source in enumerate(sources):
            for sample, data in enumerate(source):
                fused[row, sample] = data
        fused = fused.reshape(len(sources), num_samples * num_wavelengths, size, size)
        stacks.append(fused)
        stack_positions.append(positions)
        for position, instance in enumerate(members):
            matrices[int(instance)] = fused[positions[position]]
    assert all(matrix is not None for matrix in matrices)
    return matrices, stacks, stack_positions  # type: ignore[return-value]


def fuse_sample_matrices(
    sample_matrices: Sequence[Sequence[np.ndarray]], num_wavelengths: int
) -> List[np.ndarray]:
    """Fold per-sample instance matrices into one batch-fused stack.

    ``sample_matrices[b][i]`` is sample ``b``'s ``(W, n, n)`` data for
    instance ``i``; the result holds one ``(B*W, n, n)`` array per instance,
    sample-major, which the compiled executors treat as a ``B*W``-point
    wavelength axis (every executor operation is elementwise along it).
    Samples sharing the *same* array object (instance-cache hits for
    identical settings) are tiled without an intermediate Python-level
    stack.
    """
    num_samples = len(sample_matrices)
    fused: List[np.ndarray] = []
    for index in range(len(sample_matrices[0])):
        first = sample_matrices[0][index]
        if num_samples == 1:
            fused.append(first)
        elif all(sample[index] is first for sample in sample_matrices[1:]):
            fused.append(np.tile(first, (num_samples, 1, 1)))
        else:
            fused.append(
                np.stack([sample[index] for sample in sample_matrices]).reshape(
                    num_samples * num_wavelengths, *first.shape[1:]
                )
            )
    return fused
