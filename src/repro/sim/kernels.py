"""Optional JIT kernels for the compiled cascade executor's inner loops.

The level-batched executor (:mod:`repro.sim.plan`) spends nearly all of its
time in three gather/scatter-shaped inner loops:

``pull_level``
    One topological level's accumulation: gather every edge's source row,
    multiply by the edge coefficient, segment-sum into the level's
    contiguous receiving rows.  The numpy path materialises a ``(edges,
    block, cols)`` contribution buffer and walks it several times (take,
    multiply, segment adds); the kernel fuses all of it into one pass with
    no temporary.
``cluster_fill``
    Assembling a feedback cluster's ``I - M`` system: a fancy-indexed
    scatter of strided matrix elements into the ``(W, n, n)`` system block.
``gather_coef``
    The flat-row edge-coefficient gather (see
    :func:`repro.sim.batch.fuse_sample_stacks`): one coefficient row per
    edge, pulled out of the stacked instance matrices.

Each kernel exists as a plain-Python nested-loop implementation at module
scope; when `numba <https://numba.pydata.org>`_ is importable the same
functions are wrapped with ``@numba.njit`` (the OptiCommPy pattern of
JIT-ing DSP inner loops behind an optional import).  Nothing here imports
numba unconditionally -- environments without it fall back to the executor's
vectorised numpy path automatically.

Dispatch is decided **once, at plan compile time**:
:func:`resolve_kernel_mode` stamps the active mode onto the
:class:`~repro.sim.plan.CompiledCircuit`, and execution asks
:func:`get_kernels` for that mode's callables.  A plan compiled (or spilled
to disk) under one mode and executed in a process where that mode is
unavailable degrades safely to numpy -- ``get_kernels`` simply returns
``None``.

Modes (settable via :func:`set_kernel_mode` or the ``REPRO_KERNELS``
environment variable, read at import):

``auto`` (default)
    ``numba`` when importable, else the numpy path.
``numba``
    Require the JIT kernels (raises at selection time when numba is absent).
``python``
    The pure-Python kernel bodies, uncompiled.  Orders of magnitude slower
    than numpy -- exists so the kernel *logic* is testable byte-for-byte on
    machines without numba.
``numpy``
    Force the executor's vectorised numpy path (kernels off).

All modes agree with the numpy path to well below 1e-12: the kernels
evaluate the same sums with at most a different floating-point association
order inside each (short) edge segment.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "KERNEL_MODES",
    "Kernels",
    "get_kernels",
    "kernel_status",
    "resolve_kernel_mode",
    "set_kernel_mode",
    "warmup",
]

try:  # optional dependency: never required, never installed implicitly
    import numba  # type: ignore

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - import errors only without numba
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False

#: Recognised kernel dispatch modes.
KERNEL_MODES = ("auto", "numba", "python", "numpy")


# ----------------------------------------------------------------------
# Kernel bodies (plain Python; numba-wrapped below when available)
# ----------------------------------------------------------------------
def _pull_level(ws, src, coef, edge_start, wave_lo, starts, row_lo, assign):
    """Fused gather + multiply + segment-sum of one pull level.

    ``ws`` is the ``(rows, block, cols)`` group workspace (a view), ``src``
    the level's source rows, ``coef`` the full ``(edges, W)`` coefficient
    array (this level's edges start at ``edge_start``, this block's
    wavelengths at ``wave_lo``), ``starts`` the per-receiving-row segment
    boundaries, ``row_lo`` the first receiving row.  ``assign`` writes the
    segment sum (seed-free rows); otherwise it accumulates.
    """
    num_segments = starts.shape[0]
    count = src.shape[0]
    width = ws.shape[1]
    cols = ws.shape[2]
    for segment in range(num_segments):
        row = row_lo + segment
        lo = starts[segment]
        hi = starts[segment + 1] if segment + 1 < num_segments else count
        for t in range(width):
            for c in range(cols):
                acc = 0.0 + 0.0j
                for e in range(lo, hi):
                    acc += coef[edge_start + e, wave_lo + t] * ws[src[e], t, c]
                if assign:
                    ws[row, t, c] = acc
                else:
                    ws[row, t, c] += acc


def _cluster_fill(system, matrix, sys_rows, sys_cols, m_rows, m_cols, wave_lo):
    """Scatter ``-matrix[wave_lo + t, m_rows, m_cols]`` into the cluster system."""
    width = system.shape[0]
    count = sys_rows.shape[0]
    for k in range(count):
        row = sys_rows[k]
        col = sys_cols[k]
        m_row = m_rows[k]
        m_col = m_cols[k]
        for t in range(width):
            system[t, row, col] = -matrix[wave_lo + t, m_row, m_col]


def _gather_rows(coef, flat, flat_index, positions):
    """Contiguous-row coefficient gather: ``coef[positions] = flat[flat_index]``."""
    count = positions.shape[0]
    num_wavelengths = flat.shape[1]
    for k in range(count):
        dst = positions[k]
        row = flat_index[k]
        for w in range(num_wavelengths):
            coef[dst, w] = flat[row, w]


def _gather_strided(coef, stack, pos, m_rows, m_cols, positions):
    """Strided coefficient gather: ``coef[positions] = stack[pos, :, m_rows, m_cols]``."""
    count = positions.shape[0]
    num_wavelengths = stack.shape[1]
    for k in range(count):
        dst = positions[k]
        member = pos[k]
        m_row = m_rows[k]
        m_col = m_cols[k]
        for w in range(num_wavelengths):
            coef[dst, w] = stack[member, w, m_row, m_col]


class Kernels:
    """One dispatch table of the three executor kernels."""

    __slots__ = ("mode", "pull_level", "cluster_fill", "gather_rows", "gather_strided")

    def __init__(
        self,
        mode: str,
        pull_level: Callable,
        cluster_fill: Callable,
        gather_rows: Callable,
        gather_strided: Callable,
    ) -> None:
        self.mode = mode
        self.pull_level = pull_level
        self.cluster_fill = cluster_fill
        self.gather_rows = gather_rows
        self.gather_strided = gather_strided


_PYTHON_KERNELS = Kernels(
    "python", _pull_level, _cluster_fill, _gather_rows, _gather_strided
)

_NUMBA_KERNELS: Optional[Kernels] = None
if HAVE_NUMBA:
    # fastmath stays off: the ≤1e-12 agreement with the numpy path relies on
    # IEEE-faithful complex arithmetic.  cache=True persists the compiled
    # machine code next to this module, so sweep workers (and later runs)
    # skip the first-call compilation.
    _jit = numba.njit(cache=True, fastmath=False)
    _NUMBA_KERNELS = Kernels(
        "numba",
        _jit(_pull_level),
        _jit(_cluster_fill),
        _jit(_gather_rows),
        _jit(_gather_strided),
    )


# ----------------------------------------------------------------------
# Mode selection
# ----------------------------------------------------------------------
def _initial_mode() -> str:
    mode = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    return mode if mode in KERNEL_MODES else "auto"


_MODE = _initial_mode()


def set_kernel_mode(mode: str) -> None:
    """Select the kernel dispatch mode for subsequently *compiled* plans.

    Existing compiled plans keep the mode they were stamped with (dispatch
    is a compile-time decision); clear the solver's plan cache to recompile
    under the new mode.  Selecting ``"numba"`` without numba installed
    raises immediately.
    """
    global _MODE
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; choose one of {list(KERNEL_MODES)}"
        )
    if mode == "numba" and not HAVE_NUMBA:
        raise RuntimeError("kernel mode 'numba' requested but numba is not installed")
    _MODE = mode


def resolve_kernel_mode() -> Optional[str]:
    """The concrete mode newly compiled plans are stamped with.

    ``None`` means the numpy path (no kernels); otherwise ``"numba"`` or
    ``"python"``.
    """
    if _MODE == "numpy":
        return None
    if _MODE == "numba":
        return "numba"
    if _MODE == "python":
        return "python"
    return "numba" if HAVE_NUMBA else None


def get_kernels(mode: Optional[str]) -> Optional[Kernels]:
    """Dispatch table for a plan's stamped mode; ``None`` = numpy path.

    Unsatisfiable modes (a plan stamped ``"numba"`` loaded from the shared
    plan spill in a process without numba) degrade to ``None`` rather than
    raising: kernel availability must never change results, only speed.
    """
    if mode == "numba":
        return _NUMBA_KERNELS  # None when numba is absent: numpy fallback
    if mode == "python":
        return _PYTHON_KERNELS
    return None


def kernel_status() -> Dict[str, object]:
    """Introspection snapshot (for benchmarks and logs)."""
    return {
        "have_numba": HAVE_NUMBA,
        "mode": _MODE,
        "resolved": resolve_kernel_mode(),
    }


def warmup() -> bool:
    """Trigger the one-time JIT compilation on tiny inputs.

    Returns ``True`` when the numba kernels are present and compiled.  Useful
    before timing runs and in process workers, so the first real evaluation
    does not pay the compile.
    """
    kernels = _NUMBA_KERNELS
    if kernels is None:
        return False
    ws = np.zeros((2, 1, 1), dtype=complex)
    coef = np.ones((1, 1), dtype=complex)
    starts = np.zeros(1, dtype=np.int64)
    src = np.zeros(1, dtype=np.int64)
    kernels.pull_level(ws, src, coef, 0, 0, starts, 1, True)
    system = np.zeros((1, 1, 1), dtype=complex)
    index = np.zeros(1, dtype=np.int64)
    kernels.cluster_fill(system, ws, index, index, index, index, 0)
    kernels.gather_rows(coef, np.ones((1, 1), dtype=complex), index, index)
    kernels.gather_strided(
        coef, np.ones((1, 1, 1, 1), dtype=complex), index, index, index, index
    )
    return True
