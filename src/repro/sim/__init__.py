"""Frequency-domain S-parameter circuit simulator (the SAX substitute).

The public surface mirrors what the benchmark needs from SAX:

* a library of built-in device models (:mod:`repro.sim.models`),
* a :class:`~repro.sim.registry.ModelRegistry` describing them,
* a :class:`~repro.sim.circuit.CircuitSolver` that turns a JSON netlist into a
  wavelength-resolved circuit S-matrix, and
* response analysis utilities (:mod:`repro.sim.analysis`).
"""

from .analysis import ComparisonResult, FrequencyResponse, compare_responses
from .batch import BatchStats, apply_settings, batch_evaluate_model, fuse_sample_matrices
from .cascade import CascadePlan
from .circuit import SOLVER_BACKENDS, CircuitSolver, default_solver, evaluate_netlist
from .kernels import (
    HAVE_NUMBA,
    KERNEL_MODES,
    get_kernels,
    kernel_status,
    resolve_kernel_mode,
    set_kernel_mode,
)
from .plan import CompiledCircuit, compile_netlist
from .registry import ModelInfo, ModelRegistry, UnknownModelError, default_registry
from .sparams import SMatrix, is_reciprocal, is_unitary, power_transmission, sdict_to_smatrix

__all__ = [
    "SMatrix",
    "sdict_to_smatrix",
    "is_reciprocal",
    "is_unitary",
    "power_transmission",
    "ModelInfo",
    "ModelRegistry",
    "UnknownModelError",
    "default_registry",
    "SOLVER_BACKENDS",
    "HAVE_NUMBA",
    "KERNEL_MODES",
    "get_kernels",
    "kernel_status",
    "resolve_kernel_mode",
    "set_kernel_mode",
    "BatchStats",
    "apply_settings",
    "batch_evaluate_model",
    "fuse_sample_matrices",
    "CascadePlan",
    "CompiledCircuit",
    "compile_netlist",
    "CircuitSolver",
    "default_solver",
    "evaluate_netlist",
    "FrequencyResponse",
    "ComparisonResult",
    "compare_responses",
]
