"""Modulator models used by the optical-interconnect benchmark problems.

The benchmark is evaluated in the frequency domain (Section III-C of the
paper), so modulators are represented at a fixed drive point: the applied
voltage / bias sets a static amplitude and phase operating condition whose
frequency response is then simulated.  This is exactly how the paper's golden
designs treat modulators -- the structural correctness of the circuit (which
components, how connected) is what the benchmark verifies.
"""

from __future__ import annotations

import numpy as np

from ...constants import (
    DEFAULT_CENTER_WAVELENGTH_UM,
    DEFAULT_LOSS_DB_PER_CM,
    DEFAULT_NEFF,
    DEFAULT_NG,
)
from ..sparams import SMatrix, sdict_to_smatrix
from .waveguide import propagation_amplitude, propagation_phase

__all__ = ["mzm", "eam", "phase_modulator", "attenuator", "amplifier"]


def mzm(
    wavelengths: np.ndarray,
    *,
    vpi: float = 3.0,
    voltage: float = 0.0,
    bias_phase: float = 0.0,
    length: float = 100.0,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = DEFAULT_LOSS_DB_PER_CM,
) -> SMatrix:
    """Push-pull Mach-Zehnder modulator (1 input, 1 output).

    Ports: ``I1`` (input), ``O1`` (output).

    The two arms are driven anti-symmetrically, so the output field is
    ``cos(pi * voltage / (2 * vpi) + bias_phase / 2)`` times the common
    propagation factor of the arms.

    Parameters
    ----------
    vpi:
        Half-wave voltage of the modulator in volts.
    voltage:
        Applied drive voltage in volts.
    bias_phase:
        Static phase bias (radians) between the arms; ``pi/2`` biases the
        modulator at quadrature, ``pi`` at the null point.
    length:
        Electrode / arm length in microns.
    """
    if vpi <= 0:
        raise ValueError(f"vpi must be positive, got {vpi}")
    drive_phase = np.pi * voltage / (2.0 * vpi) + bias_phase / 2.0
    envelope = np.cos(drive_phase)
    prop = propagation_phase(wavelengths, length, neff, ng, wl0)
    amp = propagation_amplitude(length, loss_db_cm)
    s21 = envelope * amp * np.exp(-1j * prop)
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): s21})


def phase_modulator(
    wavelengths: np.ndarray,
    *,
    vpi: float = 3.0,
    voltage: float = 0.0,
    length: float = 100.0,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = DEFAULT_LOSS_DB_PER_CM,
) -> SMatrix:
    """Travelling-wave phase modulator (1 input, 1 output).

    Ports: ``I1``, ``O1``.  Applies a phase of ``pi * voltage / vpi`` radians
    on top of the propagation phase of the electrode length.
    """
    if vpi <= 0:
        raise ValueError(f"vpi must be positive, got {vpi}")
    drive = np.pi * voltage / vpi
    prop = propagation_phase(wavelengths, length, neff, ng, wl0)
    amp = propagation_amplitude(length, loss_db_cm)
    s21 = amp * np.exp(-1j * (prop + drive))
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): s21})


def eam(
    wavelengths: np.ndarray,
    *,
    attenuation_db: float = 0.0,
    length: float = 50.0,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
) -> SMatrix:
    """Electro-absorption modulator at a fixed bias (1 input, 1 output).

    Ports: ``I1``, ``O1``.

    Parameters
    ----------
    attenuation_db:
        Power attenuation in dB at the chosen bias point (0 dB = fully on).
    length:
        Device length in microns (contributes propagation phase).
    """
    if attenuation_db < 0:
        raise ValueError(f"attenuation_db must be non-negative, got {attenuation_db}")
    amp = 10.0 ** (-attenuation_db / 20.0)
    prop = propagation_phase(wavelengths, length, neff, ng, wl0)
    s21 = amp * np.exp(-1j * prop)
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): s21})


def attenuator(wavelengths: np.ndarray, *, attenuation_db: float = 0.0) -> SMatrix:
    """Ideal wavelength-flat attenuator.

    Ports: ``I1``, ``O1``.  ``attenuation_db`` is the power attenuation in dB.
    """
    if attenuation_db < 0:
        raise ValueError(f"attenuation_db must be non-negative, got {attenuation_db}")
    amp = 10.0 ** (-attenuation_db / 20.0)
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): amp})


def amplifier(wavelengths: np.ndarray, *, gain_db: float = 0.0) -> SMatrix:
    """Ideal wavelength-flat amplifier (semiconductor optical amplifier).

    Ports: ``I1``, ``O1``.  ``gain_db`` is the power gain in dB.  The model is
    non-reciprocal only in the sense that it amplifies both directions, which
    is sufficient for the benchmark's passive frequency-response checks.
    """
    amp = 10.0 ** (gain_db / 20.0)
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): amp})
