"""Microring resonator (MRR) models.

Two standard configurations are provided:

``mrr_allpass``
    A single bus waveguide coupled to a ring (notch filter).

``mrr_adddrop``
    Two bus waveguides coupled to a ring (add/drop filter), the building
    block of the WDM multiplexer / demultiplexer problems in the benchmark.

The analytic expressions follow Bogaerts et al., "Silicon microring
resonators", Laser & Photonics Reviews (2012).
"""

from __future__ import annotations

import numpy as np

from ...constants import (
    DEFAULT_CENTER_WAVELENGTH_UM,
    DEFAULT_NEFF,
    DEFAULT_NG,
    db_per_cm_to_neper_per_um,
)
from ..sparams import SMatrix, sdict_to_smatrix
from .waveguide import propagation_phase

__all__ = ["mrr_allpass", "mrr_adddrop", "ring_round_trip"]


def ring_round_trip(
    wavelengths: np.ndarray,
    radius,
    neff,
    ng,
    wl0,
    loss_db_cm,
):
    """Return the ring round-trip phase spectrum and amplitude transmission.

    Elementwise over array parameters (for batched parameter stacks); scalar
    inputs keep the historical float amplitude.
    """
    circumference = 2.0 * np.pi * np.asarray(radius, dtype=float)
    phase = propagation_phase(wavelengths, circumference, neff, ng, wl0)
    amplitude = np.exp(-db_per_cm_to_neper_per_um(loss_db_cm) * circumference)
    if np.ndim(radius) == 0 and np.ndim(loss_db_cm) == 0:
        amplitude = float(amplitude)
    return phase, amplitude


def mrr_allpass(
    wavelengths: np.ndarray,
    *,
    radius: float = 5.0,
    coupling: float = 0.1,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = 3.0,
) -> SMatrix:
    """All-pass (notch) microring resonator.

    Ports: ``I1`` (input), ``O1`` (through).

    Parameters
    ----------
    radius:
        Ring radius in microns.
    coupling:
        Power coupling ratio of the bus-ring coupler.
    loss_db_cm:
        Ring propagation loss in dB/cm; some loss is required for the notch
        to have finite extinction.
    """
    coupling_values = np.asarray(coupling, dtype=float)
    if np.any((coupling_values < 0.0) | (coupling_values > 1.0)):
        raise ValueError(f"coupling must be within [0, 1], got {coupling}")
    phase, amplitude = ring_round_trip(wavelengths, radius, neff, ng, wl0, loss_db_cm)
    t = np.sqrt(1.0 - coupling_values)
    z = amplitude * np.exp(-1j * phase)
    through = (t - z) / (1.0 - t * z)
    return sdict_to_smatrix(wavelengths, ("I1", "O1"), {("O1", "I1"): through})


def mrr_adddrop(
    wavelengths: np.ndarray,
    *,
    radius: float = 5.0,
    coupling_in: float = 0.1,
    coupling_out: float = 0.1,
    neff: float = DEFAULT_NEFF,
    ng: float = DEFAULT_NG,
    wl0: float = DEFAULT_CENTER_WAVELENGTH_UM,
    loss_db_cm: float = 3.0,
) -> SMatrix:
    """Add/drop microring resonator.

    Ports: ``I1`` (input), ``I2`` (add), ``O1`` (through), ``O2`` (drop).

    On resonance, light entering ``I1`` exits at the drop port ``O2``; off
    resonance it continues to the through port ``O1``.  The add port ``I2``
    behaves symmetrically (on resonance it couples to ``O1``).

    Parameters
    ----------
    radius:
        Ring radius in microns; sets the resonance comb through the
        round-trip length.
    coupling_in, coupling_out:
        Power coupling ratios of the input-side and drop-side couplers.
    """
    for name, value in (("coupling_in", coupling_in), ("coupling_out", coupling_out)):
        values = np.asarray(value, dtype=float)
        if np.any((values < 0.0) | (values > 1.0)):
            raise ValueError(f"{name} must be within [0, 1], got {value}")
    phase, amplitude = ring_round_trip(wavelengths, radius, neff, ng, wl0, loss_db_cm)
    t1 = np.sqrt(1.0 - np.asarray(coupling_in, dtype=float))
    t2 = np.sqrt(1.0 - np.asarray(coupling_out, dtype=float))
    k1 = np.sqrt(np.asarray(coupling_in, dtype=float))
    k2 = np.sqrt(np.asarray(coupling_out, dtype=float))
    z = amplitude * np.exp(-1j * phase)
    half_z = np.sqrt(amplitude) * np.exp(-1j * phase / 2.0)
    denom = 1.0 - t1 * t2 * z

    through_from_in = (t1 - t2 * z) / denom
    through_from_add = (t2 - t1 * z) / denom
    drop = -k1 * k2 * half_z / denom

    sdict = {
        ("O1", "I1"): through_from_in,
        ("O2", "I2"): through_from_add,
        ("O2", "I1"): drop,
        ("O1", "I2"): drop,
    }
    return sdict_to_smatrix(wavelengths, ("I1", "I2", "O1", "O2"), sdict)
