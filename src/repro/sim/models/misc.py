"""Miscellaneous device models: crossings, switches and terminations.

The switch elements (``switch1x2``, ``switch2x1``, ``switch2x2``) are the unit
cells of the optical-switch benchmark problems (crossbar, Spanke, Benes and
Spanke-Benes fabrics).  They are modelled as ideal gates with a configurable
routing state and a finite extinction ratio for the blocked path.
"""

from __future__ import annotations

import numpy as np

from ..sparams import SMatrix, sdict_to_smatrix

__all__ = ["crossing", "switch1x2", "switch2x1", "switch2x2", "terminator"]

_VALID_2X2_STATES = ("bar", "cross")


def _leak_amplitude(extinction_db):
    """Field amplitude leaking into the blocked path of a switch.

    Accepts a scalar or a per-wavelength array (the batched executor passes
    parameter stacks through the tiled wavelength axis); the scalar result
    is numerically identical to the historical scalar-only implementation.
    """
    values = np.asarray(extinction_db, dtype=float)
    if np.any(values < 0):
        raise ValueError(f"extinction_db must be non-negative, got {extinction_db}")
    leak = np.where(values == 0.0, 0.0, 10.0 ** (-values / 20.0))
    return float(leak) if np.ndim(extinction_db) == 0 else leak


def crossing(wavelengths: np.ndarray, *, loss_db: float = 0.0) -> SMatrix:
    """Waveguide crossing.

    Ports: ``I1``, ``I2`` (inputs), ``O1``, ``O2`` (outputs).  ``I1`` passes
    straight through to ``O1`` and ``I2`` to ``O2``; the two paths cross
    physically but do not couple.

    Parameters
    ----------
    loss_db:
        Insertion loss per pass in dB (power).
    """
    if np.any(np.asarray(loss_db) < 0):
        raise ValueError(f"loss_db must be non-negative, got {loss_db}")
    amp = 10.0 ** (-np.asarray(loss_db, dtype=float) / 20.0)
    return sdict_to_smatrix(
        wavelengths,
        ("I1", "I2", "O1", "O2"),
        {("O1", "I1"): amp, ("O2", "I2"): amp},
    )


def switch1x2(
    wavelengths: np.ndarray,
    *,
    state: int = 1,
    extinction_db: float = 60.0,
) -> SMatrix:
    """1x2 gate switch.

    Ports: ``I1`` (input), ``O1``, ``O2`` (outputs).

    Parameters
    ----------
    state:
        Selected output: ``1`` routes ``I1`` to ``O1``, ``2`` routes it to
        ``O2``.
    extinction_db:
        Power extinction ratio of the unselected output.
    """
    if state not in (1, 2):
        raise ValueError(f"state must be 1 or 2, got {state!r}")
    leak = _leak_amplitude(extinction_db)
    on_port = "O1" if state == 1 else "O2"
    off_port = "O2" if state == 1 else "O1"
    return sdict_to_smatrix(
        wavelengths,
        ("I1", "O1", "O2"),
        {(on_port, "I1"): 1.0, (off_port, "I1"): leak},
    )


def switch2x1(
    wavelengths: np.ndarray,
    *,
    state: int = 1,
    extinction_db: float = 60.0,
) -> SMatrix:
    """2x1 gate switch (select one of two inputs).

    Ports: ``I1``, ``I2`` (inputs), ``O1`` (output).

    Parameters
    ----------
    state:
        Selected input: ``1`` routes ``I1`` to ``O1``, ``2`` routes ``I2``.
    extinction_db:
        Power extinction ratio of the unselected input.
    """
    if state not in (1, 2):
        raise ValueError(f"state must be 1 or 2, got {state!r}")
    leak = _leak_amplitude(extinction_db)
    on_port = "I1" if state == 1 else "I2"
    off_port = "I2" if state == 1 else "I1"
    return sdict_to_smatrix(
        wavelengths,
        ("I1", "I2", "O1"),
        {("O1", on_port): 1.0, ("O1", off_port): leak},
    )


def switch2x2(
    wavelengths: np.ndarray,
    *,
    state: str = "cross",
    extinction_db: float = 60.0,
) -> SMatrix:
    """2x2 optical switch element.

    Ports: ``I1``, ``I2`` (inputs), ``O1``, ``O2`` (outputs).

    Parameters
    ----------
    state:
        ``"bar"`` routes ``I1 -> O1`` and ``I2 -> O2``; ``"cross"`` routes
        ``I1 -> O2`` and ``I2 -> O1``.
    extinction_db:
        Power extinction ratio of the blocked paths.
    """
    if state not in _VALID_2X2_STATES:
        raise ValueError(f"state must be one of {_VALID_2X2_STATES}, got {state!r}")
    leak = _leak_amplitude(extinction_db)
    if state == "bar":
        sdict = {
            ("O1", "I1"): 1.0,
            ("O2", "I2"): 1.0,
            ("O2", "I1"): leak,
            ("O1", "I2"): leak,
        }
    else:
        sdict = {
            ("O2", "I1"): 1.0,
            ("O1", "I2"): 1.0,
            ("O1", "I1"): leak,
            ("O2", "I2"): leak,
        }
    return sdict_to_smatrix(wavelengths, ("I1", "I2", "O1", "O2"), sdict)


def terminator(wavelengths: np.ndarray) -> SMatrix:
    """Perfectly matched termination (absorbs everything).

    Ports: ``I1``.  Used to terminate otherwise dangling ports.
    """
    wavelengths = np.atleast_1d(np.asarray(wavelengths, dtype=float))
    data = np.zeros((wavelengths.size, 1, 1), dtype=complex)
    return SMatrix(wavelengths, ("I1",), data)
